//! Sharing plans.
//!
//! Definition 7: "A sharing plan `P` is a set of sharing candidates. `P` is
//! valid if it contains no candidates that are in conflict with each other."
//! A candidate `(p, Q_p)` instructs the executor to aggregate pattern `p`
//! once and let every query in `Q_p` combine those shared aggregates with
//! its private prefix/suffix aggregates (Section 3.3).
//!
//! This module is deliberately optimizer-agnostic: the optimizer crate
//! produces a [`SharingPlan`]; the executor crate consumes the per-query
//! [`Segment`] decomposition computed here (Definition 4, generalized to any
//! number of shared segments per query — e.g. `q4` of the running example
//! may share both `p2` and `p4`).

use crate::pattern::Pattern;
use crate::query::{Query, QueryId};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One sharing candidate `(p, Q_p)` selected into a plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCandidate {
    /// The shared pattern `p`.
    pub pattern: Pattern,
    /// The queries `Q_p` sharing `p`'s aggregation (must have ≥ 2 members
    /// for the candidate to be *sharable*, Definition 3).
    pub queries: BTreeSet<QueryId>,
}

impl PlanCandidate {
    /// Construct a candidate.
    pub fn new(pattern: Pattern, queries: impl IntoIterator<Item = QueryId>) -> Self {
        PlanCandidate {
            pattern,
            queries: queries.into_iter().collect(),
        }
    }
}

/// Whether a segment's aggregates are private to one query or shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Aggregated by this query alone (a prefix/mid/suffix piece).
    Private,
    /// Aggregated once for all queries of the plan candidate with this
    /// index in [`SharingPlan::candidates`].
    Shared(usize),
}

/// One contiguous piece of a query's pattern under a plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The sub-pattern this segment covers.
    pub pattern: Pattern,
    /// Private or shared.
    pub kind: SegmentKind,
    /// 0-based position of the segment's first type within the query
    /// pattern.
    pub offset: usize,
}

/// Errors raised when a plan cannot be applied to a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Two candidates claim overlapping positions in the same query — the
    /// plan is invalid (Definition 7: it contains a sharing conflict).
    OverlappingCandidates {
        /// The query in which the overlap occurs.
        query: QueryId,
    },
    /// A candidate names a query whose pattern does not contain the
    /// candidate's pattern.
    PatternNotInQuery {
        /// The offending query.
        query: QueryId,
    },
    /// A candidate has fewer than two queries (not sharable,
    /// Definition 3).
    NotSharable,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::OverlappingCandidates { query } => {
                write!(f, "sharing conflict: overlapping candidates in {query}")
            }
            PlanError::PatternNotInQuery { query } => {
                write!(f, "candidate pattern does not occur in {query}")
            }
            PlanError::NotSharable => write!(f, "candidate shared by fewer than two queries"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A set of sharing candidates guiding the runtime executor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingPlan {
    /// The selected candidates.
    pub candidates: Vec<PlanCandidate>,
}

impl SharingPlan {
    /// The trivial plan with no sharing — the executor degenerates to the
    /// Non-Shared method of Section 3.2 (A-Seq per query).
    pub fn non_shared() -> Self {
        SharingPlan {
            candidates: Vec::new(),
        }
    }

    /// Build a plan from candidates.
    pub fn new(candidates: impl IntoIterator<Item = PlanCandidate>) -> Self {
        SharingPlan {
            candidates: candidates.into_iter().collect(),
        }
    }

    /// True when the plan shares nothing.
    pub fn is_non_shared(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if the plan has no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates whose query set contains `q`, with the 0-based
    /// occurrence offset of the candidate pattern in `q`'s pattern.
    fn claims_on(&self, query: &Query) -> Result<Vec<(usize, usize, usize)>, PlanError> {
        // (offset, length, candidate index)
        let mut claims = Vec::new();
        for (ci, cand) in self.candidates.iter().enumerate() {
            if !cand.queries.contains(&query.id) {
                continue;
            }
            let occs = query.pattern.occurrences_of(&cand.pattern);
            if occs.is_empty() {
                return Err(PlanError::PatternNotInQuery { query: query.id });
            }
            // Under assumption (3) of the paper the occurrence is unique;
            // with repeated types (§7.3) we claim the leftmost occurrence
            // that keeps claims disjoint, which the validity check below
            // verifies.
            claims.push((occs[0], cand.pattern.len(), ci));
        }
        claims.sort_unstable();
        for w in claims.windows(2) {
            let (off_a, len_a, _) = w[0];
            let (off_b, _, _) = w[1];
            if off_a + len_a > off_b {
                return Err(PlanError::OverlappingCandidates { query: query.id });
            }
        }
        Ok(claims)
    }

    /// Decompose `query`'s pattern into the alternating private/shared
    /// segment chain induced by this plan (Definition 4 generalized).
    ///
    /// With no applicable candidate, the result is a single private segment
    /// covering the whole pattern.
    pub fn decompose(&self, query: &Query) -> Result<Vec<Segment>, PlanError> {
        let claims = self.claims_on(query)?;
        let mut segments = Vec::with_capacity(claims.len() * 2 + 1);
        let mut cursor = 0usize;
        for (off, len, ci) in claims {
            if off > cursor {
                segments.push(Segment {
                    pattern: query.pattern.subpattern(cursor..off),
                    kind: SegmentKind::Private,
                    offset: cursor,
                });
            }
            segments.push(Segment {
                pattern: query.pattern.subpattern(off..off + len),
                kind: SegmentKind::Shared(ci),
                offset: off,
            });
            cursor = off + len;
        }
        if cursor < query.pattern.len() {
            segments.push(Segment {
                pattern: query.pattern.subpattern(cursor..query.pattern.len()),
                kind: SegmentKind::Private,
                offset: cursor,
            });
        }
        Ok(segments)
    }

    /// Check the plan against a workload: every candidate must be sharable
    /// (≥ 2 queries), occur in each of its queries, and no two candidates
    /// may overlap within a query (Definition 7).
    pub fn validate(&self, workload: &Workload) -> Result<(), PlanError> {
        for cand in &self.candidates {
            if cand.queries.len() < 2 {
                return Err(PlanError::NotSharable);
            }
        }
        for q in workload.queries() {
            self.claims_on(q)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use sharon_types::{Catalog, WindowSpec};

    /// The traffic workload of Figure 1 (patterns only; q5–q7 simplified to
    /// the parts that matter for decomposition).
    fn traffic(catalog: &mut Catalog) -> Workload {
        let mk = |c: &mut Catalog, names: &[&str]| {
            Query::simple(
                QueryId(0),
                Pattern::from_names(c, names.iter().copied()),
                AggFunc::CountStar,
                WindowSpec::paper_traffic(),
            )
        };
        Workload::from_queries([
            mk(catalog, &["OakSt", "MainSt", "StateSt"]), // q1
            mk(catalog, &["OakSt", "MainSt", "WestSt"]),  // q2
            mk(catalog, &["ParkAve", "OakSt", "MainSt"]), // q3
            mk(catalog, &["ParkAve", "OakSt", "MainSt", "WestSt"]), // q4
            mk(catalog, &["MainSt", "StateSt"]),          // q5
            mk(catalog, &["ElmSt", "ParkAve", "OakSt"]),  // q6
            mk(catalog, &["ElmSt", "ParkAve"]),           // q7
        ])
    }

    fn pat(c: &mut Catalog, names: &[&str]) -> Pattern {
        Pattern::from_names(c, names.iter().copied())
    }

    #[test]
    fn decompose_single_shared_segment_with_prefix_and_suffix() {
        let mut c = Catalog::new();
        let w = traffic(&mut c);
        // share p1 = (OakSt, MainSt) among q1..q4
        let p1 = pat(&mut c, &["OakSt", "MainSt"]);
        let plan = SharingPlan::new([PlanCandidate::new(
            p1.clone(),
            [QueryId(0), QueryId(1), QueryId(2), QueryId(3)],
        )]);
        plan.validate(&w).unwrap();

        // q4 = (ParkAve, OakSt, MainSt, WestSt): prefix (ParkAve), p1, suffix (WestSt)
        let segs = plan.decompose(w.get(QueryId(3))).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].kind, SegmentKind::Private);
        assert_eq!(segs[0].pattern.display(&c).to_string(), "(ParkAve)");
        assert_eq!(segs[0].offset, 0);
        assert_eq!(segs[1].kind, SegmentKind::Shared(0));
        assert_eq!(segs[1].pattern, p1);
        assert_eq!(segs[1].offset, 1);
        assert_eq!(segs[2].kind, SegmentKind::Private);
        assert_eq!(segs[2].pattern.display(&c).to_string(), "(WestSt)");
        assert_eq!(segs[2].offset, 3);

        // q1 = (OakSt, MainSt, StateSt): no prefix
        let segs = plan.decompose(w.get(QueryId(0))).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].kind, SegmentKind::Shared(0));
        assert_eq!(segs[1].pattern.display(&c).to_string(), "(StateSt)");

        // q3 = (ParkAve, OakSt, MainSt): no suffix
        let segs = plan.decompose(w.get(QueryId(2))).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].kind, SegmentKind::Shared(0));

        // q5 is untouched: one private segment
        let segs = plan.decompose(w.get(QueryId(4))).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].kind, SegmentKind::Private);
        assert_eq!(segs[0].pattern, w.get(QueryId(4)).pattern);
    }

    #[test]
    fn decompose_two_shared_segments_in_one_query() {
        let mut c = Catalog::new();
        let w = traffic(&mut c);
        // the optimal plan of Example 12 shares p2 and p4; q4 holds both
        let p2 = pat(&mut c, &["ParkAve", "OakSt"]);
        let p4 = pat(&mut c, &["MainSt", "WestSt"]);
        let plan = SharingPlan::new([
            PlanCandidate::new(p2.clone(), [QueryId(2), QueryId(3)]),
            PlanCandidate::new(p4.clone(), [QueryId(1), QueryId(3)]),
        ]);
        plan.validate(&w).unwrap();
        let segs = plan.decompose(w.get(QueryId(3))).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].kind, SegmentKind::Shared(0));
        assert_eq!(segs[0].pattern, p2);
        assert_eq!(segs[1].kind, SegmentKind::Shared(1));
        assert_eq!(segs[1].pattern, p4);
    }

    #[test]
    fn overlapping_candidates_rejected() {
        let mut c = Catalog::new();
        let w = traffic(&mut c);
        // p1 = (OakSt, MainSt) and p2 = (ParkAve, OakSt) overlap in q3, q4
        let p1 = pat(&mut c, &["OakSt", "MainSt"]);
        let p2 = pat(&mut c, &["ParkAve", "OakSt"]);
        let plan = SharingPlan::new([
            PlanCandidate::new(p1, [QueryId(0), QueryId(1), QueryId(2), QueryId(3)]),
            PlanCandidate::new(p2, [QueryId(2), QueryId(3)]),
        ]);
        assert_eq!(
            plan.validate(&w),
            Err(PlanError::OverlappingCandidates { query: QueryId(2) })
        );
    }

    #[test]
    fn pattern_not_in_query_rejected() {
        let mut c = Catalog::new();
        let w = traffic(&mut c);
        let bogus = pat(&mut c, &["WestSt", "ElmSt"]);
        let plan = SharingPlan::new([PlanCandidate::new(bogus, [QueryId(0), QueryId(1)])]);
        assert_eq!(
            plan.validate(&w),
            Err(PlanError::PatternNotInQuery { query: QueryId(0) })
        );
    }

    #[test]
    fn singleton_candidate_rejected() {
        let mut c = Catalog::new();
        let w = traffic(&mut c);
        let p1 = pat(&mut c, &["OakSt", "MainSt"]);
        let plan = SharingPlan::new([PlanCandidate::new(p1, [QueryId(0)])]);
        assert_eq!(plan.validate(&w), Err(PlanError::NotSharable));
    }

    #[test]
    fn non_shared_plan() {
        let plan = SharingPlan::non_shared();
        assert!(plan.is_non_shared());
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn whole_pattern_shared_leaves_no_private_segments() {
        let mut c = Catalog::new();
        let w = traffic(&mut c);
        // q7's whole pattern (ElmSt, ParkAve) is p7, shared with q6's prefix
        let p7 = pat(&mut c, &["ElmSt", "ParkAve"]);
        let plan = SharingPlan::new([PlanCandidate::new(p7.clone(), [QueryId(5), QueryId(6)])]);
        let segs = plan.decompose(w.get(QueryId(6))).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].kind, SegmentKind::Shared(0));
        assert_eq!(segs[0].pattern, p7);
    }
}
