//! `WHERE` predicates.
//!
//! Sharon's simplifying assumption (2) gives all queries identical
//! predicates; the §7.2 extension partitions the stream so that the Sharon
//! machinery applies within each partition. We support *per-event*
//! predicates of the form `Type.attr <op> literal`; the paper's cross-event
//! equivalence predicates (`[vehicle]` — all events from the same vehicle)
//! are expressed with `GROUP BY vehicle`, which partitions state identically.

use serde::{Deserialize, Serialize};
use sharon_types::{Catalog, Event, EventTypeId, Value};
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an `Ordering` (or `None` for incomparable
    /// values, which fails every operator except `!=`).
    pub fn eval(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(Ordering::Equal)) => false,
            (CmpOp::Ne, _) => true,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

/// The single definition of clause semantics, `value <op> literal`:
/// a **missing** value (`None`) fails every operator — `!=` included —
/// while a **present but incomparable** value (numeric vs. string, or a
/// NaN float) satisfies only `!=`.
///
/// Shared by [`Predicate::eval`], the executors' compiled predicate
/// tables, the two-step baselines' type tables, and the vectorized scan
/// kernel's string lane, so the call sites can never drift apart.
#[inline]
pub fn clause_passes(op: CmpOp, value: Option<&Value>, literal: &Value) -> bool {
    match value {
        Some(v) => op.eval(v.partial_cmp(literal)),
        None => false,
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A per-event predicate `Type.attr <op> literal`.
///
/// The predicate constrains events of type `ty`; events of other types are
/// unaffected. An event of type `ty` lacking the attribute fails the
/// predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// The constrained event type.
    pub ty: EventTypeId,
    /// Attribute name (resolved against the type's schema at compile time).
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: Value,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(ty: EventTypeId, attr: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Predicate {
            ty,
            attr: attr.into(),
            op,
            value,
        }
    }

    /// Evaluate against `event`, resolving the attribute by name through
    /// `catalog`. Events of other types pass vacuously.
    ///
    /// The executors pre-resolve the attribute to a positional id instead of
    /// calling this on the hot path.
    pub fn eval(&self, catalog: &Catalog, event: &Event) -> bool {
        if event.ty != self.ty {
            return true;
        }
        let Some(attr) = catalog.schema(self.ty).attr(&self.attr) else {
            return false;
        };
        clause_passes(self.op, event.attr(attr), &self.value)
    }

    /// Render with type names from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a Catalog);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "{}.{} {} {}",
                    self.1.name(self.0.ty),
                    self.0.attr,
                    self.0.op,
                    self.0.value
                )
            }
        }
        D(self, catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_types::{Schema, Timestamp};

    fn setup() -> (Catalog, EventTypeId) {
        let mut c = Catalog::new();
        let t = c.register_with_schema("Pos", Schema::new(["speed"]));
        (c, t)
    }

    fn ev(t: EventTypeId, speed: f64) -> Event {
        Event::with_attrs(t, Timestamp(0), vec![Value::Float(speed)])
    }

    #[test]
    fn cmp_op_semantics() {
        use Ordering::*;
        assert!(CmpOp::Eq.eval(Some(Equal)));
        assert!(!CmpOp::Eq.eval(Some(Less)));
        assert!(!CmpOp::Eq.eval(None));
        assert!(CmpOp::Ne.eval(None), "incomparable values are 'not equal'");
        assert!(CmpOp::Ne.eval(Some(Greater)));
        assert!(!CmpOp::Ne.eval(Some(Equal)));
        assert!(CmpOp::Lt.eval(Some(Less)) && !CmpOp::Lt.eval(Some(Equal)));
        assert!(CmpOp::Le.eval(Some(Equal)) && CmpOp::Le.eval(Some(Less)));
        assert!(CmpOp::Gt.eval(Some(Greater)) && !CmpOp::Gt.eval(Some(Equal)));
        assert!(CmpOp::Ge.eval(Some(Equal)) && !CmpOp::Ge.eval(Some(Less)));
    }

    #[test]
    fn predicate_on_matching_type() {
        let (c, t) = setup();
        let p = Predicate::new(t, "speed", CmpOp::Gt, Value::Int(60));
        assert!(p.eval(&c, &ev(t, 70.0)));
        assert!(!p.eval(&c, &ev(t, 50.0)));
        assert!(!p.eval(&c, &ev(t, 60.0)));
    }

    #[test]
    fn other_types_pass_vacuously() {
        let (mut c, t) = setup();
        let other = c.register("Other");
        let p = Predicate::new(t, "speed", CmpOp::Gt, Value::Int(60));
        assert!(p.eval(&c, &Event::new(other, Timestamp(0))));
    }

    #[test]
    fn missing_attribute_fails() {
        let (c, t) = setup();
        let p = Predicate::new(t, "nonexistent", CmpOp::Eq, Value::Int(0));
        assert!(!p.eval(&c, &ev(t, 1.0)));
        // attribute exists in schema but not on the event instance
        let p2 = Predicate::new(t, "speed", CmpOp::Eq, Value::Int(0));
        assert!(!p2.eval(&c, &Event::new(t, Timestamp(0))));
    }

    #[test]
    fn display() {
        let (c, t) = setup();
        let p = Predicate::new(t, "speed", CmpOp::Le, Value::Int(30));
        assert_eq!(p.display(&c).to_string(), "Pos.speed <= 30");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }
}
