//! Aggregation functions (the `RETURN` clause).
//!
//! Definition 2: "We focus on distributive (such as COUNT, MIN, MAX, SUM)
//! and algebraic aggregation functions (such as AVG), since they can be
//! computed incrementally."
//!
//! * `COUNT(*)` — the number of matched sequences per group and window.
//! * `COUNT(E)` — the number of events of type `E` across all matched
//!   sequences. Under assumption (3) each sequence contains exactly one `E`
//!   event, so `COUNT(E) = COUNT(*)` whenever `E` appears in the pattern.
//! * `MIN/MAX/SUM/AVG(E.attr)` — over the `attr` values of all `E` events in
//!   all matched sequences.

use serde::{Deserialize, Serialize};
use sharon_types::{Catalog, EventTypeId};
use std::fmt;

/// The aggregation function of a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)`: number of matched sequences.
    CountStar,
    /// `COUNT(E)`: number of `E` events across all matched sequences.
    Count(EventTypeId),
    /// `SUM(E.attr)`.
    Sum(EventTypeId, String),
    /// `MIN(E.attr)`.
    Min(EventTypeId, String),
    /// `MAX(E.attr)`.
    Max(EventTypeId, String),
    /// `AVG(E.attr) = SUM(E.attr) / COUNT(E)`.
    Avg(EventTypeId, String),
}

impl AggFunc {
    /// The event type the aggregate targets, if any (`None` for
    /// `COUNT(*)`).
    pub fn target_type(&self) -> Option<EventTypeId> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(t)
            | AggFunc::Sum(t, _)
            | AggFunc::Min(t, _)
            | AggFunc::Max(t, _)
            | AggFunc::Avg(t, _) => Some(*t),
        }
    }

    /// The attribute the aggregate reads, if any.
    pub fn target_attr(&self) -> Option<&str> {
        match self {
            AggFunc::CountStar | AggFunc::Count(_) => None,
            AggFunc::Sum(_, a) | AggFunc::Min(_, a) | AggFunc::Max(_, a) | AggFunc::Avg(_, a) => {
                Some(a)
            }
        }
    }

    /// True for the pure-counting aggregates that the specialized
    /// count-only executor kernel can evaluate.
    pub fn is_count_like(&self) -> bool {
        matches!(self, AggFunc::CountStar | AggFunc::Count(_))
    }

    /// Render with type names from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        struct D<'a>(&'a AggFunc, &'a Catalog);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    AggFunc::CountStar => write!(f, "COUNT(*)"),
                    AggFunc::Count(t) => write!(f, "COUNT({})", self.1.name(*t)),
                    AggFunc::Sum(t, a) => write!(f, "SUM({}.{a})", self.1.name(*t)),
                    AggFunc::Min(t, a) => write!(f, "MIN({}.{a})", self.1.name(*t)),
                    AggFunc::Max(t, a) => write!(f, "MAX({}.{a})", self.1.name(*t)),
                    AggFunc::Avg(t, a) => write!(f, "AVG({}.{a})", self.1.name(*t)),
                }
            }
        }
        D(self, catalog)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "COUNT(*)"),
            AggFunc::Count(t) => write!(f, "COUNT({t})"),
            AggFunc::Sum(t, a) => write!(f, "SUM({t}.{a})"),
            AggFunc::Min(t, a) => write!(f, "MIN({t}.{a})"),
            AggFunc::Max(t, a) => write!(f, "MAX({t}.{a})"),
            AggFunc::Avg(t, a) => write!(f, "AVG({t}.{a})"),
        }
    }
}

/// The result of one aggregate, per group and window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggValue {
    /// A count (`COUNT(*)`, `COUNT(E)`).
    Count(u128),
    /// A numeric value (`SUM`, `MIN`, `MAX`, `AVG`). `None` when no
    /// sequence matched (MIN/MAX/AVG of the empty set).
    Number(Option<f64>),
}

impl AggValue {
    /// The count, if this is a count result.
    pub fn as_count(&self) -> Option<u128> {
        match self {
            AggValue::Count(c) => Some(*c),
            AggValue::Number(_) => None,
        }
    }

    /// Numeric view (counts convert losslessly for small values).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AggValue::Count(c) => Some(*c as f64),
            AggValue::Number(n) => *n,
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::Count(c) => write!(f, "{c}"),
            AggValue::Number(Some(x)) => write!(f, "{x}"),
            AggValue::Number(None) => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets() {
        let t = EventTypeId(4);
        assert_eq!(AggFunc::CountStar.target_type(), None);
        assert_eq!(AggFunc::Count(t).target_type(), Some(t));
        assert_eq!(AggFunc::Sum(t, "price".into()).target_attr(), Some("price"));
        assert_eq!(AggFunc::Count(t).target_attr(), None);
        assert!(AggFunc::CountStar.is_count_like());
        assert!(AggFunc::Count(t).is_count_like());
        assert!(!AggFunc::Avg(t, "x".into()).is_count_like());
    }

    #[test]
    fn display_with_catalog() {
        let mut c = Catalog::new();
        let laptop = c.register("Laptop");
        assert_eq!(AggFunc::CountStar.display(&c).to_string(), "COUNT(*)");
        assert_eq!(
            AggFunc::Avg(laptop, "price".into()).display(&c).to_string(),
            "AVG(Laptop.price)"
        );
        assert_eq!(AggFunc::Count(laptop).to_string(), "COUNT(E0)");
    }

    #[test]
    fn agg_values() {
        assert_eq!(AggValue::Count(7).as_count(), Some(7));
        assert_eq!(AggValue::Count(7).as_f64(), Some(7.0));
        assert_eq!(AggValue::Number(Some(1.5)).as_f64(), Some(1.5));
        assert_eq!(AggValue::Number(None).as_f64(), None);
        assert_eq!(AggValue::Number(None).as_count(), None);
        assert_eq!(AggValue::Count(3).to_string(), "3");
        assert_eq!(AggValue::Number(None).to_string(), "null");
    }
}
