//! Multi-query workloads.
//!
//! "An event consumer (e.g., carpool system) monitors the stream with a
//! workload of queries that detect and aggregate event sequences"
//! (Section 2.1). [`QueryId`]s are indexes into the workload.

use crate::query::{Query, QueryId};
use serde::{Deserialize, Serialize};
use sharon_types::EventTypeId;
use std::collections::BTreeSet;

use crate::pattern::Pattern;

/// An ordered collection of queries evaluated against one stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    queries: Vec<Query>,
}

impl Workload {
    /// An empty workload.
    pub fn new() -> Self {
        Workload {
            queries: Vec::new(),
        }
    }

    /// Build from queries; each query's `id` is rewritten to its index.
    pub fn from_queries(queries: impl IntoIterator<Item = Query>) -> Self {
        let mut w = Workload::new();
        for q in queries {
            w.push(q);
        }
        w
    }

    /// Append a query, assigning it the next [`QueryId`]. Returns the id.
    pub fn push(&mut self, mut query: Query) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        query.id = id;
        self.queries.push(query);
        id
    }

    /// Remove the query with `id` and renumber the remainder (used by the
    /// dynamic-workload extension, §7.4). Returns the removed query.
    pub fn remove(&mut self, id: QueryId) -> Query {
        let q = self.queries.remove(id.index());
        for (i, query) in self.queries.iter_mut().enumerate() {
            query.id = QueryId(i as u32);
        }
        q
    }

    /// Keep only the queries for which `keep` returns true, then renumber
    /// the remainder to index order (the bulk form of [`Workload::remove`],
    /// used when a live session rebuilds its shared workload after churn).
    /// The predicate sees each query with its **pre-retain** id.
    pub fn retain(&mut self, mut keep: impl FnMut(&Query) -> bool) {
        self.queries.retain(|q| keep(q));
        for (i, query) in self.queries.iter_mut().enumerate() {
            query.id = QueryId(i as u32);
        }
    }

    /// The query with `id`.
    pub fn get(&self, id: QueryId) -> &Query {
        &self.queries[id.index()]
    }

    /// All queries, in id order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterate over query ids.
    pub fn ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        (0..self.queries.len() as u32).map(QueryId)
    }

    /// The set of event types any query refers to.
    pub fn referenced_types(&self) -> BTreeSet<EventTypeId> {
        self.queries
            .iter()
            .flat_map(|q| q.pattern.types().iter().copied())
            .collect()
    }

    /// Queries whose pattern contains `p` contiguously — the `Q_p` of
    /// Definition 3.
    pub fn queries_containing(&self, p: &Pattern) -> BTreeSet<QueryId> {
        self.queries
            .iter()
            .filter(|q| q.pattern.find(p).is_some())
            .map(|q| q.id)
            .collect()
    }
}

impl std::ops::Index<QueryId> for Workload {
    type Output = Query;
    fn index(&self, id: QueryId) -> &Query {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use sharon_types::{Catalog, WindowSpec};

    fn workload(catalog: &mut Catalog, patterns: &[&[&str]]) -> Workload {
        Workload::from_queries(patterns.iter().map(|names| {
            Query::simple(
                QueryId(0),
                Pattern::from_names(catalog, names.iter().copied()),
                AggFunc::CountStar,
                WindowSpec::paper_traffic(),
            )
        }))
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut c = Catalog::new();
        let w = workload(&mut c, &[&["A", "B"], &["B", "C"]]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(QueryId(0)).id, QueryId(0));
        assert_eq!(w.get(QueryId(1)).id, QueryId(1));
        assert_eq!(w.ids().collect::<Vec<_>>(), vec![QueryId(0), QueryId(1)]);
        assert_eq!(w[QueryId(1)].pattern.len(), 2);
    }

    #[test]
    fn queries_containing_matches_table_1_style_lookup() {
        let mut c = Catalog::new();
        // q1..q4 of the traffic workload all contain (OakSt, MainSt)
        let w = workload(
            &mut c,
            &[
                &["OakSt", "MainSt", "StateSt"],
                &["OakSt", "MainSt", "WestSt"],
                &["ParkAve", "OakSt", "MainSt"],
                &["ParkAve", "OakSt", "MainSt", "WestSt"],
                &["MainSt", "StateSt", "ElmSt"],
            ],
        );
        let p1 = Pattern::from_names(&mut c, ["OakSt", "MainSt"]);
        let qs = w.queries_containing(&p1);
        assert_eq!(
            qs,
            [QueryId(0), QueryId(1), QueryId(2), QueryId(3)]
                .into_iter()
                .collect()
        );
        let p6 = Pattern::from_names(&mut c, ["MainSt", "StateSt"]);
        assert_eq!(
            w.queries_containing(&p6),
            [QueryId(0), QueryId(4)].into_iter().collect()
        );
    }

    #[test]
    fn remove_renumbers() {
        let mut c = Catalog::new();
        let mut w = workload(&mut c, &[&["A", "B"], &["B", "C"], &["C", "D"]]);
        let removed = w.remove(QueryId(1));
        assert_eq!(removed.pattern.display(&c).to_string(), "(B, C)");
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(QueryId(1)).pattern.display(&c).to_string(), "(C, D)");
        assert_eq!(w.get(QueryId(1)).id, QueryId(1));
    }

    #[test]
    fn retain_renumbers_like_repeated_remove() {
        let mut c = Catalog::new();
        let mut w = workload(
            &mut c,
            &[&["A", "B"], &["B", "C"], &["C", "D"], &["D", "A"]],
        );
        // drop q2 and q4 (ids 1 and 3, as seen pre-retain)
        w.retain(|q| q.id.index() % 2 == 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(QueryId(0)).pattern.display(&c).to_string(), "(A, B)");
        assert_eq!(w.get(QueryId(1)).pattern.display(&c).to_string(), "(C, D)");
        assert_eq!(w.get(QueryId(1)).id, QueryId(1));
    }

    #[test]
    fn referenced_types() {
        let mut c = Catalog::new();
        let w = workload(&mut c, &[&["A", "B"], &["B", "C"]]);
        assert_eq!(w.referenced_types().len(), 3);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(w.queries().len(), 0);
    }
}
