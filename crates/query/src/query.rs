//! Event sequence aggregation queries.
//!
//! Definition 2: a query consists of a `RETURN` clause (aggregation), a
//! `PATTERN` clause, optional `WHERE` predicates, optional `GROUP BY`
//! attributes, and a `WITHIN`/`SLIDE` window.

use crate::aggregate::AggFunc;
use crate::pattern::Pattern;
use crate::predicate::Predicate;
use serde::{Deserialize, Serialize};
use sharon_types::{Catalog, EventTypeId, WindowSpec};
use std::fmt;

/// Identifier of a query within a [`crate::Workload`] (its index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0 + 1) // the paper numbers queries from q1
    }
}

/// An event sequence aggregation query (Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Identifier within the workload.
    pub id: QueryId,
    /// The `PATTERN SEQ(...)` clause.
    pub pattern: Pattern,
    /// The `RETURN` clause.
    pub agg: AggFunc,
    /// The `WHERE` clause (conjunction; empty = no predicates).
    pub predicates: Vec<Predicate>,
    /// The `GROUP BY` clause (attribute names; empty = one global group).
    pub group_by: Vec<String>,
    /// The `WITHIN`/`SLIDE` clause.
    pub window: WindowSpec,
}

impl Query {
    /// Build a query with no predicates and no grouping.
    pub fn simple(id: QueryId, pattern: Pattern, agg: AggFunc, window: WindowSpec) -> Self {
        Query {
            id,
            pattern,
            agg,
            predicates: Vec::new(),
            group_by: Vec::new(),
            window,
        }
    }

    /// Add a grouping attribute (builder style).
    pub fn group_by(mut self, attr: impl Into<String>) -> Self {
        self.group_by.push(attr.into());
        self
    }

    /// Add a predicate (builder style).
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// The *sharing signature* of the query: queries may share pattern
    /// aggregation only if their predicates, grouping, and windows coincide
    /// and they aggregate compatibly (assumption (2) / §7.2). Two queries
    /// with equal signatures are shard-compatible.
    pub fn sharing_signature(&self) -> SharingSignature {
        SharingSignature {
            window: self.window,
            group_by: self.group_by.clone(),
            predicates: self.predicates.iter().map(|p| format!("{:?}", p)).collect(),
            agg_target: self.agg.target_type().map(|t| t.0),
            agg_attr: self.agg.target_attr().map(str::to_owned),
            count_like: self.agg.is_count_like(),
        }
    }

    /// Render the query in its surface syntax using `catalog` names.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Query, &'a Catalog);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let q = self.0;
                write!(f, "RETURN {} PATTERN SEQ", q.agg.display(self.1))?;
                write!(f, "{}", q.pattern.display(self.1))?;
                if !q.predicates.is_empty() {
                    write!(f, " WHERE ")?;
                    for (i, p) in q.predicates.iter().enumerate() {
                        if i > 0 {
                            write!(f, " AND ")?;
                        }
                        write!(f, "{}", p.display(self.1))?;
                    }
                }
                if !q.group_by.is_empty() {
                    write!(f, " GROUP BY {}", q.group_by.join(", "))?;
                }
                write!(f, " {}", q.window)
            }
        }
        D(self, catalog)
    }
}

/// Full semantic identity of a query, independent of its [`QueryId`].
///
/// Two queries with equal `QuerySig`s compute the *same answer* on every
/// stream: same pattern type sequence, same aggregate, and the same
/// [`SharingSignature`] (window, grouping, predicates). A live session
/// uses this as the **attach fast-path key**: attaching a query whose
/// `QuerySig` matches one already running joins the existing computation
/// as an alias instead of compiling a new plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuerySig {
    pattern: Vec<EventTypeId>,
    agg: AggFunc,
    sharing: SharingSignature,
}

impl QuerySig {
    /// The semantic identity of `query`.
    pub fn of(query: &Query) -> Self {
        QuerySig {
            pattern: query.pattern.types().to_vec(),
            agg: query.agg.clone(),
            sharing: query.sharing_signature(),
        }
    }
}

/// Equality witness for shard compatibility (see
/// [`Query::sharing_signature`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SharingSignature {
    window: WindowSpec,
    group_by: Vec<String>,
    predicates: Vec<String>,
    agg_target: Option<u32>,
    agg_attr: Option<String>,
    count_like: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use sharon_types::{TimeDelta, Value};

    fn mk(catalog: &mut Catalog) -> Query {
        let pattern = Pattern::from_names(catalog, ["OakSt", "MainSt"]);
        Query::simple(
            QueryId(0),
            pattern,
            AggFunc::CountStar,
            WindowSpec::paper_traffic(),
        )
        .group_by("vehicle")
    }

    #[test]
    fn display_round_trip_shape() {
        let mut c = Catalog::new();
        let q = mk(&mut c);
        assert_eq!(
            q.display(&c).to_string(),
            "RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) GROUP BY vehicle WITHIN 10min SLIDE 1min"
        );
    }

    #[test]
    fn display_with_predicates() {
        let mut c = Catalog::new();
        let q = mk(&mut c);
        let oak = c.lookup("OakSt").unwrap();
        let q = q.with_predicate(Predicate::new(oak, "speed", CmpOp::Gt, Value::Int(10)));
        let s = q.display(&c).to_string();
        assert!(s.contains("WHERE OakSt.speed > 10"), "{s}");
    }

    #[test]
    fn sharing_signatures_distinguish_window_and_grouping() {
        let mut c = Catalog::new();
        let a = mk(&mut c);
        let mut b = mk(&mut c);
        assert_eq!(a.sharing_signature(), b.sharing_signature());
        b.window = WindowSpec::tumbling(TimeDelta::from_mins(5));
        assert_ne!(a.sharing_signature(), b.sharing_signature());
        let mut d = mk(&mut c);
        d.group_by.clear();
        assert_ne!(a.sharing_signature(), d.sharing_signature());
    }

    #[test]
    fn count_star_and_count_e_are_shard_compatible_only_with_counts() {
        let mut c = Catalog::new();
        let a = mk(&mut c);
        let mut b = mk(&mut c);
        b.agg = AggFunc::Count(c.lookup("OakSt").unwrap());
        // both count-like with different targets: COUNT aggregates are
        // jointly executable by the count kernel, but the signature keeps
        // the target so the executor can discriminate outputs.
        assert_ne!(a.sharing_signature(), b.sharing_signature());
        let mut e = mk(&mut c);
        e.agg = AggFunc::Sum(c.lookup("OakSt").unwrap(), "speed".into());
        assert_ne!(a.sharing_signature(), e.sharing_signature());
    }

    #[test]
    fn query_sig_ignores_id_but_not_pattern() {
        let mut c = Catalog::new();
        let a = mk(&mut c);
        let mut b = mk(&mut c);
        b.id = QueryId(7);
        assert_eq!(QuerySig::of(&a), QuerySig::of(&b));
        let mut d = mk(&mut c);
        d.pattern = Pattern::from_names(&mut c, ["MainSt", "OakSt"]);
        assert_ne!(QuerySig::of(&a), QuerySig::of(&d));
        let mut e = mk(&mut c);
        e.agg = AggFunc::Count(c.lookup("OakSt").unwrap());
        assert_ne!(QuerySig::of(&a), QuerySig::of(&e));
    }

    #[test]
    fn query_id_display_is_one_based() {
        assert_eq!(QueryId(0).to_string(), "q1");
        assert_eq!(QueryId(6).to_string(), "q7");
        assert_eq!(QueryId(3).index(), 3);
    }
}
