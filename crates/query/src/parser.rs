//! Parser for the SASE-style surface syntax of Sharon queries.
//!
//! The paper writes queries as (Figure 1):
//!
//! ```text
//! RETURN COUNT(*)
//! PATTERN SEQ(OakSt, MainSt)
//! WHERE [vehicle]
//! GROUP BY vehicle
//! WITHIN 10 min SLIDE 1 min
//! ```
//!
//! Supported grammar (keywords are case-insensitive; newlines are
//! whitespace):
//!
//! ```text
//! query    := RETURN agg PATTERN SEQ '(' ident (',' ident)* ')'
//!             [WHERE pred (AND pred)*]
//!             [GROUP BY ident (',' ident)*]
//!             WITHIN duration SLIDE duration
//! agg      := COUNT '(' ('*' | ident) ')'
//!           | (SUM|MIN|MAX|AVG) '(' ident '.' ident ')'
//! pred     := ident '.' ident op literal | '[' ident ']'
//! op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal  := number | 'string'
//! duration := number unit        unit := ms | s | sec | min | hour
//! ```
//!
//! The paper's bracketed equivalence predicate `[vehicle]` is sugar for
//! `GROUP BY vehicle` (same-partition semantics; see
//! [`crate::predicate`]).

use crate::aggregate::AggFunc;
use crate::pattern::Pattern;
use crate::predicate::{CmpOp, Predicate};
use crate::query::{Query, QueryId};
use crate::workload::Workload;
use sharon_types::{Catalog, TimeDelta, Value, WindowSpec};
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input at which the failure occurred.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Star,
    Op(CmpOp),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::Float(x) => write!(f, "float `{x}`"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Op(op) => write!(f, "`{op}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn next_token(&mut self) -> Result<(Tok, usize), ParseError> {
        while matches!(self.peek_char(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
        let start = self.pos;
        let Some(c) = self.bump() else {
            return Ok((Tok::Eof, start));
        };
        let tok = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            '*' => Tok::Star,
            '=' => Tok::Op(CmpOp::Eq),
            '!' => {
                if self.peek_char() == Some('=') {
                    self.bump();
                    Tok::Op(CmpOp::Ne)
                } else {
                    return Err(self.err("expected `=` after `!`"));
                }
            }
            '<' => {
                if self.peek_char() == Some('=') {
                    self.bump();
                    Tok::Op(CmpOp::Le)
                } else {
                    Tok::Op(CmpOp::Lt)
                }
            }
            '>' => {
                if self.peek_char() == Some('=') {
                    self.bump();
                    Tok::Op(CmpOp::Ge)
                } else {
                    Tok::Op(CmpOp::Gt)
                }
            }
            '\'' => {
                let s_start = self.pos;
                loop {
                    match self.bump() {
                        Some('\'') => break,
                        Some(_) => {}
                        None => return Err(self.err("unterminated string literal")),
                    }
                }
                Tok::Str(self.src[s_start..self.pos - 1].to_string())
            }
            c if c.is_ascii_digit() || c == '-' => {
                while matches!(self.peek_char(), Some(c) if c.is_ascii_digit() || c == '.') {
                    // a dot is part of the number only if a digit follows
                    // (so `Type.attr` lexes as ident, dot, ident)
                    if self.peek_char() == Some('.') {
                        let after = self.src[self.pos + 1..].chars().next();
                        if !matches!(after, Some(d) if d.is_ascii_digit()) {
                            break;
                        }
                    }
                    self.bump();
                }
                let text = &self.src[start..self.pos];
                if text.contains('.') {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| self.err(format!("invalid float `{text}`")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| self.err(format!("invalid integer `{text}`")))?,
                    )
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                while matches!(self.peek_char(), Some(c) if c.is_alphanumeric() || c == '_') {
                    self.bump();
                }
                Tok::Ident(self.src[start..self.pos].to_string())
            }
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        };
        Ok((tok, start))
    }
}

struct Parser<'a> {
    tokens: Vec<(Tok, usize)>,
    cursor: usize,
    catalog: &'a mut Catalog,
}

impl<'a> Parser<'a> {
    fn new(src: &str, catalog: &'a mut Catalog) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        loop {
            let (tok, off) = lexer.next_token()?;
            let eof = tok == Tok::Eof;
            tokens.push((tok, off));
            if eof {
                break;
            }
        }
        Ok(Parser {
            tokens,
            cursor: 0,
            catalog,
        })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.cursor].0
    }

    fn offset(&self) -> usize {
        self.tokens[self.cursor].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.cursor].0.clone();
        if self.cursor + 1 < self.tokens.len() {
            self.cursor += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    /// Consume an identifier, returning it.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    /// Consume a specific keyword (case-insensitive).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword {kw}, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("RETURN")?;
        let agg_name = self.ident()?;
        self.expect(Tok::LParen)?;
        let agg = match agg_name.to_ascii_uppercase().as_str() {
            "COUNT" => {
                if *self.peek() == Tok::Star {
                    self.bump();
                    AggFunc::CountStar
                } else {
                    let ty = self.ident()?;
                    AggFunc::Count(self.catalog.register(&ty))
                }
            }
            fun @ ("SUM" | "MIN" | "MAX" | "AVG") => {
                let ty_name = self.ident()?;
                self.expect(Tok::Dot)?;
                let attr = self.ident()?;
                let ty = self.catalog.register(&ty_name);
                match fun {
                    "SUM" => AggFunc::Sum(ty, attr),
                    "MIN" => AggFunc::Min(ty, attr),
                    "MAX" => AggFunc::Max(ty, attr),
                    "AVG" => AggFunc::Avg(ty, attr),
                    _ => unreachable!(),
                }
            }
            other => return Err(self.err(format!("unknown aggregation function `{other}`"))),
        };
        self.expect(Tok::RParen)?;

        self.keyword("PATTERN")?;
        self.keyword("SEQ")?;
        self.expect(Tok::LParen)?;
        let first = self.ident()?;
        let mut types = vec![self.catalog.register(&first)];
        while *self.peek() == Tok::Comma {
            self.bump();
            let name = self.ident()?;
            types.push(self.catalog.register(&name));
        }
        self.expect(Tok::RParen)?;
        let pattern = Pattern::new(types);

        let mut predicates = Vec::new();
        let mut group_by: Vec<String> = Vec::new();
        if self.at_keyword("WHERE") {
            self.bump();
            loop {
                if *self.peek() == Tok::LBracket {
                    // `[vehicle]`: equivalence predicate, sugar for GROUP BY
                    self.bump();
                    let attr = self.ident()?;
                    self.expect(Tok::RBracket)?;
                    if !group_by.contains(&attr) {
                        group_by.push(attr);
                    }
                } else {
                    let ty_name = self.ident()?;
                    self.expect(Tok::Dot)?;
                    let attr = self.ident()?;
                    let op = match self.bump() {
                        Tok::Op(op) => op,
                        other => {
                            return Err(
                                self.err(format!("expected comparison operator, found {other}"))
                            )
                        }
                    };
                    let value = match self.bump() {
                        Tok::Int(i) => Value::Int(i),
                        Tok::Float(x) => Value::Float(x),
                        Tok::Str(s) => Value::from(s),
                        other => return Err(self.err(format!("expected literal, found {other}"))),
                    };
                    let ty = self.catalog.register(&ty_name);
                    predicates.push(Predicate::new(ty, attr, op, value));
                }
                if self.at_keyword("AND") {
                    self.bump();
                } else {
                    break;
                }
            }
        }

        if self.at_keyword("GROUP") {
            self.bump();
            self.keyword("BY")?;
            loop {
                let attr = self.ident()?;
                if !group_by.contains(&attr) {
                    group_by.push(attr);
                }
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }

        self.keyword("WITHIN")?;
        let within = self.duration()?;
        self.keyword("SLIDE")?;
        let slide = self.duration()?;
        if slide.is_zero() || slide > within {
            return Err(self.err("SLIDE must be positive and at most WITHIN"));
        }

        Ok(Query {
            id: QueryId(0),
            pattern,
            agg,
            predicates,
            group_by,
            window: WindowSpec::new(within, slide),
        })
    }

    fn duration(&mut self) -> Result<TimeDelta, ParseError> {
        let n = match self.bump() {
            Tok::Int(i) if i >= 0 => i as u64,
            other => return Err(self.err(format!("expected duration count, found {other}"))),
        };
        let unit = self.ident()?;
        let ms = match unit.to_ascii_lowercase().as_str() {
            "ms" | "milliseconds" | "millisecond" => n,
            "s" | "sec" | "secs" | "second" | "seconds" => n * 1000,
            "min" | "mins" | "minute" | "minutes" => n * 60_000,
            "h" | "hour" | "hours" => n * 3_600_000,
            other => return Err(self.err(format!("unknown time unit `{other}`"))),
        };
        Ok(TimeDelta::from_millis(ms))
    }
}

/// Parse one query, registering event types in `catalog`.
///
/// The query is assigned id 0; pushing it into a [`Workload`] renumbers it.
pub fn parse_query(catalog: &mut Catalog, src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src, catalog)?;
    let q = p.query()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err(format!("trailing input: {}", p.peek())));
    }
    Ok(q)
}

/// Parse a workload from multiple query strings.
pub fn parse_workload<S: AsRef<str>>(
    catalog: &mut Catalog,
    sources: impl IntoIterator<Item = S>,
) -> Result<Workload, ParseError> {
    let mut w = Workload::new();
    for src in sources {
        w.push(parse_query(catalog, src.as_ref())?);
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_q1() {
        let mut c = Catalog::new();
        let q = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt, StateSt)\n\
             WHERE [vehicle] WITHIN 10 min SLIDE 1 min",
        )
        .unwrap();
        assert_eq!(q.agg, AggFunc::CountStar);
        assert_eq!(q.pattern.len(), 3);
        assert_eq!(
            q.pattern.display(&c).to_string(),
            "(OakSt, MainSt, StateSt)"
        );
        assert_eq!(q.group_by, vec!["vehicle".to_string()]);
        assert_eq!(q.window, WindowSpec::paper_traffic());
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parses_aggregates() {
        let mut c = Catalog::new();
        let q = parse_query(
            &mut c,
            "RETURN AVG(Laptop.price) PATTERN SEQ(Laptop, Case) WITHIN 20 min SLIDE 1 min",
        )
        .unwrap();
        let laptop = c.lookup("Laptop").unwrap();
        assert_eq!(q.agg, AggFunc::Avg(laptop, "price".into()));

        let q = parse_query(
            &mut c,
            "RETURN COUNT(Case) PATTERN SEQ(Laptop, Case) WITHIN 60 s SLIDE 10 s",
        )
        .unwrap();
        assert_eq!(q.agg, AggFunc::Count(c.lookup("Case").unwrap()));
        assert_eq!(q.window.within, TimeDelta::from_secs(60));
    }

    #[test]
    fn parses_predicates() {
        let mut c = Catalog::new();
        let q = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) \
             WHERE A.speed >= 60 AND B.name = 'fast' AND [car] \
             WITHIN 5 min SLIDE 5 min",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].op, CmpOp::Ge);
        assert_eq!(q.predicates[0].value, Value::Int(60));
        assert_eq!(q.predicates[1].value, Value::from("fast"));
        assert_eq!(q.group_by, vec!["car".to_string()]);
    }

    #[test]
    fn group_by_clause_and_bracket_sugar_dedupe() {
        let mut c = Catalog::new();
        let q = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE [u] GROUP BY u, v WITHIN 1 min SLIDE 1 min",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["u".to_string(), "v".to_string()]);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let mut c = Catalog::new();
        let q = parse_query(
            &mut c,
            "return count(*) pattern seq(A, B) within 2 MIN slide 1 Min",
        )
        .unwrap();
        assert_eq!(q.window.within, TimeDelta::from_mins(2));
    }

    #[test]
    fn parse_workload_registers_types_once() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) WITHIN 10 min SLIDE 1 min",
                "RETURN COUNT(*) PATTERN SEQ(MainSt, WestSt) WITHIN 10 min SLIDE 1 min",
            ],
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(c.len(), 3, "MainSt interned once");
        assert_eq!(w.get(QueryId(1)).id, QueryId(1));
    }

    #[test]
    fn error_reporting() {
        let mut c = Catalog::new();
        let e = parse_query(
            &mut c,
            "RETURN BOGUS(*) PATTERN SEQ(A) WITHIN 1 s SLIDE 1 s",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown aggregation"), "{e}");

        let e = parse_query(&mut c, "RETURN COUNT(*)").unwrap_err();
        assert!(e.message.contains("PATTERN"), "{e}");

        let e = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 1 min SLIDE 2 min",
        )
        .unwrap_err();
        assert!(e.message.contains("SLIDE"), "{e}");

        let e = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 1 fortnight SLIDE 1 min",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown time unit"), "{e}");

        let e = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 1 min SLIDE 1 min trailing",
        )
        .unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn lexer_edge_cases() {
        let mut c = Catalog::new();
        // floats and negative numbers in predicates
        let q = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.x < -1.5 WITHIN 1 s SLIDE 1 s",
        )
        .unwrap();
        assert_eq!(q.predicates[0].value, Value::Float(-1.5));
        // unterminated string
        let e = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.x = 'oops WITHIN 1 s SLIDE 1 s",
        )
        .unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
        // bare `!`
        let e = parse_query(
            &mut c,
            "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.x ! 3 WITHIN 1 s SLIDE 1 s",
        )
        .unwrap_err();
        assert!(e.message.contains("expected `=`"), "{e}");
    }
}
