//! Event sequence patterns.
//!
//! Definition 1: "Given event types `E₁, …, E_l`, an event sequence pattern
//! has the form `P = (E₁ … E_l)` where `l ≥ 1` is the length of `P`." A match
//! is a sequence of events of those types with strictly increasing
//! timestamps.

use serde::{Deserialize, Serialize};
use sharon_types::{Catalog, EventTypeId};
use std::fmt;
use std::ops::Range;

/// An event sequence pattern `(E₁ … E_l)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pattern {
    types: Box<[EventTypeId]>,
}

impl Pattern {
    /// Build a pattern from event types. Panics on an empty sequence
    /// (Definition 1 requires `l ≥ 1`).
    pub fn new(types: impl Into<Vec<EventTypeId>>) -> Self {
        let types: Vec<EventTypeId> = types.into();
        assert!(!types.is_empty(), "a pattern must have length >= 1");
        Pattern {
            types: types.into_boxed_slice(),
        }
    }

    /// Build a pattern from type names, registering them in `catalog`.
    pub fn from_names<S: AsRef<str>>(
        catalog: &mut Catalog,
        names: impl IntoIterator<Item = S>,
    ) -> Self {
        let types: Vec<EventTypeId> = names
            .into_iter()
            .map(|n| catalog.register(n.as_ref()))
            .collect();
        Pattern::new(types)
    }

    /// The pattern length `l`.
    #[inline]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Patterns are never empty; kept for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The event types, in sequence order.
    #[inline]
    pub fn types(&self) -> &[EventTypeId] {
        &self.types
    }

    /// The START event type `E₁`.
    #[inline]
    pub fn start_type(&self) -> EventTypeId {
        self.types[0]
    }

    /// The END event type `E_l`.
    #[inline]
    pub fn end_type(&self) -> EventTypeId {
        self.types[self.types.len() - 1]
    }

    /// The type at position `i` (0-based).
    #[inline]
    pub fn type_at(&self, i: usize) -> EventTypeId {
        self.types[i]
    }

    /// All 0-based positions at which `ty` occurs. Under the paper's
    /// assumption (3) this has at most one element; the §7.3 extension
    /// allows several.
    pub fn positions_of(&self, ty: EventTypeId) -> Vec<usize> {
        self.types
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == ty)
            .map(|(i, _)| i)
            .collect()
    }

    /// True if any position has type `ty`.
    pub fn contains_type(&self, ty: EventTypeId) -> bool {
        self.types.contains(&ty)
    }

    /// True if some event type occurs more than once (violating the
    /// simplifying assumption (3) of Section 2.1; still executable via the
    /// §7.3 extension).
    pub fn has_repeated_type(&self) -> bool {
        let mut seen = self.types.to_vec();
        seen.sort();
        seen.windows(2).any(|w| w[0] == w[1])
    }

    /// The contiguous sub-pattern at `range`.
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn subpattern(&self, range: Range<usize>) -> Pattern {
        Pattern::new(self.types[range].to_vec())
    }

    /// All 0-based start positions at which `sub` occurs contiguously in
    /// `self`.
    pub fn occurrences_of(&self, sub: &Pattern) -> Vec<usize> {
        if sub.len() > self.len() {
            return Vec::new();
        }
        (0..=self.len() - sub.len())
            .filter(|&i| self.types[i..i + sub.len()] == *sub.types)
            .collect()
    }

    /// First occurrence of `sub` in `self`, if any.
    pub fn find(&self, sub: &Pattern) -> Option<usize> {
        self.occurrences_of(sub).first().copied()
    }

    /// Iterate over every contiguous sub-pattern with length > 1, as
    /// `(start, sub-pattern)` pairs — the enumeration of the modified CCSpan
    /// algorithm (Appendix A, Algorithm 7).
    pub fn contiguous_subpatterns(&self) -> impl Iterator<Item = (usize, Pattern)> + '_ {
        (0..self.len()).flat_map(move |start| {
            (start + 2..=self.len()).map(move |end| (start, self.subpattern(start..end)))
        })
    }

    /// Render using event type names from `catalog`, e.g.
    /// `(OakSt, MainSt)`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Pattern, &'a Catalog);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                for (i, t) in self.0.types.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.1.name(*t))?;
                }
                write!(f, ")")
            }
        }
        D(self, catalog)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.types.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<EventTypeId>> for Pattern {
    fn from(v: Vec<EventTypeId>) -> Self {
        Pattern::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| EventTypeId(i)).collect::<Vec<_>>())
    }

    #[test]
    fn basic_accessors() {
        let p = pat(&[3, 1, 2]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.start_type(), EventTypeId(3));
        assert_eq!(p.end_type(), EventTypeId(2));
        assert_eq!(p.type_at(1), EventTypeId(1));
        assert!(p.contains_type(EventTypeId(1)));
        assert!(!p.contains_type(EventTypeId(9)));
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "length >= 1")]
    fn empty_pattern_rejected() {
        Pattern::new(Vec::<EventTypeId>::new());
    }

    #[test]
    fn occurrences() {
        // query q4's pattern (ParkAve, OakSt, MainSt, WestSt) as 0,1,2,3
        let q4 = pat(&[0, 1, 2, 3]);
        assert_eq!(q4.occurrences_of(&pat(&[1, 2])), vec![1]); // p1
        assert_eq!(q4.occurrences_of(&pat(&[0, 1])), vec![0]); // p2
        assert_eq!(q4.occurrences_of(&pat(&[2, 3])), vec![2]); // p4
        assert_eq!(q4.occurrences_of(&pat(&[3, 0])), Vec::<usize>::new());
        assert_eq!(q4.find(&pat(&[1, 2])), Some(1));
        assert_eq!(q4.find(&pat(&[9])), None);
        // a pattern longer than the haystack
        assert_eq!(pat(&[1]).occurrences_of(&pat(&[1, 2])), Vec::<usize>::new());
    }

    #[test]
    fn repeated_type_occurrences() {
        let p = pat(&[1, 2, 1, 2]);
        assert_eq!(p.occurrences_of(&pat(&[1, 2])), vec![0, 2]);
        assert_eq!(p.positions_of(EventTypeId(1)), vec![0, 2]);
        assert!(p.has_repeated_type());
        assert!(!pat(&[1, 2, 3]).has_repeated_type());
    }

    #[test]
    fn contiguous_subpatterns_enumeration() {
        let p = pat(&[1, 2, 3]);
        let subs: Vec<(usize, Pattern)> = p.contiguous_subpatterns().collect();
        assert_eq!(
            subs,
            vec![(0, pat(&[1, 2])), (0, pat(&[1, 2, 3])), (1, pat(&[2, 3])),]
        );
        // a length-2 pattern has exactly one sub-pattern of length > 1
        assert_eq!(pat(&[1, 2]).contiguous_subpatterns().count(), 1);
        // length-1 pattern: none
        assert_eq!(pat(&[1]).contiguous_subpatterns().count(), 0);
    }

    #[test]
    fn subpattern_slicing() {
        let p = pat(&[5, 6, 7, 8]);
        assert_eq!(p.subpattern(1..3), pat(&[6, 7]));
    }

    #[test]
    fn display_with_catalog() {
        let mut c = Catalog::new();
        let p = Pattern::from_names(&mut c, ["OakSt", "MainSt"]);
        assert_eq!(p.display(&c).to_string(), "(OakSt, MainSt)");
        assert_eq!(p.to_string(), "(E0, E1)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // plan-finder sorts candidates by pattern; verify the derived order
        assert!(pat(&[1, 2]) < pat(&[1, 3]));
        assert!(pat(&[1, 2]) < pat(&[1, 2, 0]));
    }
}
