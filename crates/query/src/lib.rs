//! # sharon-query
//!
//! The query model of the Sharon system (Definitions 1–2 of the paper) plus
//! the *sharing plan* artifact exchanged between the Sharon optimizer and
//! the runtime executor.
//!
//! * [`Pattern`] — an event sequence pattern `(E₁ … E_l)` (Definition 1).
//! * [`AggFunc`] — the `RETURN` clause: `COUNT(*)`, `COUNT(E)`,
//!   `SUM/MIN/MAX/AVG(E.attr)` (Definition 2).
//! * [`Predicate`] — per-event `WHERE` predicates; cross-event equivalence
//!   predicates such as the paper's `[vehicle]` are expressed via `GROUP BY`.
//! * [`Query`] / [`Workload`] — a full event sequence aggregation query and
//!   a multi-query workload.
//! * [`SharingPlan`] — which queries share the aggregation of which patterns
//!   (Definition 7), with the prefix/shared/suffix decomposition used by the
//!   shared executor (Definition 4, generalized to several shared segments
//!   per query).
//! * [`parser`] — a text parser for the SASE-style surface syntax:
//!   `RETURN COUNT(*) PATTERN SEQ(OakSt, MainSt) GROUP BY vehicle WITHIN 10
//!   min SLIDE 1 min`.

#![warn(missing_docs)]

pub mod aggregate;
pub mod parser;
pub mod pattern;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod workload;

pub use aggregate::AggFunc;
pub use parser::{parse_query, parse_workload, ParseError};
pub use pattern::Pattern;
pub use plan::{PlanCandidate, Segment, SegmentKind, SharingPlan};
pub use predicate::{clause_passes, CmpOp, Predicate};
pub use query::{Query, QueryId, QuerySig, SharingSignature};
pub use workload::Workload;
