//! # sharon-metrics
//!
//! Measurement utilities for reproducing the paper's evaluation metrics
//! (Section 8.1): latency, throughput, and peak memory.
//!
//! * [`alloc`] — a [`TrackingAllocator`] recording current/peak heap use
//!   (install as `#[global_allocator]` in bench binaries);
//! * [`counters`] — explicit runtime work counters (router scope scans)
//!   backing the shared-work regression tests;
//! * [`latency`] — per-window latency and throughput recording;
//! * [`report`] — printable/serializable result [`Table`]s, one per
//!   reproduced figure.

#![warn(missing_docs)]

pub mod alloc;
pub mod counters;
pub mod latency;
pub mod report;

pub use alloc::{
    alloc_count, current_bytes, measure_allocs, measure_peak, peak_bytes, reset_peak,
    TrackingAllocator,
};
pub use counters::{
    checkpoints_written, group_reloads, group_spills, late_rows_dropped, plan_reoptimizations,
    plan_swaps, queries_attached, queries_detached, record_checkpoints_written,
    record_group_reloads, record_group_spills, record_late_rows_dropped,
    record_plan_reoptimizations, record_plan_swaps, record_queries_attached,
    record_queries_detached, record_router_batches_routed, record_router_scope_scans,
    record_router_stall_waits, record_rows_scanned, record_rows_selected, record_swap_windows_lost,
    router_batches_routed, router_scope_scans, router_stall_waits, rows_scanned, rows_selected,
    swap_windows_lost,
};
pub use latency::{timed, LatencyRecorder};
pub use report::{fmt_bytes, fmt_duration, fmt_throughput, Table};
