//! Latency and throughput recording.
//!
//! The paper measures latency "as the average time difference between the
//! time point of aggregate output and the arrival time of the latest event
//! that contributed to this result" (Section 8.1). In our harness events
//! are fed as fast as the executor consumes them, so per-window latency is
//! the wall-clock processing time of the window's events — the same
//! CPU-bound quantity the paper's latency tracks (queueing delay is
//! processing-time driven in a saturated stream).

use std::time::{Duration, Instant};

/// Records per-window processing latencies and overall throughput.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    window_started: Option<Instant>,
    run_started: Instant,
    samples: Vec<Duration>,
    events: u64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Start a recorder (run clock starts now).
    pub fn new() -> Self {
        LatencyRecorder {
            window_started: None,
            run_started: Instant::now(),
            samples: Vec::new(),
            events: 0,
        }
    }

    /// Count one processed event, opening a window sample if none is open.
    pub fn event(&mut self) {
        self.events += 1;
        if self.window_started.is_none() {
            self.window_started = Instant::now().into();
        }
    }

    /// Close the current window sample (call at each window boundary).
    pub fn window_boundary(&mut self) {
        if let Some(start) = self.window_started.take() {
            self.samples.push(start.elapsed());
        }
    }

    /// Number of events counted.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total elapsed wall-clock since construction.
    pub fn elapsed(&self) -> Duration {
        self.run_started.elapsed()
    }

    /// Mean per-window latency (falls back to total elapsed when no
    /// boundary was recorded).
    pub fn mean_latency(&self) -> Duration {
        if self.samples.is_empty() {
            return self.elapsed();
        }
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len() as u32
    }

    /// Throughput in events per second.
    pub fn throughput(&self) -> f64 {
        self.events as f64 / self.elapsed().as_secs_f64().max(1e-12)
    }

    /// The recorded window samples.
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

/// Time a closure, returning its output and the elapsed duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_window_samples() {
        let mut r = LatencyRecorder::new();
        for _ in 0..10 {
            r.event();
        }
        r.window_boundary();
        for _ in 0..5 {
            r.event();
        }
        r.window_boundary();
        r.window_boundary(); // idempotent when no window open
        assert_eq!(r.events(), 15);
        assert_eq!(r.samples().len(), 2);
        assert!(r.mean_latency() <= r.elapsed());
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn mean_latency_without_boundaries_falls_back_to_elapsed() {
        let r = LatencyRecorder::new();
        std::thread::sleep(Duration::from_millis(1));
        // no window samples: the mean tracks total elapsed time
        assert!(r.mean_latency() >= Duration::from_millis(1));
        assert!(r.samples().is_empty());
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 7);
        assert_eq!(v, 7);
        assert!(d >= Duration::ZERO);
    }
}
