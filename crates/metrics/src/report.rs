//! Result tables for the benchmark harness.
//!
//! Every figure-reproducing bench prints one [`Table`] whose rows mirror
//! the series of the corresponding paper figure, and appends the raw data
//! to a JSON report so EXPERIMENTS.md can be regenerated.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A printable, serializable measurement table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Experiment identifier (e.g. `"figure13a"`).
    pub id: String,
    /// Human title (e.g. `"Latency vs events per window (LR)"`).
    pub title: String,
    /// Column headers; column 0 is the x-axis.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling factors, skipped series, ...).
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Set the headers.
    pub fn headers<S: Into<String>>(mut self, headers: impl IntoIterator<Item = S>) -> Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Append the table as a JSON line to `path` (creating it if needed).
    pub fn append_json(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json())
    }

    /// Serialize the table as one JSON object (no external dependencies —
    /// the build environment has no crates.io access, so this crate ships
    /// its own writer/parser for this fixed shape).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"id\":");
        json::write_str(&mut out, &self.id);
        out.push_str(",\"title\":");
        json::write_str(&mut out, &self.title);
        out.push_str(",\"headers\":");
        json::write_str_array(&mut out, &self.headers);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str_array(&mut out, row);
        }
        out.push_str("],\"notes\":");
        json::write_str_array(&mut out, &self.notes);
        out.push('}');
        out
    }

    /// Parse a table from the JSON produced by [`Table::to_json`].
    pub fn from_json(text: &str) -> Option<Table> {
        let mut p = json::Parser::new(text);
        p.expect('{')?;
        let mut table = Table::new("", "");
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "id" => table.id = p.string()?,
                "title" => table.title = p.string()?,
                "headers" => table.headers = p.str_array()?,
                "notes" => table.notes = p.str_array()?,
                "rows" => {
                    p.expect('[')?;
                    if !p.try_expect(']') {
                        loop {
                            table.rows.push(p.str_array()?);
                            if p.try_expect(']') {
                                break;
                            }
                            p.expect(',')?;
                        }
                    }
                }
                _ => return None,
            }
            if p.try_expect('}') {
                break;
            }
            p.expect(',')?;
        }
        Some(table)
    }
}

/// Minimal JSON writer/parser for the flat string shapes [`Table`] uses.
mod json {
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    pub fn write_str_array(out: &mut String, items: &[String]) {
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, item);
        }
        out.push(']');
    }

    pub struct Parser<'a> {
        rest: &'a str,
    }

    impl<'a> Parser<'a> {
        pub fn new(text: &'a str) -> Self {
            Parser { rest: text }
        }

        fn skip_ws(&mut self) {
            self.rest = self.rest.trim_start();
        }

        pub fn expect(&mut self, c: char) -> Option<()> {
            self.try_expect(c).then_some(())
        }

        pub fn try_expect(&mut self, c: char) -> bool {
            self.skip_ws();
            match self.rest.strip_prefix(c) {
                Some(rest) => {
                    self.rest = rest;
                    true
                }
                None => false,
            }
        }

        pub fn string(&mut self) -> Option<String> {
            self.skip_ws();
            self.rest = self.rest.strip_prefix('"')?;
            let mut out = String::new();
            let mut chars = self.rest.char_indices();
            loop {
                let (i, c) = chars.next()?;
                match c {
                    '"' => {
                        self.rest = &self.rest[i + 1..];
                        return Some(out);
                    }
                    '\\' => {
                        let (_, esc) = chars.next()?;
                        match esc {
                            '"' => out.push('"'),
                            '\\' => out.push('\\'),
                            '/' => out.push('/'),
                            'n' => out.push('\n'),
                            'r' => out.push('\r'),
                            't' => out.push('\t'),
                            'u' => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let (_, h) = chars.next()?;
                                    code = code * 16 + h.to_digit(16)?;
                                }
                                out.push(char::from_u32(code)?);
                            }
                            _ => return None,
                        }
                    }
                    c => out.push(c),
                }
            }
        }

        pub fn str_array(&mut self) -> Option<Vec<String>> {
            self.expect('[')?;
            let mut out = Vec::new();
            if self.try_expect(']') {
                return Some(out);
            }
            loop {
                out.push(self.string()?);
                if self.try_expect(']') {
                    return Some(out);
                }
                self.expect(',')?;
            }
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // column widths
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:>width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            write_row(f, &self.headers)?;
            writeln!(
                f,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * ncols)
            )?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Format a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Format an events/second throughput.
pub fn fmt_throughput(events: u64, elapsed: std::time::Duration) -> String {
    let s = elapsed.as_secs_f64().max(1e-12);
    let r = events as f64 / s;
    if r >= 1_000_000.0 {
        format!("{:.2}M ev/s", r / 1_000_000.0)
    } else if r >= 1_000.0 {
        format!("{:.1}k ev/s", r / 1_000.0)
    } else {
        format!("{r:.0} ev/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders() {
        let mut t = Table::new("figX", "demo").headers(["x", "a", "b"]);
        t.row(["1", "10", "100"]);
        t.row(["2", "20", "200"]);
        t.note("scaled down 10x");
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("100"));
        assert!(s.contains("note: scaled"));
    }

    #[test]
    fn json_roundtrip_and_append() {
        let mut t = Table::new("figY", "demo");
        t.row(["1"]);
        let dir = std::env::temp_dir().join("sharon-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.jsonl");
        let _ = std::fs::remove_file(&path);
        t.append_json(&path).unwrap();
        t.append_json(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        let parsed = Table::from_json(content.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.id, "figY");
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut t = Table::new("fig\"Z\"", "quotes \\ and\nnewlines").headers(["x", "y"]);
        t.row(["1", "a\tb"]);
        t.row(["2", ""]);
        t.note("scaled — 10×");
        let parsed = Table::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed.id, t.id);
        assert_eq!(parsed.title, t.title);
        assert_eq!(parsed.headers, t.headers);
        assert_eq!(parsed.rows, t.rows);
        assert_eq!(parsed.notes, t.notes);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
        assert!(fmt_bytes(2 * 1024 * 1024 * 1024).ends_with("GB"));
        assert_eq!(fmt_throughput(3000, Duration::from_secs(1)), "3.0k ev/s");
        assert_eq!(
            fmt_throughput(2_000_000, Duration::from_secs(1)),
            "2.00M ev/s"
        );
        assert_eq!(fmt_throughput(5, Duration::from_secs(1)), "5 ev/s");
    }
}
