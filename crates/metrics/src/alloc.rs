//! Peak-memory tracking allocator.
//!
//! The paper reports *peak memory* — "the maximal memory for storing
//! aggregates, events, and event sequences" for the executors and "the
//! maximal memory for storing the SHARON graph and the sharing plans" for
//! the optimizers (Section 8.1). [`TrackingAllocator`] wraps the system
//! allocator with atomic current/peak counters; benchmarks install it as
//! the `#[global_allocator]` and read peak deltas around measured regions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live allocated bytes.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Total number of allocation calls (including growing reallocs) —
/// the counter behind the zero-allocation hot-path regression tests.
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A `#[global_allocator]` wrapper that tracks current and peak heap use.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sharon_metrics::TrackingAllocator = sharon_metrics::TrackingAllocator;
/// ```
pub struct TrackingAllocator;

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // lock-free peak update
    let mut peak = PEAK.load(Ordering::Relaxed);
    while cur > peak {
        match PEAK.compare_exchange_weak(peak, cur, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System`, only adding counter
// bookkeeping around it.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Currently allocated bytes.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak allocated bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current level and return the new baseline.
pub fn reset_peak() -> usize {
    let cur = CURRENT.load(Ordering::Relaxed);
    PEAK.store(cur, Ordering::Relaxed);
    cur
}

/// Total allocation calls so far (growing reallocs count as one).
pub fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// Measure the peak heap growth (bytes above the starting level) while
/// running `f`.
///
/// Meaningful only when [`TrackingAllocator`] is installed as the global
/// allocator; otherwise returns 0.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

/// Count the allocation calls performed while running `f`.
///
/// Meaningful only when [`TrackingAllocator`] is installed as the global
/// allocator; otherwise returns 0. Used by the allocation-regression
/// tests that pin the steady-state hot paths at zero allocations.
pub fn measure_allocs<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = alloc_count();
    let out = f();
    (out, alloc_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is NOT installed in unit tests (that would
    // affect every test binary); these tests exercise the counter logic
    // directly.
    #[test]
    fn counters_move() {
        let base = current_bytes();
        on_alloc(1000);
        assert_eq!(current_bytes(), base + 1000);
        assert!(peak_bytes() >= base + 1000);
        on_dealloc(1000);
        assert_eq!(current_bytes(), base);
    }

    #[test]
    fn reset_peak_rebases() {
        on_alloc(5000);
        on_dealloc(5000);
        let base = reset_peak();
        assert_eq!(peak_bytes(), base);
        on_alloc(10);
        assert!(peak_bytes() >= base + 10);
        on_dealloc(10);
    }

    #[test]
    fn alloc_counter_moves() {
        // other tests in this binary may bump the global counters
        // concurrently, so assert lower bounds only
        let before = alloc_count();
        on_alloc(16);
        on_dealloc(16);
        assert!(alloc_count() > before, "frees do not count");
        let ((), n) = measure_allocs(|| on_alloc(8));
        assert!(n >= 1);
        on_dealloc(8);
    }

    #[test]
    fn measure_peak_without_installation_is_zero_or_more() {
        let (val, peak) = measure_peak(|| 21 * 2);
        assert_eq!(val, 42);
        // without installation no allocations are tracked inside f
        let _ = peak;
    }
}
