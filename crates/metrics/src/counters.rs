//! Cross-thread runtime work counters.
//!
//! Unlike the [`crate::alloc`] counters (which observe the allocator),
//! these are incremented explicitly by runtime components to make
//! *shared-work* claims checkable: the route-once sharded runtime promises
//! that each routing scope scans a batch exactly once, no matter how many
//! queries subscribe to the scope — the scope-scan counter is how tests
//! (and operators) verify that promise instead of trusting it.
//!
//! Counters are process-global atomics, so they aggregate over every
//! router instance and every router thread in the process. Tests that
//! assert exact deltas must serialize against other counter users in the
//! same process (the regression suites do).

use std::sync::atomic::{AtomicU64, Ordering};

/// Total scope scans performed by batch routers: one unit per routing
/// scope per routed batch chunk.
static ROUTER_SCOPE_SCANS: AtomicU64 = AtomicU64::new(0);

/// Record `n` scope scans (called by the batch router once per routed
/// chunk, with the number of distinct scopes it scanned).
#[inline]
pub fn record_router_scope_scans(n: u64) {
    ROUTER_SCOPE_SCANS.fetch_add(n, Ordering::Relaxed);
}

/// Total scope scans recorded so far in this process.
///
/// With scope deduplication active, a workload of `Q` queries sharing one
/// routing scope advances this by exactly **1** per batch — not `Q` —
/// which is the measurable core of the route-once-per-scope design.
pub fn router_scope_scans() -> u64 {
    ROUTER_SCOPE_SCANS.load(Ordering::Relaxed)
}

/// Total batches routed by router threads: one unit per router per
/// routed batch. With a routing plane of `R` routers this advances by
/// `R` per ingested batch — every router scans every batch against its
/// own scope subset.
static ROUTER_BATCHES_ROUTED: AtomicU64 = AtomicU64::new(0);

/// Record `n` routed batches (called by each router once per dispatched
/// batch chunk).
#[inline]
pub fn record_router_batches_routed(n: u64) {
    ROUTER_BATCHES_ROUTED.fetch_add(n, Ordering::Relaxed);
}

/// Total batches routed so far in this process.
pub fn router_batches_routed() -> u64 {
    ROUTER_BATCHES_ROUTED.load(Ordering::Relaxed)
}

/// Total router stalls: a router found a worker ring full and had to
/// block until the worker drained it. A routing plane that stalls often
/// is fanning out faster than the shards execute — the backpressure is
/// working, but the bottleneck has moved back to the workers.
static ROUTER_STALL_WAITS: AtomicU64 = AtomicU64::new(0);

/// Record `n` router stalls (called by a router before it blocks on a
/// full worker ring).
#[inline]
pub fn record_router_stall_waits(n: u64) {
    ROUTER_STALL_WAITS.fetch_add(n, Ordering::Relaxed);
}

/// Total router stalls so far in this process.
pub fn router_stall_waits() -> u64 {
    ROUTER_STALL_WAITS.load(Ordering::Relaxed)
}

/// Total rows examined by stateless scans (scalar or vectorized): one
/// unit per row per routing scope that scanned it.
static ROWS_SCANNED: AtomicU64 = AtomicU64::new(0);

/// Record `n` scanned rows (called by the columnar pre-passes and the
/// batch router, once per scope per chunk).
#[inline]
pub fn record_rows_scanned(n: u64) {
    ROWS_SCANNED.fetch_add(n, Ordering::Relaxed);
}

/// Total rows examined by stateless scans so far in this process.
pub fn rows_scanned() -> u64 {
    ROWS_SCANNED.load(Ordering::Relaxed)
}

/// Total rows that survived a stateless scan — passed routing, predicates,
/// and groupability of some scope (counted before shard-ownership
/// filtering, so scalar and vectorized scans tally identically).
static ROWS_SELECTED: AtomicU64 = AtomicU64::new(0);

/// Record `n` selected rows.
#[inline]
pub fn record_rows_selected(n: u64) {
    ROWS_SELECTED.fetch_add(n, Ordering::Relaxed);
}

/// Total rows selected by stateless scans so far in this process.
///
/// `rows_selected() / rows_scanned()` is the workload's aggregate
/// selectivity — the fraction of scanned rows that reached stateful
/// processing.
pub fn rows_selected() -> u64 {
    ROWS_SELECTED.load(Ordering::Relaxed)
}

/// Total checkpoints completed (manifest renamed into place).
static CHECKPOINTS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Record `n` completed checkpoints.
#[inline]
pub fn record_checkpoints_written(n: u64) {
    CHECKPOINTS_WRITTEN.fetch_add(n, Ordering::Relaxed);
}

/// Total checkpoints completed so far in this process.
pub fn checkpoints_written() -> u64 {
    CHECKPOINTS_WRITTEN.load(Ordering::Relaxed)
}

/// Total group-state spills: cold groups paged out to a spill log.
static GROUP_SPILLS: AtomicU64 = AtomicU64::new(0);

/// Record `n` group spills (called by the engines' spill tier).
#[inline]
pub fn record_group_spills(n: u64) {
    GROUP_SPILLS.fetch_add(n, Ordering::Relaxed);
}

/// Total group spills recorded so far in this process.
pub fn group_spills() -> u64 {
    GROUP_SPILLS.load(Ordering::Relaxed)
}

/// Total group-state reloads: spilled groups paged back in on access.
static GROUP_RELOADS: AtomicU64 = AtomicU64::new(0);

/// Record `n` group reloads (called by the engines' spill tier).
#[inline]
pub fn record_group_reloads(n: u64) {
    GROUP_RELOADS.fetch_add(n, Ordering::Relaxed);
}

/// Total group reloads recorded so far in this process.
pub fn group_reloads() -> u64 {
    GROUP_RELOADS.load(Ordering::Relaxed)
}

/// Total late rows dropped: rows whose event time had already been passed
/// by the watermark (`max_time_seen − lateness`) when they arrived.
static LATE_ROWS_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Record `n` dropped late rows (called by the event-time reorder gates).
#[inline]
pub fn record_late_rows_dropped(n: u64) {
    LATE_ROWS_DROPPED.fetch_add(n, Ordering::Relaxed);
}

/// Total late rows dropped so far in this process.
///
/// The late-row policy is drop-and-count: a row later than the configured
/// lateness bound is never silently folded into already-closed windows —
/// it is discarded and shows up here. When `lateness >=` the stream's
/// actual disorder bound this counter never moves and results are exact.
pub fn late_rows_dropped() -> u64 {
    LATE_ROWS_DROPPED.load(Ordering::Relaxed)
}

/// Total queries attached to a live session at runtime.
static QUERIES_ATTACHED: AtomicU64 = AtomicU64::new(0);

/// Record `n` runtime query attachments (called by the session layer).
#[inline]
pub fn record_queries_attached(n: u64) {
    QUERIES_ATTACHED.fetch_add(n, Ordering::Relaxed);
}

/// Total runtime query attachments so far in this process.
pub fn queries_attached() -> u64 {
    QUERIES_ATTACHED.load(Ordering::Relaxed)
}

/// Total queries detached from a live session at runtime.
static QUERIES_DETACHED: AtomicU64 = AtomicU64::new(0);

/// Record `n` runtime query detachments (called by the session layer).
#[inline]
pub fn record_queries_detached(n: u64) {
    QUERIES_DETACHED.fetch_add(n, Ordering::Relaxed);
}

/// Total runtime query detachments so far in this process.
pub fn queries_detached() -> u64 {
    QUERIES_DETACHED.load(Ordering::Relaxed)
}

/// Total plan re-optimizations: the dynamic plan manager recomputed the
/// sharing plan (whether or not the recomputed plan was then adopted).
static PLAN_REOPTIMIZATIONS: AtomicU64 = AtomicU64::new(0);

/// Record `n` plan re-optimizations (called by the session layer when the
/// sharing plan is recomputed on churn or rate drift).
#[inline]
pub fn record_plan_reoptimizations(n: u64) {
    PLAN_REOPTIMIZATIONS.fetch_add(n, Ordering::Relaxed);
}

/// Total plan re-optimizations so far in this process.
pub fn plan_reoptimizations() -> u64 {
    PLAN_REOPTIMIZATIONS.load(Ordering::Relaxed)
}

/// Total plan hot-swaps: a recompiled plan replaced the live one at a
/// batch boundary.
static PLAN_SWAPS: AtomicU64 = AtomicU64::new(0);

/// Record `n` plan hot-swaps (called by the session layer after the new
/// incarnation takes over the stream).
#[inline]
pub fn record_plan_swaps(n: u64) {
    PLAN_SWAPS.fetch_add(n, Ordering::Relaxed);
}

/// Total plan hot-swaps so far in this process.
pub fn plan_swaps() -> u64 {
    PLAN_SWAPS.load(Ordering::Relaxed)
}

/// Total windows of state lost across plan swaps. The hot-swap protocol
/// promises **zero**: a retiring plan incarnation is drained to completion
/// and every window it owned is settled before its state is dropped. This
/// counter only moves when a session is abandoned (dropped) with live
/// incarnations still holding window state.
static SWAP_WINDOWS_LOST: AtomicU64 = AtomicU64::new(0);

/// Record `n` windows of state discarded unfinished (called only on
/// abnormal session teardown).
#[inline]
pub fn record_swap_windows_lost(n: u64) {
    SWAP_WINDOWS_LOST.fetch_add(n, Ordering::Relaxed);
}

/// Total windows of state lost across plan swaps so far in this process.
///
/// Equivalence suites assert this stays **zero** across scripted churn
/// runs: hot-swapping the compiled plan never drops window state.
pub fn swap_windows_lost() -> u64 {
    SWAP_WINDOWS_LOST.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counter_accumulates() {
        let before = router_scope_scans();
        record_router_scope_scans(3);
        record_router_scope_scans(1);
        assert!(router_scope_scans() >= before + 4);
    }

    #[test]
    fn routing_plane_counters_accumulate() {
        let (b0, s0) = (router_batches_routed(), router_stall_waits());
        record_router_batches_routed(2);
        record_router_stall_waits(1);
        assert!(router_batches_routed() >= b0 + 2);
        assert!(router_stall_waits() > s0);
    }

    #[test]
    fn row_scan_counters_accumulate() {
        let (s0, p0) = (rows_scanned(), rows_selected());
        record_rows_scanned(100);
        record_rows_selected(25);
        assert!(rows_scanned() >= s0 + 100);
        assert!(rows_selected() >= p0 + 25);
    }

    #[test]
    fn late_row_counter_accumulates() {
        let before = late_rows_dropped();
        record_late_rows_dropped(5);
        assert!(late_rows_dropped() >= before + 5);
    }

    #[test]
    fn churn_counters_accumulate() {
        let (a0, d0, r0, s0, l0) = (
            queries_attached(),
            queries_detached(),
            plan_reoptimizations(),
            plan_swaps(),
            swap_windows_lost(),
        );
        record_queries_attached(2);
        record_queries_detached(1);
        record_plan_reoptimizations(1);
        record_plan_swaps(1);
        record_swap_windows_lost(4);
        assert!(queries_attached() >= a0 + 2);
        assert!(queries_detached() > d0);
        assert!(plan_reoptimizations() > r0);
        assert!(plan_swaps() > s0);
        assert!(swap_windows_lost() >= l0 + 4);
    }

    #[test]
    fn durability_counters_accumulate() {
        let (c0, s0, r0) = (checkpoints_written(), group_spills(), group_reloads());
        record_checkpoints_written(1);
        record_group_spills(2);
        record_group_reloads(3);
        assert!(checkpoints_written() > c0);
        assert!(group_spills() >= s0 + 2);
        assert!(group_reloads() >= r0 + 3);
    }
}
