//! Cross-thread runtime work counters.
//!
//! Unlike the [`crate::alloc`] counters (which observe the allocator),
//! these are incremented explicitly by runtime components to make
//! *shared-work* claims checkable: the route-once sharded runtime promises
//! that each routing scope scans a batch exactly once, no matter how many
//! queries subscribe to the scope — the scope-scan counter is how tests
//! (and operators) verify that promise instead of trusting it.
//!
//! Counters are process-global atomics, so they aggregate over every
//! router instance and every router thread in the process. Tests that
//! assert exact deltas must serialize against other counter users in the
//! same process (the regression suites do).

use std::sync::atomic::{AtomicU64, Ordering};

/// Total scope scans performed by batch routers: one unit per routing
/// scope per routed batch chunk.
static ROUTER_SCOPE_SCANS: AtomicU64 = AtomicU64::new(0);

/// Record `n` scope scans (called by the batch router once per routed
/// chunk, with the number of distinct scopes it scanned).
#[inline]
pub fn record_router_scope_scans(n: u64) {
    ROUTER_SCOPE_SCANS.fetch_add(n, Ordering::Relaxed);
}

/// Total scope scans recorded so far in this process.
///
/// With scope deduplication active, a workload of `Q` queries sharing one
/// routing scope advances this by exactly **1** per batch — not `Q` —
/// which is the measurable core of the route-once-per-scope design.
pub fn router_scope_scans() -> u64 {
    ROUTER_SCOPE_SCANS.load(Ordering::Relaxed)
}

/// Total rows examined by stateless scans (scalar or vectorized): one
/// unit per row per routing scope that scanned it.
static ROWS_SCANNED: AtomicU64 = AtomicU64::new(0);

/// Record `n` scanned rows (called by the columnar pre-passes and the
/// batch router, once per scope per chunk).
#[inline]
pub fn record_rows_scanned(n: u64) {
    ROWS_SCANNED.fetch_add(n, Ordering::Relaxed);
}

/// Total rows examined by stateless scans so far in this process.
pub fn rows_scanned() -> u64 {
    ROWS_SCANNED.load(Ordering::Relaxed)
}

/// Total rows that survived a stateless scan — passed routing, predicates,
/// and groupability of some scope (counted before shard-ownership
/// filtering, so scalar and vectorized scans tally identically).
static ROWS_SELECTED: AtomicU64 = AtomicU64::new(0);

/// Record `n` selected rows.
#[inline]
pub fn record_rows_selected(n: u64) {
    ROWS_SELECTED.fetch_add(n, Ordering::Relaxed);
}

/// Total rows selected by stateless scans so far in this process.
///
/// `rows_selected() / rows_scanned()` is the workload's aggregate
/// selectivity — the fraction of scanned rows that reached stateful
/// processing.
pub fn rows_selected() -> u64 {
    ROWS_SELECTED.load(Ordering::Relaxed)
}

/// Total checkpoints completed (manifest renamed into place).
static CHECKPOINTS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Record `n` completed checkpoints.
#[inline]
pub fn record_checkpoints_written(n: u64) {
    CHECKPOINTS_WRITTEN.fetch_add(n, Ordering::Relaxed);
}

/// Total checkpoints completed so far in this process.
pub fn checkpoints_written() -> u64 {
    CHECKPOINTS_WRITTEN.load(Ordering::Relaxed)
}

/// Total group-state spills: cold groups paged out to a spill log.
static GROUP_SPILLS: AtomicU64 = AtomicU64::new(0);

/// Record `n` group spills (called by the engines' spill tier).
#[inline]
pub fn record_group_spills(n: u64) {
    GROUP_SPILLS.fetch_add(n, Ordering::Relaxed);
}

/// Total group spills recorded so far in this process.
pub fn group_spills() -> u64 {
    GROUP_SPILLS.load(Ordering::Relaxed)
}

/// Total group-state reloads: spilled groups paged back in on access.
static GROUP_RELOADS: AtomicU64 = AtomicU64::new(0);

/// Record `n` group reloads (called by the engines' spill tier).
#[inline]
pub fn record_group_reloads(n: u64) {
    GROUP_RELOADS.fetch_add(n, Ordering::Relaxed);
}

/// Total group reloads recorded so far in this process.
pub fn group_reloads() -> u64 {
    GROUP_RELOADS.load(Ordering::Relaxed)
}

/// Total late rows dropped: rows whose event time had already been passed
/// by the watermark (`max_time_seen − lateness`) when they arrived.
static LATE_ROWS_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Record `n` dropped late rows (called by the event-time reorder gates).
#[inline]
pub fn record_late_rows_dropped(n: u64) {
    LATE_ROWS_DROPPED.fetch_add(n, Ordering::Relaxed);
}

/// Total late rows dropped so far in this process.
///
/// The late-row policy is drop-and-count: a row later than the configured
/// lateness bound is never silently folded into already-closed windows —
/// it is discarded and shows up here. When `lateness >=` the stream's
/// actual disorder bound this counter never moves and results are exact.
pub fn late_rows_dropped() -> u64 {
    LATE_ROWS_DROPPED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counter_accumulates() {
        let before = router_scope_scans();
        record_router_scope_scans(3);
        record_router_scope_scans(1);
        assert!(router_scope_scans() >= before + 4);
    }

    #[test]
    fn row_scan_counters_accumulate() {
        let (s0, p0) = (rows_scanned(), rows_selected());
        record_rows_scanned(100);
        record_rows_selected(25);
        assert!(rows_scanned() >= s0 + 100);
        assert!(rows_selected() >= p0 + 25);
    }

    #[test]
    fn late_row_counter_accumulates() {
        let before = late_rows_dropped();
        record_late_rows_dropped(5);
        assert!(late_rows_dropped() >= before + 5);
    }

    #[test]
    fn durability_counters_accumulate() {
        let (c0, s0, r0) = (checkpoints_written(), group_spills(), group_reloads());
        record_checkpoints_written(1);
        record_group_spills(2);
        record_group_reloads(3);
        assert!(checkpoints_written() > c0);
        assert!(group_spills() >= s0 + 2);
        assert!(group_reloads() >= r0 + 3);
    }
}
