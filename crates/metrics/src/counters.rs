//! Cross-thread runtime work counters.
//!
//! Unlike the [`crate::alloc`] counters (which observe the allocator),
//! these are incremented explicitly by runtime components to make
//! *shared-work* claims checkable: the route-once sharded runtime promises
//! that each routing scope scans a batch exactly once, no matter how many
//! queries subscribe to the scope — the scope-scan counter is how tests
//! (and operators) verify that promise instead of trusting it.
//!
//! Counters are process-global atomics, so they aggregate over every
//! router instance and every router thread in the process. Tests that
//! assert exact deltas must serialize against other counter users in the
//! same process (the regression suites do).

use std::sync::atomic::{AtomicU64, Ordering};

/// Total scope scans performed by batch routers: one unit per routing
/// scope per routed batch chunk.
static ROUTER_SCOPE_SCANS: AtomicU64 = AtomicU64::new(0);

/// Record `n` scope scans (called by the batch router once per routed
/// chunk, with the number of distinct scopes it scanned).
#[inline]
pub fn record_router_scope_scans(n: u64) {
    ROUTER_SCOPE_SCANS.fetch_add(n, Ordering::Relaxed);
}

/// Total scope scans recorded so far in this process.
///
/// With scope deduplication active, a workload of `Q` queries sharing one
/// routing scope advances this by exactly **1** per batch — not `Q` —
/// which is the measurable core of the route-once-per-scope design.
pub fn router_scope_scans() -> u64 {
    ROUTER_SCOPE_SCANS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counter_accumulates() {
        let before = router_scope_scans();
        record_router_scope_scans(3);
        record_router_scope_scans(1);
        assert!(router_scope_scans() >= before + 4);
    }
}
