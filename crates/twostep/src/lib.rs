//! # sharon-twostep
//!
//! The two-step baselines the Sharon paper evaluates against (Figure 3,
//! Section 8.2). Both *construct event sequences before aggregating them*,
//! which is the step the online approaches (A-Seq, Sharon) eliminate:
//!
//! * [`FlinkLike`] — the **non-shared two-step** representative
//!   ("Flink" in the paper): per-query buffers, per-query sequence
//!   enumeration, per-query aggregation.
//! * [`SpassLike`] — the **shared two-step** representative ("SPASS"):
//!   sequence construction for shared sub-patterns is materialized once and
//!   reused across queries, but full sequences are still enumerated per
//!   query and aggregation is unshared.
//!
//! Both produce exactly the same results as the online
//! [`sharon_executor::Executor`] (verified by tests), just with the cost
//! profile the paper reports: latency polynomial in events/window and
//! memory proportional to the materialized sequences.
//!
//! Both baselines implement [`sharon_executor::BatchProcessor`] — they
//! consume columnar [`sharon_types::EventBatch`]es natively (stateless
//! scan → stateful dispatch over row indices, no per-row `Event`
//! materialization) — and [`FlinkLike::sharded`] / [`SpassLike::sharded`]
//! run them on the route-once sharded runtime (one
//! [`sharon_executor::ShardProcessor`] wrapper per worker, fanning each
//! deduplicated routing scope's selection out to its subscribing
//! queries) for apples-to-apples comparisons with the online engines at
//! any shard count.

#![warn(missing_docs)]

mod common;
pub mod construct;
pub mod flink_like;
pub mod spass_like;

pub use construct::SeqBuffers;
pub use flink_like::FlinkLike;
pub use spass_like::SpassLike;
