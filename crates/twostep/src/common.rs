//! Shared plumbing for the two-step baselines: per-type routing tables
//! (predicates, grouping, aggregate contribution), mirroring the clauses
//! the online engine compiles, so the baselines answer exactly the same
//! queries.

use sharon_executor::agg::Contribution;
use sharon_executor::compile::CompileError;
use sharon_query::{CmpOp, Query};
use sharon_types::{AttrId, Catalog, Event, EventTypeId, GroupKey, Value};

/// Per-event-type resolved clauses for one query or partition.
#[derive(Debug, Clone, Default)]
pub(crate) struct TypeTable {
    /// Per type id: resolved `GROUP BY` attribute ids.
    pub group_attrs: Vec<Box<[AttrId]>>,
    /// Per type id: compiled predicates.
    pub predicates: Vec<Vec<(AttrId, CmpOp, Value)>>,
    /// Aggregate contribution source.
    pub contrib_target: Option<(EventTypeId, Option<AttrId>)>,
}

impl TypeTable {
    /// Resolve clauses of `query` against `catalog`.
    pub fn build(catalog: &Catalog, query: &Query) -> Result<Self, CompileError> {
        let max_ty = query
            .pattern
            .types()
            .iter()
            .map(|t| t.index())
            .max()
            .unwrap_or(0);
        let mut group_attrs: Vec<Box<[AttrId]>> = vec![Box::new([]); max_ty + 1];
        let mut predicates: Vec<Vec<(AttrId, CmpOp, Value)>> = vec![Vec::new(); max_ty + 1];
        for &t in query.pattern.types() {
            let schema = catalog.schema(t);
            let ids: Vec<AttrId> = query
                .group_by
                .iter()
                .map(|name| {
                    schema
                        .attr(name)
                        .ok_or_else(|| CompileError::GroupAttrMissing {
                            ty: catalog.name(t).to_string(),
                            attr: name.clone(),
                        })
                })
                .collect::<Result<_, _>>()?;
            group_attrs[t.index()] = ids.into_boxed_slice();
        }
        for p in &query.predicates {
            if p.ty.index() <= max_ty && query.pattern.contains_type(p.ty) {
                let attr = catalog.schema(p.ty).attr(&p.attr).ok_or_else(|| {
                    CompileError::PredicateAttrMissing {
                        ty: catalog.name(p.ty).to_string(),
                        attr: p.attr.clone(),
                    }
                })?;
                predicates[p.ty.index()].push((attr, p.op, p.value.clone()));
            }
        }
        let contrib_target =
            match (query.agg.target_type(), query.agg.target_attr()) {
                (Some(t), Some(name)) => {
                    let id = catalog.schema(t).attr(name).ok_or_else(|| {
                        CompileError::AggAttrMissing {
                            ty: catalog.name(t).to_string(),
                            attr: name.to_string(),
                        }
                    })?;
                    Some((t, Some(id)))
                }
                (Some(t), None) => Some((t, None)),
                (None, _) => None,
            };
        Ok(TypeTable {
            group_attrs,
            predicates,
            contrib_target,
        })
    }

    /// Evaluate this table's predicates on `e` (vacuously true for
    /// unconstrained types).
    pub fn passes(&self, e: &Event) -> bool {
        match self.predicates.get(e.ty.index()) {
            Some(preds) => preds.iter().all(|(attr, op, lit)| match e.attr(*attr) {
                Some(v) => op.eval(v.partial_cmp(lit)),
                None => false,
            }),
            None => true,
        }
    }

    /// The event's group key, or `None` if a grouping attribute is absent.
    pub fn group_key(&self, e: &Event) -> Option<GroupKey> {
        let attrs = match self.group_attrs.get(e.ty.index()) {
            Some(a) => a,
            None => return Some(GroupKey::Global),
        };
        if attrs.is_empty() {
            return Some(GroupKey::Global);
        }
        let mut vals = Vec::with_capacity(attrs.len());
        for a in attrs.iter() {
            vals.push(e.attr(*a)?.clone());
        }
        Some(GroupKey::from_values(vals))
    }

    /// The event's aggregate contribution.
    pub fn contribution(&self, e: &Event) -> Contribution {
        match self.contrib_target {
            Some((ty, attr)) if ty == e.ty => match attr {
                None => Contribution::of(1.0),
                Some(a) => match e.attr_f64(a) {
                    Some(v) => Contribution::of(v),
                    None => Contribution::NONE,
                },
            },
            _ => Contribution::NONE,
        }
    }
}
