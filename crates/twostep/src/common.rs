//! Shared plumbing for the two-step baselines: per-type routing tables
//! (predicates, grouping, aggregate contribution), mirroring the clauses
//! the online engine compiles, so the baselines answer exactly the same
//! queries.
//!
//! All methods operate on `(type, attrs)` column data — the baselines run
//! natively over [`sharon_types::EventBatch`] rows and never materialize a
//! row-form event on the batch path. [`ScopeFilter`] packages one
//! baseline routing scope (a query for Flink-like, a sharing-signature
//! partition for SPASS-like) as a [`RowFilter`], which is what lets the
//! sharded runtime's route-once [`sharon_executor::BatchRouter`] fan
//! baseline work out across shards.

use sharon_executor::agg::Contribution;
use sharon_executor::compile::CompileError;
use sharon_executor::{RowFilter, ScanKernel};
use sharon_query::{clause_passes, CmpOp, Query};
use sharon_types::{AttrId, Catalog, EventTypeId, GroupKey, Value};
use std::collections::HashMap;

/// Per-event-type resolved clauses for one query or partition.
#[derive(Debug, Clone, Default)]
pub(crate) struct TypeTable {
    /// Per type id: resolved `GROUP BY` attribute ids.
    pub group_attrs: Vec<Box<[AttrId]>>,
    /// Per type id: compiled predicates.
    pub predicates: Vec<Vec<(AttrId, CmpOp, Value)>>,
    /// Aggregate contribution source.
    pub contrib_target: Option<(EventTypeId, Option<AttrId>)>,
}

impl TypeTable {
    /// Resolve clauses of `query` against `catalog`.
    pub fn build(catalog: &Catalog, query: &Query) -> Result<Self, CompileError> {
        let max_ty = query
            .pattern
            .types()
            .iter()
            .map(|t| t.index())
            .max()
            .unwrap_or(0);
        let mut group_attrs: Vec<Box<[AttrId]>> = vec![Box::new([]); max_ty + 1];
        let mut predicates: Vec<Vec<(AttrId, CmpOp, Value)>> = vec![Vec::new(); max_ty + 1];
        for &t in query.pattern.types() {
            let schema = catalog.schema(t);
            let ids: Vec<AttrId> = query
                .group_by
                .iter()
                .map(|name| {
                    schema
                        .attr(name)
                        .ok_or_else(|| CompileError::GroupAttrMissing {
                            ty: catalog.name(t).to_string(),
                            attr: name.clone(),
                        })
                })
                .collect::<Result<_, _>>()?;
            group_attrs[t.index()] = ids.into_boxed_slice();
        }
        for p in &query.predicates {
            if p.ty.index() <= max_ty && query.pattern.contains_type(p.ty) {
                let attr = catalog.schema(p.ty).attr(&p.attr).ok_or_else(|| {
                    CompileError::PredicateAttrMissing {
                        ty: catalog.name(p.ty).to_string(),
                        attr: p.attr.clone(),
                    }
                })?;
                predicates[p.ty.index()].push((attr, p.op, p.value.clone()));
            }
        }
        let contrib_target =
            match (query.agg.target_type(), query.agg.target_attr()) {
                (Some(t), Some(name)) => {
                    let id = catalog.schema(t).attr(name).ok_or_else(|| {
                        CompileError::AggAttrMissing {
                            ty: catalog.name(t).to_string(),
                            attr: name.to_string(),
                        }
                    })?;
                    Some((t, Some(id)))
                }
                (Some(t), None) => Some((t, None)),
                (None, _) => None,
            };
        Ok(TypeTable {
            group_attrs,
            predicates,
            contrib_target,
        })
    }

    /// Merge `other`'s clauses into this table so it covers the union of
    /// both queries' pattern types (used by SPASS partitions, whose
    /// queries share predicates/grouping by signature but span different
    /// type sets).
    pub fn absorb(&mut self, other: TypeTable) {
        if other.group_attrs.len() > self.group_attrs.len() {
            self.group_attrs
                .resize(other.group_attrs.len(), Box::new([]));
            self.predicates.resize(other.predicates.len(), Vec::new());
        }
        for (i, g) in other.group_attrs.into_iter().enumerate() {
            if !g.is_empty() {
                self.group_attrs[i] = g;
            }
        }
        for (i, p) in other.predicates.into_iter().enumerate() {
            if !p.is_empty() {
                self.predicates[i] = p;
            }
        }
        if other.contrib_target.is_some() {
            self.contrib_target = other.contrib_target;
        }
    }

    /// Evaluate this table's predicates on a `(type, attrs)` row
    /// (vacuously true for unconstrained types).
    pub fn passes(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        match self.predicates.get(ty.index()) {
            Some(preds) => preds
                .iter()
                .all(|(attr, op, lit)| clause_passes(*op, attrs.get(attr.index()), lit)),
            None => true,
        }
    }

    /// True if every `GROUP BY` attribute of `ty` is present in `attrs`.
    pub fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        match self.group_attrs.get(ty.index()) {
            Some(gattrs) => gattrs.iter().all(|a| attrs.get(a.index()).is_some()),
            None => true,
        }
    }

    /// Build the row's group key into `key` (reusing the `vals` scratch
    /// buffer, so the steady-state path allocates nothing), returning
    /// `false` if a grouping attribute is absent. With no `GROUP BY`,
    /// writes [`GroupKey::Global`].
    pub fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool {
        let gattrs = match self.group_attrs.get(ty.index()) {
            Some(a) if !a.is_empty() => a,
            _ => {
                *key = GroupKey::Global;
                return true;
            }
        };
        vals.clear();
        for a in gattrs.iter() {
            match attrs.get(a.index()) {
                Some(v) => vals.push(v.clone()),
                None => return false,
            }
        }
        key.assign_from_slice(vals);
        true
    }

    /// The row's aggregate contribution.
    pub fn contribution(&self, ty: EventTypeId, attrs: &[Value]) -> Contribution {
        match self.contrib_target {
            Some((t, attr)) if t == ty => match attr {
                None => Contribution::of(1.0),
                Some(a) => match attrs.get(a.index()).and_then(Value::as_f64) {
                    Some(v) => Contribution::of(v),
                    None => Contribution::NONE,
                },
            },
            _ => Contribution::NONE,
        }
    }
}

/// Dense per-type-id routing bitmap: `true` where any of `queries`'
/// patterns contains the type. The **single** definition used by both the
/// sequential kernels' pre-passes and the sharded router's scopes, so the
/// two sides cannot drift apart on what routes.
pub(crate) fn routed_bitmap(queries: &[&Query]) -> Vec<bool> {
    let max_ty = queries
        .iter()
        .flat_map(|q| q.pattern.types())
        .map(|t| t.index())
        .max()
        .unwrap_or(0);
    let mut routed = vec![false; max_ty + 1];
    for q in queries {
        for t in q.pattern.types() {
            routed[t.index()] = true;
        }
    }
    routed
}

/// One baseline routing scope as seen by the batch router: a type-routing
/// bitmap plus the scope's [`TypeTable`]. The stateless prefix it encodes
/// is exactly the one the baseline's stateful side applies, so routed rows
/// are precisely the rows the baseline would process.
#[derive(Debug, Clone)]
pub(crate) struct ScopeFilter {
    /// Per type id (dense): does the scope's pattern contain the type?
    routed: Vec<bool>,
    table: TypeTable,
}

impl ScopeFilter {
    /// A filter routing the union of `queries`' pattern types, with their
    /// merged clause table.
    pub fn build(catalog: &Catalog, queries: &[&Query]) -> Result<Self, CompileError> {
        let mut table = TypeTable::build(catalog, queries[0])?;
        for q in &queries[1..] {
            table.absorb(TypeTable::build(catalog, q)?);
        }
        Ok(ScopeFilter {
            routed: routed_bitmap(queries),
            table,
        })
    }

    /// Compile this scope's stateless prefix into a vectorized
    /// [`ScanKernel`] (used by the baselines' columnar pre-passes and,
    /// via [`RowFilter::scan_kernel`], by the sharded batch router).
    pub fn compile_scan(&self) -> ScanKernel {
        ScanKernel::new(
            self.routed.clone(),
            &self.table.group_attrs,
            &self.table.predicates,
        )
    }

    /// The routing identity of this filter (see [`ScopeKey`]).
    pub fn key(&self) -> ScopeKey {
        ScopeKey {
            routed: self.routed.clone(),
            group_attrs: self.table.group_attrs.clone(),
            predicates: self
                .table
                .predicates
                .iter()
                .map(|preds| {
                    preds
                        .iter()
                        .map(|(a, op, v)| (*a, *op, HashableValue::of(v)))
                        .collect()
                })
                .collect(),
        }
    }
}

/// A [`Value`] literal with total equality and hashing (floats compared
/// by bit pattern), so predicate clauses can key a hash map. Bit-exact
/// float comparison is conservative: `0.0` vs `-0.0` fail to merge, which
/// only costs a missed dedup, never correctness.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum HashableValue {
    Int(i64),
    Float(u64),
    Str(std::sync::Arc<str>),
}

impl HashableValue {
    fn of(v: &Value) -> Self {
        match v {
            Value::Int(i) => HashableValue::Int(*i),
            Value::Float(f) => HashableValue::Float(f.to_bits()),
            Value::Str(s) => HashableValue::Str(std::sync::Arc::clone(s)),
        }
    }
}

/// The routing identity of a [`ScopeFilter`]: pattern type set, per-type
/// `GROUP BY` attributes, and per-type predicate clauses. Two scopes with
/// equal keys select *exactly* the same rows of any batch and hash every
/// row to the same shard, so the router only needs to scan one of them —
/// the compile-time basis of scope deduplication ([`dedup_scopes`]).
///
/// Deliberately excluded: aggregate contribution targets and window
/// specs — they shape the *stateful* side only and never affect which
/// rows route where.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScopeKey {
    routed: Vec<bool>,
    group_attrs: Vec<Box<[AttrId]>>,
    predicates: Vec<Vec<(AttrId, CmpOp, HashableValue)>>,
}

/// Deduplicate routing scopes by [`ScopeKey`]: returns the distinct
/// filters (first-seen order) and, parallel to them, the original scope
/// indexes subscribing to each — the worker side fans each distinct
/// scope's row selection out to all of its subscribers. With no duplicate
/// scopes this is the identity (`subscribers[i] == [i]`).
pub(crate) fn dedup_scopes(scopes: Vec<ScopeFilter>) -> (Vec<ScopeFilter>, Vec<Vec<usize>>) {
    let mut index: HashMap<ScopeKey, usize> = HashMap::with_capacity(scopes.len());
    let mut distinct = Vec::new();
    let mut subscribers: Vec<Vec<usize>> = Vec::new();
    for (i, scope) in scopes.into_iter().enumerate() {
        match index.entry(scope.key()) {
            std::collections::hash_map::Entry::Occupied(e) => subscribers[*e.get()].push(i),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(distinct.len());
                subscribers.push(vec![i]);
                distinct.push(scope);
            }
        }
    }
    (distinct, subscribers)
}

impl RowFilter for ScopeFilter {
    #[inline]
    fn routed(&self, ty: EventTypeId) -> bool {
        self.routed.get(ty.index()).copied().unwrap_or(false)
    }

    #[inline]
    fn predicates_pass(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        self.table.passes(ty, attrs)
    }

    #[inline]
    fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        self.table.groupable(ty, attrs)
    }

    #[inline]
    fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool {
        self.table.read_group_key(ty, attrs, vals, key)
    }

    fn scan_kernel(&self) -> Option<ScanKernel> {
        Some(self.compile_scan())
    }

    fn route_cost(&self) -> f64 {
        let total_types = self.routed.len().max(1);
        let routed_types = self.routed.iter().filter(|&&r| r).count();
        let clauses: usize = self.table.predicates.iter().map(Vec::len).sum();
        (1.0 + clauses as f64) * (routed_types as f64 / total_types as f64).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_query::parse_workload;
    use sharon_types::Schema;

    #[test]
    fn scopes_dedup_by_routing_identity() {
        let mut c = Catalog::new();
        c.register_with_schema("A", Schema::new(["g", "v"]));
        c.register_with_schema("B", Schema::new(["g", "v"]));
        let w = parse_workload(
            &mut c,
            [
                // queries 0 and 1 differ only in aggregate and window —
                // identical routing scope
                "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.v > 2 GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN SUM(B.v) PATTERN SEQ(A, B) WHERE A.v > 2 GROUP BY g WITHIN 20 ms SLIDE 4 ms",
                // dropping the predicate or the grouping changes the scope
                "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.v > 2 WITHIN 10 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        let scopes: Vec<ScopeFilter> = w
            .queries()
            .iter()
            .map(|q| ScopeFilter::build(&c, &[q]).unwrap())
            .collect();
        let (distinct, subscribers) = dedup_scopes(scopes);
        assert_eq!(distinct.len(), 3, "queries 0 and 1 share a scope");
        assert_eq!(subscribers, vec![vec![0, 1], vec![2], vec![3]]);
    }
}
