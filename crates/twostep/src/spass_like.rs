//! The shared two-step baseline ("SPASS" in the paper's evaluation).
//!
//! "SPASS defines shared event sequence construction. Their aggregation is
//! computed afterwards and is not shared. Thus, SPASS is a two-step and
//! only partially shared approach" (Section 8.1).
//!
//! Given a sharing plan, each shared sub-pattern's *match set* is
//! materialized once (shared construction); each query then joins the
//! materialized segment matches into full sequences — enumerating every
//! combination explicitly — and aggregates them. Construction is shared,
//! but sequences are still built, so the polynomial blow-up of the
//! two-step family remains (Figure 13), with high memory from the
//! materialized match sets.

use crate::common::TypeTable;
use crate::construct::SeqBuffers;
use sharon_executor::agg::{Aggregate, CountCell, OutputKind, StatsCell};
use sharon_executor::compile::CompileError;
use sharon_executor::winvec::WinVec;
use sharon_executor::ExecutorResults;
use sharon_query::{AggFunc, Query, QueryId, SegmentKind, SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventStream, GroupKey, Timestamp, WindowSpec};
use std::collections::{HashMap, VecDeque};

/// A materialized segment match (a constructed sub-sequence).
#[derive(Debug, Clone, Copy)]
struct Match<A> {
    start: Timestamp,
    end: Timestamp,
    cell: A,
}

/// One segment's construction state within a group.
struct SegGroupState<A> {
    buffers: SeqBuffers,
    matches: VecDeque<Match<A>>,
}

struct GroupState<A> {
    segs: Vec<SegGroupState<A>>,
    accs: Vec<WinVec<A>>, // per query
}

struct SegDef {
    len: usize,
    /// positions of each type id within the segment pattern
    positions: Vec<Vec<usize>>,
}

struct QueryDef {
    id: QueryId,
    output: OutputKind,
    stages: Vec<usize>, // segment indexes, in chain order
}

struct Partition<A> {
    window: WindowSpec,
    table: TypeTable,
    segs: Vec<SegDef>,
    queries: Vec<QueryDef>,
    /// queries whose *final* stage is each segment
    finalists: Vec<Vec<usize>>,
    groups: HashMap<GroupKey, GroupState<A>>,
    sequences_constructed: u64,
    _marker: std::marker::PhantomData<A>,
}

fn output_kind(q: &Query) -> OutputKind {
    match &q.agg {
        AggFunc::CountStar => OutputKind::Count,
        AggFunc::Count(t) => OutputKind::CountTimes(q.pattern.positions_of(*t).len() as u32),
        AggFunc::Sum(..) => OutputKind::Sum,
        AggFunc::Min(..) => OutputKind::Min,
        AggFunc::Max(..) => OutputKind::Max,
        AggFunc::Avg(t, _) => OutputKind::Avg(q.pattern.positions_of(*t).len() as u32),
    }
}

impl<A: Aggregate> Partition<A> {
    fn new(
        catalog: &Catalog,
        queries: &[&Query],
        plan: &SharingPlan,
    ) -> Result<Self, CompileError> {
        let window = queries[0].window;
        let table = TypeTable::build(catalog, queries[0])?;
        // also resolve group/pred/contrib tables of remaining queries so all
        // pattern types are covered
        let mut table = table;
        for q in &queries[1..] {
            let t = TypeTable::build(catalog, q)?;
            if t.group_attrs.len() > table.group_attrs.len() {
                let mut merged = t;
                for (i, g) in table.group_attrs.iter().enumerate() {
                    if !g.is_empty() {
                        merged.group_attrs[i] = g.clone();
                    }
                }
                for (i, p) in table.predicates.iter().enumerate() {
                    if !p.is_empty() {
                        merged.predicates[i] = p.clone();
                    }
                }
                if table.contrib_target.is_some() {
                    merged.contrib_target = table.contrib_target;
                }
                table = merged;
            } else {
                for (i, g) in t.group_attrs.iter().enumerate() {
                    if !g.is_empty() {
                        table.group_attrs[i] = g.clone();
                    }
                }
                for (i, p) in t.predicates.iter().enumerate() {
                    if !p.is_empty() {
                        table.predicates[i] = p.clone();
                    }
                }
                if t.contrib_target.is_some() {
                    table.contrib_target = t.contrib_target;
                }
            }
        }

        let mut segs: Vec<SegDef> = Vec::new();
        let mut shared_seg: HashMap<usize, usize> = HashMap::new();
        let mut qdefs = Vec::with_capacity(queries.len());
        for q in queries {
            let segments = plan
                .decompose(q)
                .map_err(|e| CompileError::PlanInvalid(e.to_string()))?;
            let mut stages = Vec::with_capacity(segments.len());
            for seg in &segments {
                let idx = match seg.kind {
                    SegmentKind::Shared(ci) => {
                        if let Some(&i) = shared_seg.get(&ci) {
                            stages.push(i);
                            continue;
                        }
                        let i = segs.len();
                        shared_seg.insert(ci, i);
                        i
                    }
                    SegmentKind::Private => segs.len(),
                };
                let max_ty = seg
                    .pattern
                    .types()
                    .iter()
                    .map(|t| t.index())
                    .max()
                    .unwrap_or(0);
                let mut positions: Vec<Vec<usize>> = vec![Vec::new(); max_ty + 1];
                for (i, t) in seg.pattern.types().iter().enumerate() {
                    positions[t.index()].push(i);
                }
                segs.push(SegDef {
                    len: seg.pattern.len(),
                    positions,
                });
                stages.push(idx);
            }
            qdefs.push(QueryDef {
                id: q.id,
                output: output_kind(q),
                stages,
            });
        }
        let mut finalists = vec![Vec::new(); segs.len()];
        for (qi, q) in qdefs.iter().enumerate() {
            finalists[*q.stages.last().expect("patterns are non-empty")].push(qi);
        }
        Ok(Partition {
            window,
            table,
            segs,
            queries: qdefs,
            finalists,
            groups: HashMap::new(),
            sequences_constructed: 0,
            _marker: std::marker::PhantomData,
        })
    }

    fn process(&mut self, e: &Event, results: &mut ExecutorResults) {
        if !self.table.passes(e) {
            return;
        }
        let Some(key) = self.table.group_key(e) else {
            return;
        };
        let spec = self.window;
        let slide = spec.slide.millis();
        let segs = &self.segs;
        let group = self
            .groups
            .entry(key.clone())
            .or_insert_with(|| GroupState {
                segs: segs
                    .iter()
                    .map(|s| SegGroupState {
                        buffers: SeqBuffers::new(s.len),
                        matches: VecDeque::new(),
                    })
                    .collect(),
                accs: self.queries.iter().map(|_| WinVec::new()).collect(),
            });

        // expire + close
        if e.time.millis() >= spec.within.millis() {
            let cutoff = Timestamp(e.time.millis() - spec.within.millis());
            for sg in &mut group.segs {
                sg.buffers.expire(cutoff);
                while sg.matches.front().is_some_and(|m| m.end <= cutoff) {
                    sg.matches.pop_front();
                }
            }
        }
        let min_seq = spec.first_start_covering(e.time).millis() / slide;
        for (qi, acc) in group.accs.iter_mut().enumerate() {
            for (seq, v) in acc.drain_before(min_seq) {
                results.emit(
                    self.queries[qi].id,
                    key.clone(),
                    Timestamp(seq * slide),
                    v.output(self.queries[qi].output),
                );
            }
        }

        let c = self.table.contribution(e);
        let GroupState { segs: gsegs, accs } = group;
        for (si, seg) in self.segs.iter().enumerate() {
            let Some(positions) = seg.positions.get(e.ty.index()).filter(|p| !p.is_empty()) else {
                continue;
            };
            // shared construction: new matches of this segment ending at e
            if positions.contains(&(seg.len - 1)) {
                let mut new_matches: Vec<Match<A>> = Vec::new();
                let constructed =
                    gsegs[si]
                        .buffers
                        .enumerate_ending::<A>(e.time, c, |start, cell| {
                            new_matches.push(Match {
                                start,
                                end: e.time,
                                cell,
                            });
                        });
                self.sequences_constructed += constructed;
                // unshared aggregation: each query joins the new final
                // matches with its earlier segments' materialized matches
                for &qi in &self.finalists[si] {
                    let qdef = &self.queries[qi];
                    let prefix_stages = &qdef.stages[..qdef.stages.len() - 1];
                    let acc = &mut accs[qi];
                    for m in &new_matches {
                        self.sequences_constructed +=
                            join_backward(gsegs, prefix_stages, m, |start, cell| {
                                let hi = start.millis() / slide;
                                if hi >= min_seq {
                                    acc.add_range(e.time, min_seq, hi, cell);
                                }
                            });
                    }
                }
                gsegs[si].matches.extend(new_matches);
            }
            // buffer at non-END positions
            for &pos in positions {
                if pos + 1 < seg.len {
                    gsegs[si].buffers.push(pos, e.time, c);
                }
            }
        }
    }

    fn finish(&mut self, results: &mut ExecutorResults) {
        let slide = self.window.slide.millis();
        for (key, group) in self.groups.iter_mut() {
            for (qi, acc) in group.accs.iter_mut().enumerate() {
                for (seq, v) in acc.drain_before(u64::MAX) {
                    results.emit(
                        self.queries[qi].id,
                        key.clone(),
                        Timestamp(seq * slide),
                        v.output(self.queries[qi].output),
                    );
                }
            }
        }
    }

    fn materialized_matches(&self) -> usize {
        self.groups
            .values()
            .map(|g| {
                g.segs
                    .iter()
                    .map(|s| s.matches.len() + s.buffers.buffered_events())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Enumerate all combinations of earlier-segment matches that chain
/// (strictly increasing time) in front of final match `last`, invoking the
/// callback with the full sequence's START time and combined cell.
fn join_backward<A: Aggregate>(
    segs: &[SegGroupState<A>],
    prefix_stages: &[usize],
    last: &Match<A>,
    mut emit: impl FnMut(Timestamp, A),
) -> u64 {
    fn rec<A: Aggregate>(
        segs: &[SegGroupState<A>],
        stages: &[usize],
        before: Timestamp,
        suffix_cell: A,
        count: &mut u64,
        emit: &mut impl FnMut(Timestamp, A),
    ) {
        let (&stage, rest) = stages
            .split_last()
            .expect("rec requires at least one stage");
        // matches are appended in END-time order, so we can stop at the
        // first match that no longer precedes `before`
        for m in segs[stage].matches.iter() {
            if m.end >= before {
                break;
            }
            let cell = m.cell.cross(&suffix_cell);
            if rest.is_empty() {
                *count += 1;
                emit(m.start, cell);
            } else {
                rec(segs, rest, m.start, cell, count, emit);
            }
        }
    }
    if prefix_stages.is_empty() {
        emit(last.start, last.cell);
        return 1;
    }
    let mut count = 0;
    rec(
        segs,
        prefix_stages,
        last.start,
        last.cell,
        &mut count,
        &mut emit,
    );
    count
}

enum Kernel {
    Count(Vec<Partition<CountCell>>),
    Stats(Vec<Partition<StatsCell>>),
}

/// The shared two-step executor: shared sequence construction per plan
/// candidate, per-query join + aggregation afterwards.
pub struct SpassLike {
    kernel: Kernel,
    results: ExecutorResults,
    last_time: Timestamp,
}

impl SpassLike {
    /// Compile `workload` under `plan` (candidates decide which segment
    /// constructions are shared).
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
    ) -> Result<Self, CompileError> {
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        plan.validate(workload)
            .map_err(|e| CompileError::PlanInvalid(e.to_string()))?;
        // partition by sharing signature, like the online executor
        let mut parts: Vec<(Vec<&Query>, sharon_query::query::SharingSignature)> = Vec::new();
        for q in workload.queries() {
            let sig = q.sharing_signature();
            match parts.iter_mut().find(|(_, s)| *s == sig) {
                Some((qs, _)) => qs.push(q),
                None => parts.push((vec![q], sig)),
            }
        }
        for cand in &plan.candidates {
            let ok = parts
                .iter()
                .any(|(qs, _)| cand.queries.iter().all(|id| qs.iter().any(|q| q.id == *id)));
            if !ok {
                return Err(CompileError::CandidateSpansPartitions {
                    pattern: cand.pattern.display(catalog).to_string(),
                });
            }
        }
        let count_only = workload.queries().iter().all(|q| q.agg.is_count_like());
        let kernel = if count_only {
            Kernel::Count(
                parts
                    .iter()
                    .map(|(qs, _)| Partition::new(catalog, qs, plan))
                    .collect::<Result<_, _>>()?,
            )
        } else {
            Kernel::Stats(
                parts
                    .iter()
                    .map(|(qs, _)| Partition::new(catalog, qs, plan))
                    .collect::<Result<_, _>>()?,
            )
        };
        Ok(SpassLike {
            kernel,
            results: ExecutorResults::new(),
            last_time: Timestamp::ZERO,
        })
    }

    /// Process one event.
    pub fn process(&mut self, e: &Event) {
        debug_assert!(e.time >= self.last_time, "events must be time-ordered");
        self.last_time = e.time;
        match &mut self.kernel {
            Kernel::Count(ps) => {
                for p in ps {
                    p.process(e, &mut self.results);
                }
            }
            Kernel::Stats(ps) => {
                for p in ps {
                    p.process(e, &mut self.results);
                }
            }
        }
    }

    /// Drain a stream.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        while let Some(e) = stream.next_event() {
            self.process(&e);
        }
        self
    }

    /// Flush and return all results.
    pub fn finish(mut self) -> ExecutorResults {
        match &mut self.kernel {
            Kernel::Count(ps) => {
                for p in ps {
                    p.finish(&mut self.results);
                }
            }
            Kernel::Stats(ps) => {
                for p in ps {
                    p.finish(&mut self.results);
                }
            }
        }
        self.results
    }

    /// Segment matches plus joined sequences constructed so far.
    pub fn sequences_constructed(&self) -> u64 {
        match &self.kernel {
            Kernel::Count(ps) => ps.iter().map(|p| p.sequences_constructed).sum(),
            Kernel::Stats(ps) => ps.iter().map(|p| p.sequences_constructed).sum(),
        }
    }

    /// Materialized matches + buffered events (memory proxy).
    pub fn materialized_matches(&self) -> usize {
        match &self.kernel {
            Kernel::Count(ps) => ps.iter().map(Partition::materialized_matches).sum(),
            Kernel::Stats(ps) => ps.iter().map(Partition::materialized_matches).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_executor::Executor;
    use sharon_query::{parse_workload, Pattern, PlanCandidate};
    use sharon_types::EventTypeId;

    fn ev(ty: EventTypeId, t: u64) -> Event {
        Event::new(ty, Timestamp(t))
    }

    fn traffic_pair() -> (Catalog, Workload, SharingPlan) {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(X, A, B) WITHIN 20 ms SLIDE 5 ms",
                "RETURN COUNT(*) PATTERN SEQ(Y, A, B, Z) WITHIN 20 ms SLIDE 5 ms",
            ],
        )
        .unwrap();
        let ab = Pattern::from_names(&mut c, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        (c, w, plan)
    }

    #[test]
    fn matches_online_executor() {
        let (c, w, plan) = traffic_pair();
        let x = c.lookup("X").unwrap();
        let y = c.lookup("Y").unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let z = c.lookup("Z").unwrap();
        let events = vec![
            ev(x, 1),
            ev(y, 2),
            ev(a, 3),
            ev(b, 4),
            ev(a, 5),
            ev(b, 6),
            ev(z, 7),
            ev(x, 9),
            ev(a, 10),
            ev(b, 12),
            ev(z, 14),
        ];
        let mut sp = SpassLike::new(&c, &w, &plan).unwrap();
        let mut online = Executor::new(&c, &w, &plan).unwrap();
        for e in &events {
            sp.process(e);
            online.process(e);
        }
        assert!(sp.sequences_constructed() > 0);
        let sr = sp.finish();
        let or = online.finish();
        assert!(
            sr.semantically_eq(&or, 1e-9),
            "spass: {:?} {:?}\nonline: {:?} {:?}",
            sr.of_query_sorted(QueryId(0)),
            sr.of_query_sorted(QueryId(1)),
            or.of_query_sorted(QueryId(0)),
            or.of_query_sorted(QueryId(1)),
        );
        assert!(!sr.is_empty());
    }

    #[test]
    fn shared_construction_counts_segment_matches_once() {
        let (c, w, plan) = traffic_pair();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut sp = SpassLike::new(&c, &w, &plan).unwrap();
        // two (A,B) matches, no prefixes: shared segment constructs 2
        // matches once; no query completes (prefixes missing)
        for e in [ev(a, 1), ev(b, 2), ev(a, 3), ev(b, 4)] {
            sp.process(&e);
        }
        // (a1,b2), (a1,b4), (a3,b4) = 3 shared matches
        assert_eq!(sp.sequences_constructed(), 3);
        assert!(
            sp.materialized_matches() >= 3,
            "match sets are materialized"
        );
        let r = sp.finish();
        assert!(r.is_empty());
    }

    #[test]
    fn non_shared_plan_equals_flink_like() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 10 ms SLIDE 2 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let cc = c.lookup("C").unwrap();
        let events = vec![ev(a, 1), ev(b, 2), ev(cc, 3), ev(b, 4), ev(cc, 5)];
        let mut sp = SpassLike::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        let mut fl = crate::flink_like::FlinkLike::new(&c, &w).unwrap();
        for e in &events {
            sp.process(e);
            fl.process(e);
        }
        let sr = sp.finish();
        let fr = fl.finish();
        assert!(sr.semantically_eq(&fr, 1e-9));
    }
}
