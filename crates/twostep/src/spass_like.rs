//! The shared two-step baseline ("SPASS" in the paper's evaluation).
//!
//! "SPASS defines shared event sequence construction. Their aggregation is
//! computed afterwards and is not shared. Thus, SPASS is a two-step and
//! only partially shared approach" (Section 8.1).
//!
//! Given a sharing plan, each shared sub-pattern's *match set* is
//! materialized once (shared construction); each query then joins the
//! materialized segment matches into full sequences — enumerating every
//! combination explicitly — and aggregates them. Construction is shared,
//! but sequences are still built, so the polynomial blow-up of the
//! two-step family remains (Figure 13), with high memory from the
//! materialized match sets.
//!
//! Like every strategy in the system, the baseline is a
//! [`BatchProcessor`]: [`SpassLike::process_columnar`] runs, per
//! sharing-signature partition, a stateless scan of the batch columns that
//! selects row indices, then a stateful dispatch over the shared value
//! buffer — no row-form [`Event`] is materialized. [`SpassLike::sharded`]
//! runs the baseline on the route-once parallel runtime: one instance per
//! worker behind a scope-fanning [`ShardProcessor`] wrapper, with
//! identical routing scopes deduplicated.

use crate::common::{dedup_scopes, ScopeFilter, TypeTable};
use crate::construct::SeqBuffers;
use sharon_executor::agg::{Aggregate, CountCell, OutputKind, StatsCell};
use sharon_executor::compile::CompileError;
use sharon_executor::winvec::WinVec;
use sharon_executor::{
    split_router_plane, BatchProcessor, ExecutorResults, Reorder, RoutedRows, ScanKernel,
    ShardProcessor, ShardReport, ShardedExecutor, SplitConfig, DEFAULT_BATCH_SIZE,
};
use sharon_query::{AggFunc, Query, QueryId, SegmentKind, SharingPlan, Workload};
use sharon_types::{
    Catalog, Event, EventBatch, EventStream, EventTypeId, GroupKey, Timestamp, Value, WindowSpec,
};
use std::collections::{HashMap, VecDeque};

/// A materialized segment match (a constructed sub-sequence).
#[derive(Debug, Clone, Copy)]
struct Match<A> {
    start: Timestamp,
    end: Timestamp,
    cell: A,
}

/// One segment's construction state within a group.
struct SegGroupState<A> {
    buffers: SeqBuffers,
    matches: VecDeque<Match<A>>,
}

struct GroupState<A> {
    segs: Vec<SegGroupState<A>>,
    accs: Vec<WinVec<A>>, // per query
}

struct SegDef {
    len: usize,
    /// positions of each type id within the segment pattern
    positions: Vec<Vec<usize>>,
}

struct QueryDef {
    id: QueryId,
    output: OutputKind,
    stages: Vec<usize>, // segment indexes, in chain order
}

struct Partition<A> {
    window: WindowSpec,
    table: TypeTable,
    /// Per type id (dense): does any segment route the type?
    routed: Vec<bool>,
    segs: Vec<SegDef>,
    queries: Vec<QueryDef>,
    /// queries whose *final* stage is each segment
    finalists: Vec<Vec<usize>>,
    groups: HashMap<GroupKey, GroupState<A>>,
    sequences_constructed: u64,
    /// Rows that survived this partition's stateless scan (routing,
    /// predicates, grouping) — the same notion of "matched" the online
    /// engines report per partition.
    events_matched: u64,
    /// Reused per-row key storage (clone only on first sight of a group).
    key_scratch: GroupKey,
    vals_scratch: Vec<Value>,
    /// Reused row-selection buffer of the columnar pre-pass.
    sel_scratch: Vec<u32>,
    /// Reused emission buffer for closing windows.
    emit_scratch: Vec<(u64, A)>,
    /// Reused buffer for the segment matches a single END row constructs.
    match_scratch: Vec<Match<A>>,
    /// Compiled scan kernel of the columnar pre-pass (`None` = the
    /// scalar interpreter, per [`sharon_executor::scan_mode`]).
    scan: Option<ScanKernel>,
    /// Rows examined by this partition's columnar pre-pass.
    rows_scanned: u64,
    /// Rows that survived routing + predicates + groupability.
    rows_selected: u64,
}

fn output_kind(q: &Query) -> OutputKind {
    match &q.agg {
        AggFunc::CountStar => OutputKind::Count,
        AggFunc::Count(t) => OutputKind::CountTimes(q.pattern.positions_of(*t).len() as u32),
        AggFunc::Sum(..) => OutputKind::Sum,
        AggFunc::Min(..) => OutputKind::Min,
        AggFunc::Max(..) => OutputKind::Max,
        AggFunc::Avg(t, _) => OutputKind::Avg(q.pattern.positions_of(*t).len() as u32),
    }
}

/// Partition `workload` by sharing signature, preserving id order — the
/// scope order shared by the sequential kernel and the sharded router.
fn signature_partitions(workload: &Workload) -> Vec<Vec<&Query>> {
    let mut parts: Vec<(Vec<&Query>, sharon_query::query::SharingSignature)> = Vec::new();
    for q in workload.queries() {
        let sig = q.sharing_signature();
        match parts.iter_mut().find(|(_, s)| *s == sig) {
            Some((qs, _)) => qs.push(q),
            None => parts.push((vec![q], sig)),
        }
    }
    parts.into_iter().map(|(qs, _)| qs).collect()
}

impl<A: Aggregate> Partition<A> {
    fn new(
        catalog: &Catalog,
        queries: &[&Query],
        plan: &SharingPlan,
    ) -> Result<Self, CompileError> {
        let window = queries[0].window;
        // resolve group/pred/contrib tables of all queries so every
        // pattern type is covered
        let mut table = TypeTable::build(catalog, queries[0])?;
        for q in &queries[1..] {
            table.absorb(TypeTable::build(catalog, q)?);
        }

        let mut segs: Vec<SegDef> = Vec::new();
        let mut shared_seg: HashMap<usize, usize> = HashMap::new();
        let mut qdefs = Vec::with_capacity(queries.len());
        for q in queries {
            let segments = plan
                .decompose(q)
                .map_err(|e| CompileError::PlanInvalid(e.to_string()))?;
            let mut stages = Vec::with_capacity(segments.len());
            for seg in &segments {
                let idx = match seg.kind {
                    SegmentKind::Shared(ci) => {
                        if let Some(&i) = shared_seg.get(&ci) {
                            stages.push(i);
                            continue;
                        }
                        let i = segs.len();
                        shared_seg.insert(ci, i);
                        i
                    }
                    SegmentKind::Private => segs.len(),
                };
                let max_ty = seg
                    .pattern
                    .types()
                    .iter()
                    .map(|t| t.index())
                    .max()
                    .unwrap_or(0);
                let mut positions: Vec<Vec<usize>> = vec![Vec::new(); max_ty + 1];
                for (i, t) in seg.pattern.types().iter().enumerate() {
                    positions[t.index()].push(i);
                }
                segs.push(SegDef {
                    len: seg.pattern.len(),
                    positions,
                });
                stages.push(idx);
            }
            qdefs.push(QueryDef {
                id: q.id,
                output: output_kind(q),
                stages,
            });
        }
        let mut finalists = vec![Vec::new(); segs.len()];
        for (qi, q) in qdefs.iter().enumerate() {
            finalists[*q.stages.last().expect("patterns are non-empty")].push(qi);
        }
        let routed = crate::common::routed_bitmap(queries);
        let scan = match sharon_executor::scan_mode() {
            sharon_executor::ScanMode::Vector => Some(ScanKernel::new(
                routed.clone(),
                &table.group_attrs,
                &table.predicates,
            )),
            sharon_executor::ScanMode::Scalar => None,
        };
        Ok(Partition {
            window,
            table,
            routed,
            segs,
            queries: qdefs,
            finalists,
            groups: HashMap::new(),
            sequences_constructed: 0,
            events_matched: 0,
            key_scratch: GroupKey::Global,
            vals_scratch: Vec::new(),
            sel_scratch: Vec::new(),
            emit_scratch: Vec::new(),
            match_scratch: Vec::new(),
            scan,
            rows_scanned: 0,
            rows_selected: 0,
        })
    }

    /// The shared per-row path of the per-event shim, the columnar
    /// dispatch, and the sharded routed dispatch (`pre_routed` rows have
    /// already passed routing + predicates + groupability).
    fn process_row(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: &[Value],
        pre_routed: bool,
        results: &mut ExecutorResults,
    ) {
        if !pre_routed {
            if !self.routed.get(ty.index()).copied().unwrap_or(false) {
                return;
            }
            if !self.table.passes(ty, attrs) {
                return;
            }
        }
        if !self
            .table
            .read_group_key(ty, attrs, &mut self.vals_scratch, &mut self.key_scratch)
        {
            debug_assert!(!pre_routed, "router selected an ungroupable event");
            return;
        }
        self.events_matched += 1;
        let spec = self.window;
        let slide = spec.slide.millis();
        if !self.groups.contains_key(&self.key_scratch) {
            let state = GroupState {
                segs: self
                    .segs
                    .iter()
                    .map(|s| SegGroupState {
                        buffers: SeqBuffers::new(s.len),
                        matches: VecDeque::new(),
                    })
                    .collect(),
                accs: self.queries.iter().map(|_| WinVec::new()).collect(),
            };
            self.groups.insert(self.key_scratch.clone(), state);
        }
        let group = self
            .groups
            .get_mut(&self.key_scratch)
            .expect("group present after insert");

        // expire + close
        if time.millis() >= spec.within.millis() {
            let cutoff = Timestamp(time.millis() - spec.within.millis());
            for sg in &mut group.segs {
                sg.buffers.expire(cutoff);
                while sg.matches.front().is_some_and(|m| m.end <= cutoff) {
                    sg.matches.pop_front();
                }
            }
        }
        let min_seq = spec.first_start_covering(time).millis() / slide;
        for (qi, acc) in group.accs.iter_mut().enumerate() {
            self.emit_scratch.clear();
            acc.drain_before_into(min_seq, &mut self.emit_scratch);
            for &(seq, v) in self.emit_scratch.iter() {
                results.emit(
                    self.queries[qi].id,
                    self.key_scratch.clone(),
                    Timestamp(seq * slide),
                    v.output(self.queries[qi].output),
                );
            }
        }

        let c = self.table.contribution(ty, attrs);
        let mut new_matches = std::mem::take(&mut self.match_scratch);
        let GroupState { segs: gsegs, accs } = group;
        for (si, seg) in self.segs.iter().enumerate() {
            let Some(positions) = seg.positions.get(ty.index()).filter(|p| !p.is_empty()) else {
                continue;
            };
            // shared construction: new matches of this segment ending here
            if positions.contains(&(seg.len - 1)) {
                new_matches.clear();
                let constructed =
                    gsegs[si]
                        .buffers
                        .enumerate_ending::<A>(time, c, |start, cell| {
                            new_matches.push(Match {
                                start,
                                end: time,
                                cell,
                            });
                        });
                self.sequences_constructed += constructed;
                // unshared aggregation: each query joins the new final
                // matches with its earlier segments' materialized matches
                for &qi in &self.finalists[si] {
                    let qdef = &self.queries[qi];
                    let prefix_stages = &qdef.stages[..qdef.stages.len() - 1];
                    let acc = &mut accs[qi];
                    for m in &new_matches {
                        self.sequences_constructed +=
                            join_backward(gsegs, prefix_stages, m, |start, cell| {
                                let hi = start.millis() / slide;
                                if hi >= min_seq {
                                    acc.add_range(time, min_seq, hi, cell);
                                }
                            });
                    }
                }
                gsegs[si].matches.extend(new_matches.iter().copied());
            }
            // buffer at non-END positions
            for &pos in positions {
                if pos + 1 < seg.len {
                    gsegs[si].buffers.push(pos, time, c);
                }
            }
        }
        self.match_scratch = new_matches;
    }

    /// Columnar pipeline over one batch: stateless scan → stateful
    /// dispatch of the selected row indices.
    fn process_columnar(&mut self, batch: &EventBatch, results: &mut ExecutorResults) {
        let mut sel = std::mem::take(&mut self.sel_scratch);
        sel.clear();
        if let Some(kernel) = &mut self.scan {
            kernel.select_into(batch, 0, batch.len(), &mut sel);
        } else {
            for (row, ty) in batch.types().iter().enumerate() {
                if !self.routed.get(ty.index()).copied().unwrap_or(false) {
                    continue;
                }
                let attrs = batch.attrs(row);
                if !self.table.passes(*ty, attrs) {
                    continue;
                }
                if !self.table.groupable(*ty, attrs) {
                    continue;
                }
                sel.push(row as u32);
            }
        }
        self.rows_scanned += batch.len() as u64;
        self.rows_selected += sel.len() as u64;
        sharon_metrics::record_rows_scanned(batch.len() as u64);
        sharon_metrics::record_rows_selected(sel.len() as u64);
        self.process_rows(batch, &sel, results);
        self.sel_scratch = sel;
    }

    /// Stateful dispatch of pre-selected rows.
    fn process_rows(&mut self, batch: &EventBatch, rows: &[u32], results: &mut ExecutorResults) {
        for &row in rows {
            let row = row as usize;
            self.process_row(
                batch.ty(row),
                batch.time(row),
                batch.attrs(row),
                true,
                results,
            );
        }
    }

    fn finish(&mut self, results: &mut ExecutorResults) {
        let slide = self.window.slide.millis();
        for (key, group) in self.groups.iter_mut() {
            for (qi, acc) in group.accs.iter_mut().enumerate() {
                for (seq, v) in acc.drain_before(u64::MAX) {
                    results.emit(
                        self.queries[qi].id,
                        key.clone(),
                        Timestamp(seq * slide),
                        v.output(self.queries[qi].output),
                    );
                }
            }
        }
    }

    fn materialized_matches(&self) -> usize {
        self.groups
            .values()
            .map(|g| {
                g.segs
                    .iter()
                    .map(|s| s.matches.len() + s.buffers.buffered_events())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Enumerate all combinations of earlier-segment matches that chain
/// (strictly increasing time) in front of final match `last`, invoking the
/// callback with the full sequence's START time and combined cell.
fn join_backward<A: Aggregate>(
    segs: &[SegGroupState<A>],
    prefix_stages: &[usize],
    last: &Match<A>,
    mut emit: impl FnMut(Timestamp, A),
) -> u64 {
    fn rec<A: Aggregate>(
        segs: &[SegGroupState<A>],
        stages: &[usize],
        before: Timestamp,
        suffix_cell: A,
        count: &mut u64,
        emit: &mut impl FnMut(Timestamp, A),
    ) {
        let (&stage, rest) = stages
            .split_last()
            .expect("rec requires at least one stage");
        // matches are appended in END-time order, so we can stop at the
        // first match that no longer precedes `before`
        for m in segs[stage].matches.iter() {
            if m.end >= before {
                break;
            }
            let cell = m.cell.cross(&suffix_cell);
            if rest.is_empty() {
                *count += 1;
                emit(m.start, cell);
            } else {
                rec(segs, rest, m.start, cell, count, emit);
            }
        }
    }
    if prefix_stages.is_empty() {
        emit(last.start, last.cell);
        return 1;
    }
    let mut count = 0;
    rec(
        segs,
        prefix_stages,
        last.start,
        last.cell,
        &mut count,
        &mut emit,
    );
    count
}

enum Kernel {
    Count(Vec<Partition<CountCell>>),
    Stats(Vec<Partition<StatsCell>>),
}

/// The shared two-step executor: shared sequence construction per plan
/// candidate, per-query join + aggregation afterwards.
pub struct SpassLike {
    kernel: Kernel,
    results: ExecutorResults,
    last_time: Timestamp,
    /// Event-time reorder gate (see [`Reorder`]); `None` keeps the
    /// historical arrival-order contract.
    reorder: Option<Reorder>,
}

impl SpassLike {
    /// Compile `workload` under `plan` (candidates decide which segment
    /// constructions are shared).
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
    ) -> Result<Self, CompileError> {
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        plan.validate(workload)
            .map_err(|e| CompileError::PlanInvalid(e.to_string()))?;
        // partition by sharing signature, like the online executor
        let parts = signature_partitions(workload);
        for cand in &plan.candidates {
            let ok = parts
                .iter()
                .any(|qs| cand.queries.iter().all(|id| qs.iter().any(|q| q.id == *id)));
            if !ok {
                return Err(CompileError::CandidateSpansPartitions {
                    pattern: cand.pattern.display(catalog).to_string(),
                });
            }
        }
        let count_only = workload.queries().iter().all(|q| q.agg.is_count_like());
        let kernel = if count_only {
            Kernel::Count(
                parts
                    .iter()
                    .map(|qs| Partition::new(catalog, qs, plan))
                    .collect::<Result<_, _>>()?,
            )
        } else {
            Kernel::Stats(
                parts
                    .iter()
                    .map(|qs| Partition::new(catalog, qs, plan))
                    .collect::<Result<_, _>>()?,
            )
        };
        Ok(SpassLike {
            kernel,
            results: ExecutorResults::new(),
            last_time: Timestamp::ZERO,
            reorder: None,
        })
    }

    /// Enable event-time processing: input may carry bounded disorder,
    /// rows buffer behind the watermark `max_time_seen − lateness_ms` and
    /// release in event-time order; rows behind the watermark are dropped
    /// and counted. Must be called before any ingestion.
    pub fn set_lateness(&mut self, lateness_ms: u64) {
        self.reorder = Some(Reorder::new(lateness_ms));
    }

    /// Late rows dropped by the event-time gate (0 when no gate).
    pub fn late_rows_dropped(&self) -> u64 {
        self.reorder.as_ref().map_or(0, Reorder::late_rows_dropped)
    }

    /// Dispatch one in-order row to every signature partition (the
    /// release half of the gated paths).
    fn dispatch_row(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: &[Value],
        pre_routed: bool,
    ) {
        match &mut self.kernel {
            Kernel::Count(ps) => {
                for p in ps {
                    p.process_row(ty, time, attrs, pre_routed, &mut self.results);
                }
            }
            Kernel::Stats(ps) => {
                for p in ps {
                    p.process_row(ty, time, attrs, pre_routed, &mut self.results);
                }
            }
        }
    }

    /// Advance the gate's watermark and dispatch every released row.
    fn advance_watermark(&mut self, frontier: Timestamp) {
        let Some(gate) = &mut self.reorder else {
            return;
        };
        gate.advance(frontier);
        self.release_ready();
    }

    fn release_ready(&mut self) {
        while let Some(row) = self.reorder.as_mut().and_then(Reorder::pop_ready) {
            self.dispatch_row(row.ty, row.time, &row.attrs, row.pre_routed);
            if let Some(gate) = &mut self.reorder {
                gate.recycle(row);
            }
        }
    }

    /// End-of-stream: open the gate and release everything still buffered.
    fn flush_pending(&mut self) {
        let Some(gate) = &mut self.reorder else {
            return;
        };
        gate.open();
        self.release_ready();
    }

    /// Run the baseline on the sharded parallel runtime: the batch router
    /// fans each signature partition's rows out by group hash; one full
    /// [`SpassLike`] instance per worker consumes only the rows it owns.
    ///
    /// Routing scopes are **deduplicated** like [`crate::FlinkLike::sharded`]'s:
    /// signature partitions whose pattern types, predicates, and
    /// `GROUP BY` clauses coincide (partitions differing only in window
    /// or aggregate, say) share one routing scope, scanned once per batch
    /// and fanned out to every subscribing partition on the worker side.
    pub fn sharded(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
    ) -> Result<ShardedExecutor, CompileError> {
        Self::sharded_with_batch_size(catalog, workload, plan, n_shards, DEFAULT_BATCH_SIZE)
    }

    /// [`SpassLike::sharded`] with an explicit flush threshold.
    pub fn sharded_with_batch_size(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
    ) -> Result<ShardedExecutor, CompileError> {
        Self::sharded_with_pipeline(
            catalog,
            workload,
            plan,
            n_shards,
            batch_size,
            sharon_executor::default_pipeline_depth(),
            None,
        )
    }

    /// [`SpassLike::sharded_with_batch_size`] with an explicit ingest
    /// pipeline depth (`0` = in-line routing; see
    /// [`ShardedExecutor::from_parts_with`]) and optional event-time
    /// lateness: when set, each shard worker gates its pre-routed rows
    /// behind the router's merged cross-shard frontier, so bounded
    /// disorder up to the lateness is absorbed exactly and later rows are
    /// dropped and counted.
    pub fn sharded_with_pipeline(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
        pipeline_depth: usize,
        lateness: Option<u64>,
    ) -> Result<ShardedExecutor, CompileError> {
        Self::sharded_with_routing(
            catalog,
            workload,
            plan,
            n_shards,
            batch_size,
            pipeline_depth,
            lateness,
            1,
        )
    }

    /// [`SpassLike::sharded_with_pipeline`] with an explicit routing-plane
    /// size: the deduplicated scopes are cost-partitioned across `routers`
    /// router threads ([`split_router_plane`]); `routers > 1` requires a
    /// pipelined ingest stage (`pipeline_depth >= 1`).
    #[allow(clippy::too_many_arguments)]
    pub fn sharded_with_routing(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
        pipeline_depth: usize,
        lateness: Option<u64>,
        routers: usize,
    ) -> Result<ShardedExecutor, CompileError> {
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        // one routing scope per signature partition, in the same order the
        // sequential kernel builds them — then deduplicated, with the
        // worker side fanning each distinct scope's selection out to all
        // subscribing partitions
        let scopes = signature_partitions(workload)
            .iter()
            .map(|qs| ScopeFilter::build(catalog, qs))
            .collect::<Result<Vec<_>, _>>()?;
        let (scopes, subscribers) = dedup_scopes(scopes);
        let plane = split_router_plane(scopes, n_shards, SplitConfig::default(), routers);
        let shards = (0..n_shards)
            .map(|_| {
                SpassLike::new(catalog, workload, plan).map(|s| {
                    Box::new(ScopeFanShard {
                        inner: s,
                        subscribers: subscribers.clone(),
                        gate: lateness.map(Reorder::new),
                    }) as Box<dyn ShardProcessor>
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedExecutor::from_parts_multi(
            plane,
            shards,
            batch_size,
            pipeline_depth,
        ))
    }

    /// Stateful dispatch of one deduplicated routing scope's pre-routed
    /// rows to subscribing signature partition `pi` (the sharded fan-out
    /// path).
    fn process_scope_rows(&mut self, pi: usize, batch: &EventBatch, rows: &[u32]) {
        match &mut self.kernel {
            Kernel::Count(ps) => ps[pi].process_rows(batch, rows, &mut self.results),
            Kernel::Stats(ps) => ps[pi].process_rows(batch, rows, &mut self.results),
        }
    }

    /// Row form of [`SpassLike::process_scope_rows`] — the release path of
    /// the sharded event-time gate, which re-dispatches buffered rows one
    /// at a time.
    fn process_scope_row(&mut self, pi: usize, ty: EventTypeId, time: Timestamp, attrs: &[Value]) {
        match &mut self.kernel {
            Kernel::Count(ps) => ps[pi].process_row(ty, time, attrs, true, &mut self.results),
            Kernel::Stats(ps) => ps[pi].process_row(ty, time, attrs, true, &mut self.results),
        }
    }

    /// Process one event. With an event-time gate the row is admitted (or
    /// dropped as late) and the watermark advances; without one the
    /// historical arrival-order contract applies.
    pub fn process(&mut self, e: &Event) {
        if let Some(gate) = &mut self.reorder {
            gate.admit(e.ty, e.time, &e.attrs, 0, false, false);
            self.advance_watermark(e.time);
            return;
        }
        debug_assert!(e.time >= self.last_time, "events must be time-ordered");
        self.last_time = e.time;
        self.dispatch_row(e.ty, e.time, &e.attrs, false);
    }

    /// Process a time-ordered columnar batch: each signature partition
    /// runs its stateless scan + stateful dispatch over the whole batch
    /// while its state is hot. No row-form event is materialized. With an
    /// event-time gate, rows are admitted raw and the watermark advances
    /// to the batch's maximum timestamp afterwards.
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        if let Some(gate) = &mut self.reorder {
            for row in 0..batch.len() {
                gate.admit(
                    batch.ty(row),
                    batch.time(row),
                    batch.attrs(row),
                    0,
                    false,
                    false,
                );
            }
            if let Some(max) = batch.max_time() {
                self.advance_watermark(max);
            }
            return;
        }
        if let Some(&t) = batch.times().last() {
            debug_assert!(t >= self.last_time, "batches must be time-ordered");
            self.last_time = t;
        }
        match &mut self.kernel {
            Kernel::Count(ps) => {
                for p in ps {
                    p.process_columnar(batch, &mut self.results);
                }
            }
            Kernel::Stats(ps) => {
                for p in ps {
                    p.process_columnar(batch, &mut self.results);
                }
            }
        }
    }

    /// Drain a stream.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        while let Some(e) = stream.next_event() {
            self.process(&e);
        }
        self
    }

    /// Pre-size the result store for about `additional` further results
    /// per query (capacity planning for allocation-free steady-state
    /// emission).
    pub fn reserve_results(&mut self, additional: usize) {
        match &self.kernel {
            Kernel::Count(ps) => {
                for q in ps.iter().flat_map(|p| &p.queries) {
                    self.results.reserve(q.id, additional);
                }
            }
            Kernel::Stats(ps) => {
                for q in ps.iter().flat_map(|p| &p.queries) {
                    self.results.reserve(q.id, additional);
                }
            }
        }
    }

    /// Flush and return all results.
    pub fn finish(mut self) -> ExecutorResults {
        self.flush_pending();
        match &mut self.kernel {
            Kernel::Count(ps) => {
                for p in ps {
                    p.finish(&mut self.results);
                }
            }
            Kernel::Stats(ps) => {
                for p in ps {
                    p.finish(&mut self.results);
                }
            }
        }
        self.results
    }

    /// Segment matches plus joined sequences constructed so far.
    pub fn sequences_constructed(&self) -> u64 {
        match &self.kernel {
            Kernel::Count(ps) => ps.iter().map(|p| p.sequences_constructed).sum(),
            Kernel::Stats(ps) => ps.iter().map(|p| p.sequences_constructed).sum(),
        }
    }

    /// Materialized matches + buffered events (memory proxy).
    pub fn materialized_matches(&self) -> usize {
        match &self.kernel {
            Kernel::Count(ps) => ps.iter().map(Partition::materialized_matches).sum(),
            Kernel::Stats(ps) => ps.iter().map(Partition::materialized_matches).sum(),
        }
    }

    /// Rows that survived the stateless scans, summed over signature
    /// partitions — comparable to the online engines' matched counts.
    pub fn events_matched(&self) -> u64 {
        match &self.kernel {
            Kernel::Count(ps) => ps.iter().map(|p| p.events_matched).sum(),
            Kernel::Stats(ps) => ps.iter().map(|p| p.events_matched).sum(),
        }
    }

    /// Per-partition `(rows_scanned, rows_selected)` of the columnar
    /// pre-pass, in partition order.
    pub fn scan_stats(&self) -> Vec<(u64, u64)> {
        match &self.kernel {
            Kernel::Count(ps) => ps
                .iter()
                .map(|p| (p.rows_scanned, p.rows_selected))
                .collect(),
            Kernel::Stats(ps) => ps
                .iter()
                .map(|p| (p.rows_scanned, p.rows_selected))
                .collect(),
        }
    }
}

impl BatchProcessor for SpassLike {
    fn process_event(&mut self, e: &Event) {
        self.process(e);
    }

    fn process_columnar(&mut self, batch: &EventBatch) {
        SpassLike::process_columnar(self, batch);
    }

    fn set_lateness(&mut self, lateness_ms: u64) {
        SpassLike::set_lateness(self, lateness_ms);
    }

    fn late_rows_dropped(&self) -> u64 {
        SpassLike::late_rows_dropped(self)
    }

    fn events_matched(&self) -> u64 {
        SpassLike::events_matched(self)
    }

    fn scan_stats(&self) -> Vec<(u64, u64)> {
        SpassLike::scan_stats(self)
    }

    fn state_size(&self) -> usize {
        self.materialized_matches()
    }

    fn finish(mut self: Box<Self>) -> (ExecutorResults, u64) {
        // drain the gate first so the matched count includes released rows
        self.flush_pending();
        let matched = SpassLike::events_matched(&self);
        ((*self).finish(), matched)
    }
}

/// The shard worker of [`SpassLike::sharded`]: `rows.per_part` is
/// parallel to the router's *distinct* (deduplicated) routing scopes, and
/// each scope's row selection is dispatched to every subscribing
/// signature partition — the worker-side half of routing each scope once
/// per batch. The baseline never hosts split groups, so replica lists and
/// split notices are always empty here.
struct ScopeFanShard {
    inner: SpassLike,
    /// Per distinct scope: the signature-partition indexes subscribing to
    /// it.
    subscribers: Vec<Vec<usize>>,
    /// Event-time gate over the pre-routed rows: admission records the
    /// scope in [`sharon_executor::PendingRow::scope`], release fans the
    /// row back out to the scope's subscribers. `None` keeps the
    /// arrival-order contract.
    gate: Option<Reorder>,
}

impl ScopeFanShard {
    /// Dispatch every gate-released row to its scope's subscribers.
    fn release_ready(&mut self) {
        while let Some(row) = self.gate.as_mut().and_then(Reorder::pop_ready) {
            for &pi in &self.subscribers[row.scope as usize] {
                self.inner
                    .process_scope_row(pi, row.ty, row.time, &row.attrs);
            }
            if let Some(gate) = &mut self.gate {
                gate.recycle(row);
            }
        }
    }
}

impl ShardProcessor for ScopeFanShard {
    fn process_routed(&mut self, batch: &EventBatch, rows: &RoutedRows) {
        debug_assert!(
            rows.splits.is_empty() && rows.state_rows.iter().all(Vec::is_empty),
            "baseline scopes never split groups"
        );
        if let Some(gate) = &mut self.gate {
            // event-time mode: buffer each scope's rows behind the
            // router's merged frontier and release in event-time order
            for (scope, list) in rows.per_part.iter().enumerate() {
                for &row in list {
                    let row = row as usize;
                    gate.admit(
                        batch.ty(row),
                        batch.time(row),
                        batch.attrs(row),
                        scope as u32,
                        true,
                        false,
                    );
                }
            }
            gate.advance(rows.frontier);
            self.release_ready();
            return;
        }
        for (scope, list) in rows.per_part.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            for &pi in &self.subscribers[scope] {
                self.inner.process_scope_rows(pi, batch, list);
            }
        }
    }

    fn events_matched(&self) -> u64 {
        SpassLike::events_matched(&self.inner)
    }

    fn finish(mut self: Box<Self>) -> ShardReport {
        if let Some(gate) = &mut self.gate {
            gate.open();
        }
        self.release_ready();
        let state_size = self.inner.materialized_matches();
        let events_matched = SpassLike::events_matched(&self.inner);
        ShardReport {
            results: self.inner.finish(),
            events_matched,
            state_size,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_executor::Executor;
    use sharon_query::{parse_workload, Pattern, PlanCandidate};

    fn ev(ty: EventTypeId, t: u64) -> Event {
        Event::new(ty, Timestamp(t))
    }

    fn traffic_pair() -> (Catalog, Workload, SharingPlan) {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(X, A, B) WITHIN 20 ms SLIDE 5 ms",
                "RETURN COUNT(*) PATTERN SEQ(Y, A, B, Z) WITHIN 20 ms SLIDE 5 ms",
            ],
        )
        .unwrap();
        let ab = Pattern::from_names(&mut c, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        (c, w, plan)
    }

    #[test]
    fn matches_online_executor() {
        let (c, w, plan) = traffic_pair();
        let x = c.lookup("X").unwrap();
        let y = c.lookup("Y").unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let z = c.lookup("Z").unwrap();
        let events = vec![
            ev(x, 1),
            ev(y, 2),
            ev(a, 3),
            ev(b, 4),
            ev(a, 5),
            ev(b, 6),
            ev(z, 7),
            ev(x, 9),
            ev(a, 10),
            ev(b, 12),
            ev(z, 14),
        ];
        let mut sp = SpassLike::new(&c, &w, &plan).unwrap();
        let mut online = Executor::new(&c, &w, &plan).unwrap();
        for e in &events {
            sp.process(e);
            online.process(e);
        }
        assert!(sp.sequences_constructed() > 0);
        let sr = sp.finish();
        let or = online.finish();
        assert!(
            sr.semantically_eq(&or, 1e-9),
            "spass: {:?} {:?}\nonline: {:?} {:?}",
            sr.of_query_sorted(QueryId(0)),
            sr.of_query_sorted(QueryId(1)),
            or.of_query_sorted(QueryId(0)),
            or.of_query_sorted(QueryId(1)),
        );
        assert!(!sr.is_empty());
    }

    #[test]
    fn shared_construction_counts_segment_matches_once() {
        let (c, w, plan) = traffic_pair();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut sp = SpassLike::new(&c, &w, &plan).unwrap();
        // two (A,B) matches, no prefixes: shared segment constructs 2
        // matches once; no query completes (prefixes missing)
        for e in [ev(a, 1), ev(b, 2), ev(a, 3), ev(b, 4)] {
            sp.process(&e);
        }
        // (a1,b2), (a1,b4), (a3,b4) = 3 shared matches
        assert_eq!(sp.sequences_constructed(), 3);
        assert!(
            sp.materialized_matches() >= 3,
            "match sets are materialized"
        );
        let r = sp.finish();
        assert!(r.is_empty());
    }

    #[test]
    fn non_shared_plan_equals_flink_like() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 10 ms SLIDE 2 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let cc = c.lookup("C").unwrap();
        let events = vec![ev(a, 1), ev(b, 2), ev(cc, 3), ev(b, 4), ev(cc, 5)];
        let mut sp = SpassLike::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        let mut fl = crate::flink_like::FlinkLike::new(&c, &w).unwrap();
        for e in &events {
            sp.process(e);
            fl.process(e);
        }
        let sr = sp.finish();
        let fr = fl.finish();
        assert!(sr.semantically_eq(&fr, 1e-9));
    }

    #[test]
    fn columnar_and_sharded_paths_match_per_event() {
        let (c, w, plan) = traffic_pair();
        let names = ["X", "Y", "A", "B", "Z"];
        let events: Vec<Event> = (0..500u64)
            .map(|i| ev(c.lookup(names[(i % 5) as usize]).unwrap(), i))
            .collect();

        let mut per_event = SpassLike::new(&c, &w, &plan).unwrap();
        for e in &events {
            per_event.process(e);
        }
        let want = per_event.finish();
        assert!(!want.is_empty());

        let batch = EventBatch::from_events(&events);
        let mut columnar = SpassLike::new(&c, &w, &plan).unwrap();
        columnar.process_columnar(&batch);
        let got = columnar.finish();
        assert!(got.semantically_eq(&want, 1e-9));

        let mut sharded = SpassLike::sharded(&c, &w, &plan, 3).unwrap();
        sharded.process_columnar(&batch);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }
}
