//! The non-shared two-step baseline ("Flink" in the paper's evaluation).
//!
//! "Flink constructs all event sequences prior [to] their aggregation. It
//! does not share computations among different queries" (Section 8.1).
//! Every query keeps its own event buffers; every END event triggers an
//! explicit enumeration of all sequences it completes, which are then
//! aggregated into the open windows. Latency grows polynomially in the
//! number of events per window — reproducing Figure 13's blow-up.

use crate::common::TypeTable;
use crate::construct::SeqBuffers;
use sharon_executor::agg::{Aggregate, CountCell, OutputKind, StatsCell};
use sharon_executor::compile::CompileError;
use sharon_executor::winvec::WinVec;
use sharon_executor::ExecutorResults;
use sharon_query::{AggFunc, Query, QueryId, Workload};
use sharon_types::{Catalog, Event, EventStream, GroupKey, Timestamp, WindowSpec};
use std::collections::HashMap;

struct GroupState<A> {
    buffers: SeqBuffers,
    acc: WinVec<A>,
}

struct QueryState<A> {
    id: QueryId,
    window: WindowSpec,
    /// positions of each type in the pattern (dense by type id)
    positions: Vec<Vec<usize>>,
    table: TypeTable,
    output: OutputKind,
    pattern_len: usize,
    groups: HashMap<GroupKey, GroupState<A>>,
    sequences_constructed: u64,
}

impl<A: Aggregate> QueryState<A> {
    fn new(catalog: &Catalog, q: &Query) -> Result<Self, CompileError> {
        let max_ty = q
            .pattern
            .types()
            .iter()
            .map(|t| t.index())
            .max()
            .unwrap_or(0);
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); max_ty + 1];
        for (i, t) in q.pattern.types().iter().enumerate() {
            positions[t.index()].push(i);
        }
        let output = match &q.agg {
            AggFunc::CountStar => OutputKind::Count,
            AggFunc::Count(t) => OutputKind::CountTimes(q.pattern.positions_of(*t).len() as u32),
            AggFunc::Sum(..) => OutputKind::Sum,
            AggFunc::Min(..) => OutputKind::Min,
            AggFunc::Max(..) => OutputKind::Max,
            AggFunc::Avg(t, _) => OutputKind::Avg(q.pattern.positions_of(*t).len() as u32),
        };
        Ok(QueryState {
            id: q.id,
            window: q.window,
            positions,
            table: TypeTable::build(catalog, q)?,
            output,
            pattern_len: q.pattern.len(),
            groups: HashMap::new(),
            sequences_constructed: 0,
        })
    }

    fn process(&mut self, e: &Event, results: &mut ExecutorResults) {
        let Some(positions) = self.positions.get(e.ty.index()).filter(|p| !p.is_empty()) else {
            return;
        };
        if !self.table.passes(e) {
            return;
        }
        let Some(key) = self.table.group_key(e) else {
            return;
        };
        let spec = self.window;
        let slide = spec.slide.millis();
        let group = self
            .groups
            .entry(key.clone())
            .or_insert_with(|| GroupState {
                buffers: SeqBuffers::new(self.pattern_len),
                acc: WinVec::new(),
            });

        // expire buffered events that can no longer share a window with `e`
        if e.time.millis() >= spec.within.millis() {
            group
                .buffers
                .expire(Timestamp(e.time.millis() - spec.within.millis()));
        }
        // close finished windows
        let close_seq = spec.first_start_covering(e.time).millis() / slide;
        for (seq, v) in group.acc.drain_before(close_seq) {
            results.emit(
                self.id,
                key.clone(),
                Timestamp(seq * slide),
                v.output(self.output),
            );
        }

        let c = self.table.contribution(e);
        let min_seq = close_seq;
        // END role first: construct every sequence this event completes
        if positions.contains(&(self.pattern_len - 1)) {
            let acc = &mut group.acc;
            let counted = group
                .buffers
                .enumerate_ending::<A>(e.time, c, |start, cell| {
                    let hi = start.millis() / slide;
                    if hi >= min_seq {
                        acc.add_range(e.time, min_seq, hi, cell);
                    }
                });
            self.sequences_constructed += counted;
        }
        // buffer the event at its non-END positions
        for &pos in positions {
            if pos + 1 < self.pattern_len {
                group.buffers.push(pos, e.time, c);
            }
        }
    }

    fn finish(&mut self, results: &mut ExecutorResults) {
        for (key, group) in self.groups.iter_mut() {
            let slide = self.window.slide.millis();
            for (seq, v) in group.acc.drain_before(u64::MAX) {
                results.emit(
                    self.id,
                    key.clone(),
                    Timestamp(seq * slide),
                    v.output(self.output),
                );
            }
        }
    }

    fn buffered_events(&self) -> usize {
        self.groups
            .values()
            .map(|g| g.buffers.buffered_events())
            .sum()
    }
}

enum Kernel {
    Count(Vec<QueryState<CountCell>>),
    Stats(Vec<QueryState<StatsCell>>),
}

/// The non-shared two-step executor: independent sequence construction and
/// aggregation per query.
pub struct FlinkLike {
    kernel: Kernel,
    results: ExecutorResults,
    last_time: Timestamp,
}

impl FlinkLike {
    /// Compile the workload (each query fully independent).
    pub fn new(catalog: &Catalog, workload: &Workload) -> Result<Self, CompileError> {
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        let kernel = if workload.queries().iter().all(|q| q.agg.is_count_like()) {
            Kernel::Count(
                workload
                    .queries()
                    .iter()
                    .map(|q| QueryState::new(catalog, q))
                    .collect::<Result<_, _>>()?,
            )
        } else {
            Kernel::Stats(
                workload
                    .queries()
                    .iter()
                    .map(|q| QueryState::new(catalog, q))
                    .collect::<Result<_, _>>()?,
            )
        };
        Ok(FlinkLike {
            kernel,
            results: ExecutorResults::new(),
            last_time: Timestamp::ZERO,
        })
    }

    /// Process one event through every query.
    pub fn process(&mut self, e: &Event) {
        debug_assert!(e.time >= self.last_time, "events must be time-ordered");
        self.last_time = e.time;
        match &mut self.kernel {
            Kernel::Count(qs) => {
                for q in qs {
                    q.process(e, &mut self.results);
                }
            }
            Kernel::Stats(qs) => {
                for q in qs {
                    q.process(e, &mut self.results);
                }
            }
        }
    }

    /// Drain a stream.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        while let Some(e) = stream.next_event() {
            self.process(&e);
        }
        self
    }

    /// Flush and return all results.
    pub fn finish(mut self) -> ExecutorResults {
        match &mut self.kernel {
            Kernel::Count(qs) => {
                for q in qs {
                    q.finish(&mut self.results);
                }
            }
            Kernel::Stats(qs) => {
                for q in qs {
                    q.finish(&mut self.results);
                }
            }
        }
        self.results
    }

    /// Total sequences explicitly constructed so far — the two-step cost
    /// the online approaches avoid.
    pub fn sequences_constructed(&self) -> u64 {
        match &self.kernel {
            Kernel::Count(qs) => qs.iter().map(|q| q.sequences_constructed).sum(),
            Kernel::Stats(qs) => qs.iter().map(|q| q.sequences_constructed).sum(),
        }
    }

    /// Raw events currently buffered across all queries (memory proxy).
    pub fn buffered_events(&self) -> usize {
        match &self.kernel {
            Kernel::Count(qs) => qs.iter().map(QueryState::buffered_events).sum(),
            Kernel::Stats(qs) => qs.iter().map(QueryState::buffered_events).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_executor::Executor;
    use sharon_query::parse_workload;
    use sharon_types::EventTypeId;

    fn ev(ty: EventTypeId, t: u64) -> Event {
        Event::new(ty, Timestamp(t))
    }

    #[test]
    fn matches_online_executor_on_figure_6a() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events = vec![ev(a, 1), ev(b, 2), ev(a, 3), ev(b, 4)];

        let mut fl = FlinkLike::new(&c, &w).unwrap();
        let mut online = Executor::non_shared(&c, &w).unwrap();
        for e in &events {
            fl.process(e);
            online.process(e);
        }
        assert_eq!(fl.sequences_constructed(), 3, "constructs all 3 sequences");
        let fr = fl.finish();
        let or = online.finish();
        assert!(fr.semantically_eq(&or, 1e-9));
        assert_eq!(fr.total_count(QueryId(0)), 3);
    }

    #[test]
    fn sliding_windows_match_online() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 6 ms SLIDE 2 ms",
                "RETURN COUNT(*) PATTERN SEQ(B, C) WITHIN 6 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let cc = c.lookup("C").unwrap();
        let events = vec![
            ev(a, 1),
            ev(b, 2),
            ev(cc, 3),
            ev(a, 4),
            ev(b, 5),
            ev(cc, 6),
            ev(b, 8),
            ev(cc, 11),
        ];
        let mut fl = FlinkLike::new(&c, &w).unwrap();
        let mut online = Executor::non_shared(&c, &w).unwrap();
        for e in &events {
            fl.process(e);
            online.process(e);
        }
        let fr = fl.finish();
        let or = online.finish();
        assert!(
            fr.semantically_eq(&or, 1e-9),
            "flink: {:?}\nonline: {:?}",
            fr.of_query_sorted(QueryId(0)),
            or.of_query_sorted(QueryId(0))
        );
        assert!(!fr.is_empty());
    }

    #[test]
    fn buffered_events_grow_with_window() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 100 ms SLIDE 100 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let mut fl = FlinkLike::new(&c, &w).unwrap();
        for t in 0..50 {
            fl.process(&ev(a, t));
        }
        assert_eq!(fl.buffered_events(), 50, "two-step retains raw events");
    }
}
