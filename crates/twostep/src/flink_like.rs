//! The non-shared two-step baseline ("Flink" in the paper's evaluation).
//!
//! "Flink constructs all event sequences prior \[to\] their aggregation. It
//! does not share computations among different queries" (Section 8.1).
//! Every query keeps its own event buffers; every END event triggers an
//! explicit enumeration of all sequences it completes, which are then
//! aggregated into the open windows. Latency grows polynomially in the
//! number of events per window — reproducing Figure 13's blow-up.
//!
//! Like every strategy in the system, the baseline is a
//! [`BatchProcessor`]: [`FlinkLike::process_columnar`] runs, per query, a
//! stateless scan of the batch columns (type routing, predicates,
//! groupability) that selects row indices, then a stateful dispatch that
//! folds only the selected rows — iterating row indices over the shared
//! value buffer, never materializing a row-form [`Event`].
//! [`FlinkLike::sharded`] runs the baseline on the route-once parallel
//! runtime with groups hash-partitioned across worker threads, exactly
//! like the online engines: each worker hosts one baseline instance
//! behind a scope-fanning [`ShardProcessor`] wrapper, and identical
//! routing scopes are deduplicated so the router scans each distinct
//! scope once per batch.

use crate::common::{dedup_scopes, ScopeFilter, TypeTable};
use crate::construct::SeqBuffers;
use sharon_executor::agg::{Aggregate, CountCell, OutputKind, StatsCell};
use sharon_executor::compile::CompileError;
use sharon_executor::winvec::WinVec;
use sharon_executor::{
    split_router_plane, BatchProcessor, ExecutorResults, Reorder, RoutedRows, ScanKernel,
    ShardProcessor, ShardReport, ShardedExecutor, SplitConfig, DEFAULT_BATCH_SIZE,
};
use sharon_query::{AggFunc, Query, QueryId, Workload};
use sharon_types::{
    Catalog, Event, EventBatch, EventStream, EventTypeId, GroupKey, Timestamp, Value, WindowSpec,
};
use std::collections::HashMap;

struct GroupState<A> {
    buffers: SeqBuffers,
    acc: WinVec<A>,
}

struct QueryState<A> {
    id: QueryId,
    window: WindowSpec,
    /// positions of each type in the pattern (dense by type id)
    positions: Vec<Vec<usize>>,
    table: TypeTable,
    output: OutputKind,
    pattern_len: usize,
    groups: HashMap<GroupKey, GroupState<A>>,
    sequences_constructed: u64,
    /// Rows that survived this query's stateless scan (routing,
    /// predicates, grouping) — the same notion of "matched" the online
    /// engines report per partition.
    events_matched: u64,
    /// Reused per-row key storage — the hot path never allocates a fresh
    /// key; cloning happens only on first sight of a group.
    key_scratch: GroupKey,
    vals_scratch: Vec<Value>,
    /// Reused row-selection buffer of the columnar pre-pass.
    sel_scratch: Vec<u32>,
    /// Reused emission buffer for closing windows.
    emit_scratch: Vec<(u64, A)>,
    /// Compiled scan kernel of the columnar pre-pass (`None` = the
    /// scalar interpreter, per [`sharon_executor::scan_mode`]).
    scan: Option<ScanKernel>,
    /// Rows examined by this query's columnar pre-pass.
    rows_scanned: u64,
    /// Rows that survived routing + predicates + groupability.
    rows_selected: u64,
}

impl<A: Aggregate> QueryState<A> {
    fn new(catalog: &Catalog, q: &Query) -> Result<Self, CompileError> {
        let max_ty = q
            .pattern
            .types()
            .iter()
            .map(|t| t.index())
            .max()
            .unwrap_or(0);
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); max_ty + 1];
        for (i, t) in q.pattern.types().iter().enumerate() {
            positions[t.index()].push(i);
        }
        let output = match &q.agg {
            AggFunc::CountStar => OutputKind::Count,
            AggFunc::Count(t) => OutputKind::CountTimes(q.pattern.positions_of(*t).len() as u32),
            AggFunc::Sum(..) => OutputKind::Sum,
            AggFunc::Min(..) => OutputKind::Min,
            AggFunc::Max(..) => OutputKind::Max,
            AggFunc::Avg(t, _) => OutputKind::Avg(q.pattern.positions_of(*t).len() as u32),
        };
        let table = TypeTable::build(catalog, q)?;
        let scan = match sharon_executor::scan_mode() {
            sharon_executor::ScanMode::Vector => Some(ScanKernel::new(
                positions.iter().map(|p| !p.is_empty()).collect(),
                &table.group_attrs,
                &table.predicates,
            )),
            sharon_executor::ScanMode::Scalar => None,
        };
        Ok(QueryState {
            id: q.id,
            window: q.window,
            positions,
            table,
            output,
            pattern_len: q.pattern.len(),
            groups: HashMap::new(),
            sequences_constructed: 0,
            events_matched: 0,
            key_scratch: GroupKey::Global,
            vals_scratch: Vec::new(),
            sel_scratch: Vec::new(),
            emit_scratch: Vec::new(),
            scan,
            rows_scanned: 0,
            rows_selected: 0,
        })
    }

    /// The shared per-row path of the per-event shim, the columnar
    /// dispatch, and the sharded routed dispatch. With `pre_routed`, the
    /// caller (the columnar pre-pass or the batch router) has already
    /// established routing + predicates + groupability, so those checks
    /// are skipped.
    fn process_row(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: &[Value],
        pre_routed: bool,
        results: &mut ExecutorResults,
    ) {
        let Some(positions) = self.positions.get(ty.index()).filter(|p| !p.is_empty()) else {
            debug_assert!(!pre_routed, "router selected an unrouted event type");
            return;
        };
        if !pre_routed && !self.table.passes(ty, attrs) {
            return;
        }
        // group key — written into the reused scratch key; the clone into
        // the map happens exactly once per distinct group
        if !self
            .table
            .read_group_key(ty, attrs, &mut self.vals_scratch, &mut self.key_scratch)
        {
            debug_assert!(!pre_routed, "router selected an ungroupable event");
            return;
        }
        self.events_matched += 1;
        let spec = self.window;
        let slide = spec.slide.millis();
        if !self.groups.contains_key(&self.key_scratch) {
            let buffers = SeqBuffers::new(self.pattern_len);
            self.groups.insert(
                self.key_scratch.clone(),
                GroupState {
                    buffers,
                    acc: WinVec::new(),
                },
            );
        }
        let group = self
            .groups
            .get_mut(&self.key_scratch)
            .expect("group present after insert");

        // expire buffered events that can no longer share a window with
        // the current row
        if time.millis() >= spec.within.millis() {
            group
                .buffers
                .expire(Timestamp(time.millis() - spec.within.millis()));
        }
        // close finished windows (reused emission buffer: no allocation in
        // steady state)
        let close_seq = spec.first_start_covering(time).millis() / slide;
        self.emit_scratch.clear();
        group
            .acc
            .drain_before_into(close_seq, &mut self.emit_scratch);
        for &(seq, v) in self.emit_scratch.iter() {
            results.emit(
                self.id,
                self.key_scratch.clone(),
                Timestamp(seq * slide),
                v.output(self.output),
            );
        }

        let c = self.table.contribution(ty, attrs);
        let min_seq = close_seq;
        // END role first: construct every sequence this row completes
        if positions.contains(&(self.pattern_len - 1)) {
            let acc = &mut group.acc;
            let counted = group.buffers.enumerate_ending::<A>(time, c, |start, cell| {
                let hi = start.millis() / slide;
                if hi >= min_seq {
                    acc.add_range(time, min_seq, hi, cell);
                }
            });
            self.sequences_constructed += counted;
        }
        // buffer the row at its non-END positions
        for &pos in positions {
            if pos + 1 < self.pattern_len {
                group.buffers.push(pos, time, c);
            }
        }
    }

    /// Columnar pipeline over one batch: stateless scan → stateful
    /// dispatch of the selected row indices.
    fn process_columnar(&mut self, batch: &EventBatch, results: &mut ExecutorResults) {
        let mut sel = std::mem::take(&mut self.sel_scratch);
        sel.clear();
        if let Some(kernel) = &mut self.scan {
            kernel.select_into(batch, 0, batch.len(), &mut sel);
        } else {
            for (row, ty) in batch.types().iter().enumerate() {
                if self.positions.get(ty.index()).is_none_or(|p| p.is_empty()) {
                    continue;
                }
                let attrs = batch.attrs(row);
                if !self.table.passes(*ty, attrs) {
                    continue;
                }
                if !self.table.groupable(*ty, attrs) {
                    continue;
                }
                sel.push(row as u32);
            }
        }
        self.rows_scanned += batch.len() as u64;
        self.rows_selected += sel.len() as u64;
        sharon_metrics::record_rows_scanned(batch.len() as u64);
        sharon_metrics::record_rows_selected(sel.len() as u64);
        self.process_rows(batch, &sel, results);
        self.sel_scratch = sel;
    }

    /// Stateful dispatch of pre-selected rows.
    fn process_rows(&mut self, batch: &EventBatch, rows: &[u32], results: &mut ExecutorResults) {
        for &row in rows {
            let row = row as usize;
            self.process_row(
                batch.ty(row),
                batch.time(row),
                batch.attrs(row),
                true,
                results,
            );
        }
    }

    fn finish(&mut self, results: &mut ExecutorResults) {
        for (key, group) in self.groups.iter_mut() {
            let slide = self.window.slide.millis();
            for (seq, v) in group.acc.drain_before(u64::MAX) {
                results.emit(
                    self.id,
                    key.clone(),
                    Timestamp(seq * slide),
                    v.output(self.output),
                );
            }
        }
    }

    fn buffered_events(&self) -> usize {
        self.groups
            .values()
            .map(|g| g.buffers.buffered_events())
            .sum()
    }
}

enum Kernel {
    Count(Vec<QueryState<CountCell>>),
    Stats(Vec<QueryState<StatsCell>>),
}

/// The non-shared two-step executor: independent sequence construction and
/// aggregation per query.
pub struct FlinkLike {
    kernel: Kernel,
    results: ExecutorResults,
    last_time: Timestamp,
    /// Event-time reorder gate (see [`Reorder`]); `None` keeps the
    /// historical arrival-order contract.
    reorder: Option<Reorder>,
}

impl FlinkLike {
    /// Compile the workload (each query fully independent).
    pub fn new(catalog: &Catalog, workload: &Workload) -> Result<Self, CompileError> {
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        let kernel = if workload.queries().iter().all(|q| q.agg.is_count_like()) {
            Kernel::Count(
                workload
                    .queries()
                    .iter()
                    .map(|q| QueryState::new(catalog, q))
                    .collect::<Result<_, _>>()?,
            )
        } else {
            Kernel::Stats(
                workload
                    .queries()
                    .iter()
                    .map(|q| QueryState::new(catalog, q))
                    .collect::<Result<_, _>>()?,
            )
        };
        Ok(FlinkLike {
            kernel,
            results: ExecutorResults::new(),
            last_time: Timestamp::ZERO,
            reorder: None,
        })
    }

    /// Enable event-time processing: input may carry bounded disorder,
    /// rows buffer behind the watermark `max_time_seen − lateness_ms` and
    /// release in event-time order; rows behind the watermark are dropped
    /// and counted. Must be called before any ingestion.
    pub fn set_lateness(&mut self, lateness_ms: u64) {
        self.reorder = Some(Reorder::new(lateness_ms));
    }

    /// Late rows dropped by the event-time gate (0 when no gate).
    pub fn late_rows_dropped(&self) -> u64 {
        self.reorder.as_ref().map_or(0, Reorder::late_rows_dropped)
    }

    /// Dispatch one in-order row to every query (the release half of the
    /// gated paths; `pre_routed` as recorded at admission).
    fn dispatch_row(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: &[Value],
        pre_routed: bool,
    ) {
        match &mut self.kernel {
            Kernel::Count(qs) => {
                for q in qs {
                    q.process_row(ty, time, attrs, pre_routed, &mut self.results);
                }
            }
            Kernel::Stats(qs) => {
                for q in qs {
                    q.process_row(ty, time, attrs, pre_routed, &mut self.results);
                }
            }
        }
    }

    /// Advance the gate's watermark and dispatch every released row.
    fn advance_watermark(&mut self, frontier: Timestamp) {
        let Some(gate) = &mut self.reorder else {
            return;
        };
        gate.advance(frontier);
        self.release_ready();
    }

    fn release_ready(&mut self) {
        while let Some(row) = self.reorder.as_mut().and_then(Reorder::pop_ready) {
            self.dispatch_row(row.ty, row.time, &row.attrs, row.pre_routed);
            if let Some(gate) = &mut self.reorder {
                gate.recycle(row);
            }
        }
    }

    /// End-of-stream: open the gate and release everything still buffered.
    fn flush_pending(&mut self) {
        let Some(gate) = &mut self.reorder else {
            return;
        };
        gate.open();
        self.release_ready();
    }

    /// Run the baseline on the sharded parallel runtime: the batch router
    /// fans each query's rows out by group hash, one full [`FlinkLike`]
    /// instance per worker consumes only the rows it owns. Results are
    /// identical to the sequential baseline — sharding is a pure work
    /// partition here too.
    ///
    /// Routing scopes are **deduplicated**: queries whose pattern types,
    /// predicates, and `GROUP BY` clauses coincide (a `ScopeKey` match)
    /// share one routing scope, so the router scans the batch once
    /// per *distinct* scope — not once per query — and each worker fans
    /// the shared row selection out to every subscribing query. This is
    /// what keeps the routing stage from becoming the serial bottleneck
    /// on many-query workloads (the shape the paper's Flink baseline
    /// degrades on: per-query work where shared work would do).
    pub fn sharded(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
    ) -> Result<ShardedExecutor, CompileError> {
        Self::sharded_with_batch_size(catalog, workload, n_shards, DEFAULT_BATCH_SIZE)
    }

    /// [`FlinkLike::sharded`] with an explicit flush threshold.
    pub fn sharded_with_batch_size(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
        batch_size: usize,
    ) -> Result<ShardedExecutor, CompileError> {
        Self::sharded_with_pipeline(
            catalog,
            workload,
            n_shards,
            batch_size,
            sharon_executor::default_pipeline_depth(),
            None,
        )
    }

    /// [`FlinkLike::sharded_with_batch_size`] with an explicit ingest
    /// pipeline depth (`0` = in-line routing; see
    /// [`ShardedExecutor::from_parts_with`]) and optional event-time
    /// lateness: when set, each shard worker gates its pre-routed rows
    /// behind the router's merged cross-shard frontier, so bounded
    /// disorder up to the lateness is absorbed exactly and later rows are
    /// dropped and counted.
    pub fn sharded_with_pipeline(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
        batch_size: usize,
        pipeline_depth: usize,
        lateness: Option<u64>,
    ) -> Result<ShardedExecutor, CompileError> {
        Self::sharded_with_routing(
            catalog,
            workload,
            n_shards,
            batch_size,
            pipeline_depth,
            lateness,
            1,
        )
    }

    /// [`FlinkLike::sharded_with_pipeline`] with an explicit routing-plane
    /// size: the deduplicated scopes are cost-partitioned across `routers`
    /// router threads ([`split_router_plane`]); `routers > 1` requires a
    /// pipelined ingest stage (`pipeline_depth >= 1`).
    #[allow(clippy::too_many_arguments)]
    pub fn sharded_with_routing(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
        batch_size: usize,
        pipeline_depth: usize,
        lateness: Option<u64>,
        routers: usize,
    ) -> Result<ShardedExecutor, CompileError> {
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        // one routing scope per query, deduplicated: identical scopes are
        // scanned once and fanned out to all subscribing queries on the
        // worker side
        let scopes = workload
            .queries()
            .iter()
            .map(|q| ScopeFilter::build(catalog, &[q]))
            .collect::<Result<Vec<_>, _>>()?;
        let (scopes, subscribers) = dedup_scopes(scopes);
        let plane = split_router_plane(scopes, n_shards, SplitConfig::default(), routers);
        let shards = (0..n_shards)
            .map(|_| {
                FlinkLike::new(catalog, workload).map(|f| {
                    Box::new(ScopeFanShard {
                        inner: f,
                        subscribers: subscribers.clone(),
                        gate: lateness.map(Reorder::new),
                    }) as Box<dyn ShardProcessor>
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedExecutor::from_parts_multi(
            plane,
            shards,
            batch_size,
            pipeline_depth,
        ))
    }

    /// Stateful dispatch of one deduplicated routing scope's pre-routed
    /// rows to subscribing query `qi` (the sharded fan-out path).
    fn process_scope_rows(&mut self, qi: usize, batch: &EventBatch, rows: &[u32]) {
        match &mut self.kernel {
            Kernel::Count(qs) => qs[qi].process_rows(batch, rows, &mut self.results),
            Kernel::Stats(qs) => qs[qi].process_rows(batch, rows, &mut self.results),
        }
    }

    /// Row form of [`FlinkLike::process_scope_rows`] — the release path of
    /// the sharded event-time gate, which re-dispatches buffered rows one
    /// at a time.
    fn process_scope_row(&mut self, qi: usize, ty: EventTypeId, time: Timestamp, attrs: &[Value]) {
        match &mut self.kernel {
            Kernel::Count(qs) => qs[qi].process_row(ty, time, attrs, true, &mut self.results),
            Kernel::Stats(qs) => qs[qi].process_row(ty, time, attrs, true, &mut self.results),
        }
    }

    /// Process one event through every query. With an event-time gate the
    /// row is admitted (or dropped as late) and the watermark advances;
    /// without one the historical arrival-order contract applies.
    pub fn process(&mut self, e: &Event) {
        if let Some(gate) = &mut self.reorder {
            gate.admit(e.ty, e.time, &e.attrs, 0, false, false);
            self.advance_watermark(e.time);
            return;
        }
        debug_assert!(e.time >= self.last_time, "events must be time-ordered");
        self.last_time = e.time;
        self.dispatch_row(e.ty, e.time, &e.attrs, false);
    }

    /// Process a time-ordered columnar batch: each query runs its
    /// stateless scan + stateful dispatch over the whole batch while its
    /// state is hot. No row-form event is materialized. With an event-time
    /// gate, rows are admitted raw and the watermark advances to the
    /// batch's maximum timestamp afterwards — released rows run the same
    /// per-row scan the per-event path uses.
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        if let Some(gate) = &mut self.reorder {
            for row in 0..batch.len() {
                gate.admit(
                    batch.ty(row),
                    batch.time(row),
                    batch.attrs(row),
                    0,
                    false,
                    false,
                );
            }
            if let Some(max) = batch.max_time() {
                self.advance_watermark(max);
            }
            return;
        }
        if let Some(&t) = batch.times().last() {
            debug_assert!(t >= self.last_time, "batches must be time-ordered");
            self.last_time = t;
        }
        match &mut self.kernel {
            Kernel::Count(qs) => {
                for q in qs {
                    q.process_columnar(batch, &mut self.results);
                }
            }
            Kernel::Stats(qs) => {
                for q in qs {
                    q.process_columnar(batch, &mut self.results);
                }
            }
        }
    }

    /// Drain a stream.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        while let Some(e) = stream.next_event() {
            self.process(&e);
        }
        self
    }

    /// Pre-size the result store for about `additional` further results
    /// per query (capacity planning for allocation-free steady-state
    /// emission).
    pub fn reserve_results(&mut self, additional: usize) {
        match &self.kernel {
            Kernel::Count(qs) => {
                for q in qs {
                    self.results.reserve(q.id, additional);
                }
            }
            Kernel::Stats(qs) => {
                for q in qs {
                    self.results.reserve(q.id, additional);
                }
            }
        }
    }

    /// Flush and return all results.
    pub fn finish(mut self) -> ExecutorResults {
        self.flush_pending();
        match &mut self.kernel {
            Kernel::Count(qs) => {
                for q in qs {
                    q.finish(&mut self.results);
                }
            }
            Kernel::Stats(qs) => {
                for q in qs {
                    q.finish(&mut self.results);
                }
            }
        }
        self.results
    }

    /// Total sequences explicitly constructed so far — the two-step cost
    /// the online approaches avoid.
    pub fn sequences_constructed(&self) -> u64 {
        match &self.kernel {
            Kernel::Count(qs) => qs.iter().map(|q| q.sequences_constructed).sum(),
            Kernel::Stats(qs) => qs.iter().map(|q| q.sequences_constructed).sum(),
        }
    }

    /// Rows that survived the stateless scans, summed over queries —
    /// comparable to the online engines' per-partition matched counts.
    pub fn events_matched(&self) -> u64 {
        match &self.kernel {
            Kernel::Count(qs) => qs.iter().map(|q| q.events_matched).sum(),
            Kernel::Stats(qs) => qs.iter().map(|q| q.events_matched).sum(),
        }
    }

    /// Per-query `(rows_scanned, rows_selected)` of the columnar
    /// pre-pass, in query order.
    pub fn scan_stats(&self) -> Vec<(u64, u64)> {
        match &self.kernel {
            Kernel::Count(qs) => qs
                .iter()
                .map(|q| (q.rows_scanned, q.rows_selected))
                .collect(),
            Kernel::Stats(qs) => qs
                .iter()
                .map(|q| (q.rows_scanned, q.rows_selected))
                .collect(),
        }
    }

    /// Raw events currently buffered across all queries (memory proxy).
    pub fn buffered_events(&self) -> usize {
        match &self.kernel {
            Kernel::Count(qs) => qs.iter().map(QueryState::buffered_events).sum(),
            Kernel::Stats(qs) => qs.iter().map(QueryState::buffered_events).sum(),
        }
    }
}

impl BatchProcessor for FlinkLike {
    fn process_event(&mut self, e: &Event) {
        self.process(e);
    }

    fn process_columnar(&mut self, batch: &EventBatch) {
        FlinkLike::process_columnar(self, batch);
    }

    fn set_lateness(&mut self, lateness_ms: u64) {
        FlinkLike::set_lateness(self, lateness_ms);
    }

    fn late_rows_dropped(&self) -> u64 {
        FlinkLike::late_rows_dropped(self)
    }

    fn events_matched(&self) -> u64 {
        FlinkLike::events_matched(self)
    }

    fn scan_stats(&self) -> Vec<(u64, u64)> {
        FlinkLike::scan_stats(self)
    }

    fn state_size(&self) -> usize {
        self.buffered_events()
    }

    fn finish(mut self: Box<Self>) -> (ExecutorResults, u64) {
        // drain the gate first so the matched count includes released rows
        self.flush_pending();
        let matched = FlinkLike::events_matched(&self);
        ((*self).finish(), matched)
    }
}

/// The shard worker of [`FlinkLike::sharded`]: `rows.per_part` is
/// parallel to the router's *distinct* (deduplicated) routing scopes, and
/// each scope's row selection is dispatched to every subscribing query —
/// the worker-side half of routing each scope once per batch. The
/// baseline never hosts split groups, so replica lists and split notices
/// are always empty here.
struct ScopeFanShard {
    inner: FlinkLike,
    /// Per distinct scope: the query indexes subscribing to it.
    subscribers: Vec<Vec<usize>>,
    /// Event-time gate over the pre-routed rows: admission records the
    /// scope in [`sharon_executor::PendingRow::scope`], release fans the
    /// row back out to the scope's subscribers. `None` keeps the
    /// arrival-order contract.
    gate: Option<Reorder>,
}

impl ScopeFanShard {
    /// Dispatch every gate-released row to its scope's subscribers.
    fn release_ready(&mut self) {
        while let Some(row) = self.gate.as_mut().and_then(Reorder::pop_ready) {
            for &qi in &self.subscribers[row.scope as usize] {
                self.inner
                    .process_scope_row(qi, row.ty, row.time, &row.attrs);
            }
            if let Some(gate) = &mut self.gate {
                gate.recycle(row);
            }
        }
    }
}

impl ShardProcessor for ScopeFanShard {
    fn process_routed(&mut self, batch: &EventBatch, rows: &RoutedRows) {
        debug_assert!(
            rows.splits.is_empty() && rows.state_rows.iter().all(Vec::is_empty),
            "baseline scopes never split groups"
        );
        if let Some(gate) = &mut self.gate {
            // event-time mode: buffer each scope's rows behind the
            // router's merged frontier and release in event-time order
            for (scope, list) in rows.per_part.iter().enumerate() {
                for &row in list {
                    let row = row as usize;
                    gate.admit(
                        batch.ty(row),
                        batch.time(row),
                        batch.attrs(row),
                        scope as u32,
                        true,
                        false,
                    );
                }
            }
            gate.advance(rows.frontier);
            self.release_ready();
            return;
        }
        for (scope, list) in rows.per_part.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            for &qi in &self.subscribers[scope] {
                self.inner.process_scope_rows(qi, batch, list);
            }
        }
    }

    fn events_matched(&self) -> u64 {
        FlinkLike::events_matched(&self.inner)
    }

    fn finish(mut self: Box<Self>) -> ShardReport {
        if let Some(gate) = &mut self.gate {
            gate.open();
        }
        self.release_ready();
        let state_size = self.inner.buffered_events();
        let events_matched = FlinkLike::events_matched(&self.inner);
        ShardReport {
            results: self.inner.finish(),
            events_matched,
            state_size,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_executor::Executor;
    use sharon_query::parse_workload;

    fn ev(ty: EventTypeId, t: u64) -> Event {
        Event::new(ty, Timestamp(t))
    }

    #[test]
    fn matches_online_executor_on_figure_6a() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events = vec![ev(a, 1), ev(b, 2), ev(a, 3), ev(b, 4)];

        let mut fl = FlinkLike::new(&c, &w).unwrap();
        let mut online = Executor::non_shared(&c, &w).unwrap();
        for e in &events {
            fl.process(e);
            online.process(e);
        }
        assert_eq!(fl.sequences_constructed(), 3, "constructs all 3 sequences");
        let fr = fl.finish();
        let or = online.finish();
        assert!(fr.semantically_eq(&or, 1e-9));
        assert_eq!(fr.total_count(QueryId(0)), 3);
    }

    #[test]
    fn sliding_windows_match_online() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 6 ms SLIDE 2 ms",
                "RETURN COUNT(*) PATTERN SEQ(B, C) WITHIN 6 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let cc = c.lookup("C").unwrap();
        let events = vec![
            ev(a, 1),
            ev(b, 2),
            ev(cc, 3),
            ev(a, 4),
            ev(b, 5),
            ev(cc, 6),
            ev(b, 8),
            ev(cc, 11),
        ];
        let mut fl = FlinkLike::new(&c, &w).unwrap();
        let mut online = Executor::non_shared(&c, &w).unwrap();
        for e in &events {
            fl.process(e);
            online.process(e);
        }
        let fr = fl.finish();
        let or = online.finish();
        assert!(
            fr.semantically_eq(&or, 1e-9),
            "flink: {:?}\nonline: {:?}",
            fr.of_query_sorted(QueryId(0)),
            or.of_query_sorted(QueryId(0))
        );
        assert!(!fr.is_empty());
    }

    #[test]
    fn buffered_events_grow_with_window() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 100 ms SLIDE 100 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let mut fl = FlinkLike::new(&c, &w).unwrap();
        for t in 0..50 {
            fl.process(&ev(a, t));
        }
        assert_eq!(fl.buffered_events(), 50, "two-step retains raw events");
    }

    #[test]
    fn columnar_path_matches_per_event() {
        let mut c = Catalog::new();
        c.register_with_schema("A", sharon_types::Schema::new(["g"]));
        c.register_with_schema("B", sharon_types::Schema::new(["g"]));
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events: Vec<Event> = (0..400u64)
            .map(|i| {
                Event::with_attrs(
                    if i % 2 == 0 { a } else { b },
                    Timestamp(i),
                    vec![Value::Int((i / 2) as i64 % 5)],
                )
            })
            .collect();

        let mut per_event = FlinkLike::new(&c, &w).unwrap();
        for e in &events {
            per_event.process(e);
        }
        let want = per_event.finish();
        assert!(!want.is_empty());

        let batch = EventBatch::from_events(&events);
        let mut columnar = FlinkLike::new(&c, &w).unwrap();
        columnar.process_columnar(&batch);
        let got = columnar.finish();
        assert!(got.semantically_eq(&want, 1e-9));

        // sharded route-once agrees too
        let mut sharded = FlinkLike::sharded(&c, &w, 3).unwrap();
        sharded.process_columnar(&batch);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }

    #[test]
    fn deduplicated_scopes_fan_out_to_every_query() {
        // eight queries sharing one routing scope (same pattern + GROUP
        // BY, different windows): the sharded runtime routes the scope
        // once and every query still gets its full selection — results
        // identical to the sequential baseline, in both routing modes
        let mut c = Catalog::new();
        c.register_with_schema("A", sharon_types::Schema::new(["g"]));
        c.register_with_schema("B", sharon_types::Schema::new(["g"]));
        let sources: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN {} ms SLIDE 2 ms",
                    8 + 2 * i
                )
            })
            .collect();
        let w = parse_workload(&mut c, sources.iter().map(String::as_str)).unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events: Vec<Event> = (0..600u64)
            .map(|i| {
                Event::with_attrs(
                    if i % 2 == 0 { a } else { b },
                    Timestamp(i),
                    vec![Value::Int((i / 2) as i64 % 5)],
                )
            })
            .collect();

        let mut sequential = FlinkLike::new(&c, &w).unwrap();
        for e in &events {
            sequential.process(e);
        }
        let want = sequential.finish();
        assert!(!want.is_empty());

        let batch = EventBatch::from_events(&events);
        for depth in [0usize, 2] {
            let mut sharded =
                FlinkLike::sharded_with_pipeline(&c, &w, 3, 128, depth, None).unwrap();
            sharded.process_columnar(&batch);
            let got = sharded.finish();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "depth {depth}: deduplicated sharded baseline diverges"
            );
            for q in w.ids() {
                assert!(
                    got.total_count(q) > 0,
                    "depth {depth}: query {q} received its fanned-out selection"
                );
            }
        }
    }
}
