//! Explicit event sequence construction.
//!
//! The defining weakness of the two-step approaches is that they "first
//! construct event sequences and then aggregate them. Since the number of
//! event sequences is polynomial in the number of events, event sequence
//! construction is an expensive step" (Section 1). This module is that
//! step: a time-ordered buffer per pattern position and a DFS that
//! *enumerates every sequence* ending at a given END event. No counting
//! shortcuts are taken — that is the point of the baseline.

use sharon_executor::agg::{Aggregate, Contribution};
use sharon_types::Timestamp;
use std::collections::VecDeque;

/// Buffered events for one pattern, one buffer per position.
#[derive(Debug, Clone)]
pub struct SeqBuffers {
    positions: Vec<VecDeque<(Timestamp, Contribution)>>,
}

impl SeqBuffers {
    /// Buffers for a pattern of `len` positions.
    pub fn new(len: usize) -> Self {
        SeqBuffers {
            positions: (0..len).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Number of pattern positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no position holds events.
    pub fn is_empty(&self) -> bool {
        self.positions.iter().all(VecDeque::is_empty)
    }

    /// Total buffered events (memory proxy — the two-step approaches must
    /// retain raw events for the whole window).
    pub fn buffered_events(&self) -> usize {
        self.positions.iter().map(VecDeque::len).sum()
    }

    /// Record an event at position `pos`.
    pub fn push(&mut self, pos: usize, time: Timestamp, c: Contribution) {
        debug_assert!(
            self.positions[pos].back().is_none_or(|(t, _)| *t <= time),
            "events must arrive in timestamp order"
        );
        self.positions[pos].push_back((time, c));
    }

    /// Drop events with `time <= cutoff` from every buffer.
    pub fn expire(&mut self, cutoff: Timestamp) {
        for buf in &mut self.positions {
            while buf.front().is_some_and(|(t, _)| *t <= cutoff) {
                buf.pop_front();
            }
        }
    }

    /// Enumerate every sequence that ends at an END event with timestamp
    /// `end_time` and contribution `end_c`, invoking the callback with the
    /// sequence's START timestamp and its fully built aggregate cell.
    ///
    /// Positions `0 .. len-1` are drawn from the buffers (strictly
    /// increasing timestamps); the END event itself is supplied by the
    /// caller and must not be buffered yet at its END position.
    pub fn enumerate_ending<A: Aggregate>(
        &self,
        end_time: Timestamp,
        end_c: Contribution,
        mut on_sequence: impl FnMut(Timestamp, A),
    ) -> u64 {
        let l = self.positions.len();
        if l == 1 {
            on_sequence(end_time, A::unit(end_c));
            return 1;
        }
        // DFS over positions 0..l-1 with strictly increasing times,
        // bounded above by end_time; depth = pattern length
        let mut constructed = 0u64;
        #[allow(clippy::too_many_arguments)]
        fn rec<A: Aggregate>(
            bufs: &[VecDeque<(Timestamp, Contribution)>],
            pos: usize,
            after: Timestamp,
            before: Timestamp,
            cell: A,
            start: Timestamp,
            end_c: Contribution,
            constructed: &mut u64,
            on_sequence: &mut impl FnMut(Timestamp, A),
        ) {
            if pos == bufs.len() {
                *constructed += 1;
                on_sequence(start, cell.extend(end_c));
                return;
            }
            for &(t, c) in bufs[pos].iter() {
                if t >= before {
                    break;
                }
                if pos > 0 && t <= after {
                    continue;
                }
                let next_cell = if pos == 0 { A::unit(c) } else { cell.extend(c) };
                let next_start = if pos == 0 { t } else { start };
                rec(
                    bufs,
                    pos + 1,
                    t,
                    before,
                    next_cell,
                    next_start,
                    end_c,
                    constructed,
                    on_sequence,
                );
            }
        }
        rec(
            &self.positions[..l - 1],
            0,
            Timestamp::ZERO,
            end_time,
            A::ZERO,
            Timestamp::ZERO,
            end_c,
            &mut constructed,
            &mut on_sequence,
        );
        constructed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_executor::agg::{CountCell, StatsCell};

    const NONE: Contribution = Contribution::NONE;

    fn collect(bufs: &SeqBuffers, end: u64) -> Vec<(u64, u128)> {
        let mut out = Vec::new();
        bufs.enumerate_ending::<CountCell>(Timestamp(end), NONE, |s, c| {
            out.push((s.millis(), c.0));
        });
        out
    }

    #[test]
    fn pairs() {
        // (A, B): a1 a3; b5 ends sequences (a1,b5), (a3,b5)
        let mut b = SeqBuffers::new(2);
        b.push(0, Timestamp(1), NONE);
        b.push(0, Timestamp(3), NONE);
        assert_eq!(collect(&b, 5), vec![(1, 1), (3, 1)]);
    }

    #[test]
    fn triples_enumerated_one_by_one() {
        // (A,B,C): a1 a2 b3 b4; c5 -> (a1,b3),(a1,b4),(a2,b3),(a2,b4)
        let mut b = SeqBuffers::new(3);
        b.push(0, Timestamp(1), NONE);
        b.push(0, Timestamp(2), NONE);
        b.push(1, Timestamp(3), NONE);
        b.push(1, Timestamp(4), NONE);
        let seqs = collect(&b, 5);
        assert_eq!(seqs.len(), 4, "each sequence constructed explicitly");
        assert_eq!(seqs.iter().filter(|(s, _)| *s == 1).count(), 2);
        let n = b.enumerate_ending::<CountCell>(Timestamp(5), NONE, |_, _| {});
        assert_eq!(n, 4);
    }

    #[test]
    fn strict_time_ordering_within_sequence() {
        // (A,B): a5 buffered; b5 must match nothing
        let mut b = SeqBuffers::new(2);
        b.push(0, Timestamp(5), NONE);
        assert_eq!(collect(&b, 5), vec![]);
        // interleaving position times: (A,B,C) with b2 before a3 is unusable
        let mut b = SeqBuffers::new(3);
        b.push(1, Timestamp(2), NONE);
        b.push(0, Timestamp(3), NONE);
        assert_eq!(collect(&b, 9), vec![]);
    }

    #[test]
    fn length_one_pattern() {
        let b = SeqBuffers::new(1);
        assert_eq!(collect(&b, 7), vec![(7, 1)]);
    }

    #[test]
    fn expiration_drops_old_events() {
        let mut b = SeqBuffers::new(2);
        b.push(0, Timestamp(1), NONE);
        b.push(0, Timestamp(5), NONE);
        b.expire(Timestamp(1));
        assert_eq!(b.buffered_events(), 1);
        assert_eq!(collect(&b, 9), vec![(5, 1)]);
        assert!(!b.is_empty());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn stats_cells_accumulate_along_the_sequence() {
        // SUM over (A,B) both relevant: a1(v=2); end b(v=10) -> sum 12
        let mut b = SeqBuffers::new(2);
        b.push(0, Timestamp(1), Contribution::of(2.0));
        let mut sums = Vec::new();
        b.enumerate_ending::<StatsCell>(Timestamp(3), Contribution::of(10.0), |_, c| {
            sums.push(c.sum);
        });
        assert_eq!(sums, vec![12.0]);
    }
}
