//! Live query churn: attach and detach queries against a running engine.
//!
//! A [`SharonSession`] runs the engine as a long-lived service. Queries
//! come and go at runtime ([`SharonSession::attach`] /
//! [`SharonSession::detach`]) while the stream keeps flowing; results are
//! read per epoch with [`SharonSession::drain_results`] and the session
//! re-optimizes its sharing plan in the background as the workload or the
//! event rates move.
//!
//! ## How an attach lands
//!
//! * **Fast path** — the query's [`QuerySig`] (pattern + aggregate +
//!   sharing signature, ignoring the id) matches a query already hosted:
//!   the new handle aliases the existing evaluation and joins the shared
//!   plan **without recompilation**.
//! * **Sidecar** — a genuinely new query is compiled into a private
//!   sequential sidecar engine that runs alongside the shared plan, so
//!   the attach never stalls the main runtime. The next re-optimization
//!   folds the sidecar into the shared plan.
//!
//! ## Re-optimization and hot swap
//!
//! Re-planning triggers on **churn** (pending attach/detach operations
//! reach [`SessionConfig::churn_threshold`]), on **rate drift** (for
//! [`Strategy::Sharon`], a [`DynamicPlanManager`] re-scores the active
//! plan at every completed rate horizon), or explicitly
//! ([`SharonSession::reoptimize_now`]). A swap happens at a batch
//! boundary and never loses window state: the outgoing engines are not
//! torn down but *retired* — they keep receiving the stream until every
//! window they own has closed, then flush. Ownership is an interval of
//! window-start times: an incarnation born at stream time `B` owns window
//! starts strictly after `B` (all their rows arrive after it was born),
//! and one retired at `B` owns starts up to and including `B`. The same
//! interval filter scopes each handle to the windows that are complete
//! for *it* — the first fully-owned window after its attach point, and
//! only windows closed before its detach point.

use crate::strategy::{strategy_plan, Strategy};
use sharon_executor::{CompileError, Executor, ExecutorResults, ShardedExecutor, ShardedOptions};
use sharon_metrics::{
    record_plan_reoptimizations, record_plan_swaps, record_queries_attached,
    record_queries_detached, record_swap_windows_lost,
};
use sharon_optimizer::{DynamicPlanManager, OptimizerConfig, PlanDecision, RateEstimator, RateMap};
use sharon_query::{Query, QueryId, QuerySig, SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventBatch, EventTypeId, FxHashMap, TimeDelta, Timestamp};

/// Tuning for a [`SharonSession`]'s background re-optimizer.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Pending churn operations (sidecar attaches + shared-plan detaches)
    /// that trigger a re-optimization at the next batch boundary. Treated
    /// as at least 1.
    pub churn_threshold: u32,
    /// Rate-estimation horizon: the window over which per-type event
    /// rates are measured before each drift check.
    pub rate_horizon: TimeDelta,
    /// Relative score-drift threshold that triggers re-optimization under
    /// [`Strategy::Sharon`] (see [`DynamicPlanManager`]).
    pub drift_threshold: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            churn_threshold: 8,
            rate_horizon: TimeDelta::from_secs(1),
            drift_threshold: 0.1,
        }
    }
}

/// A ticket for one attached query.
///
/// Results drained from the session are keyed by
/// [`QueryHandle::query_id`]; the initial workload's queries become
/// handles `0..n` in order, so their result keys match a static run's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryHandle(u32);

impl QueryHandle {
    /// The key this handle's results carry in an [`ExecutorResults`].
    pub fn query_id(self) -> QueryId {
        QueryId(self.0)
    }
}

impl std::fmt::Display for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.query_id())
    }
}

/// One attached query's lifecycle and result scope.
struct HandleSlot {
    /// Index into `SharonSession::sigs`.
    sig: usize,
    /// Exclusive lower bound on owned window starts: the stream frontier
    /// at attach (`None` = attached before any data; owns everything).
    attached_after: Option<Timestamp>,
    /// Stream frontier at detach (`None` = still attached). Only windows
    /// fully closed by this point (`start + within <= detached_at`) are
    /// kept — later windows would be partial relative to a static run.
    detached_at: Option<Timestamp>,
    /// The query's window length in milliseconds (for the detach filter).
    within: u64,
}

impl HandleSlot {
    fn owns(&self, w: Timestamp) -> bool {
        self.attached_after.is_none_or(|a| w > a)
            && self
                .detached_at
                .is_none_or(|d| w.millis() + self.within <= d.millis())
    }
}

/// One distinct query evaluation (shared by aliasing handles).
struct SigSlot {
    sig: QuerySig,
    /// Canonical copy compiled into plans (its id is rewritten per plan).
    query: Query,
    /// Live handles referencing this evaluation; 0 = tombstone awaiting
    /// fold-out at the next re-optimization.
    refs: u32,
}

/// The engine hosting one plan incarnation.
enum Host {
    /// The shared main plan on the sharded runtime.
    Sharded(Box<ShardedExecutor>),
    /// A private sequential sidecar for one freshly attached query.
    Seq(Executor),
}

impl Host {
    fn process_columnar(&mut self, batch: &EventBatch) {
        match self {
            Host::Sharded(ex) => ex.process_columnar(batch),
            Host::Seq(ex) => ex.process_columnar(batch),
        }
    }

    /// Move out every result emitted so far, leaving window state intact.
    fn harvest(&mut self) -> ExecutorResults {
        match self {
            Host::Sharded(ex) => ex
                .harvest_results()
                .unwrap_or_else(|e| panic!("harvesting the shared plan failed: {e}")),
            Host::Seq(ex) => ex.take_results(),
        }
    }

    fn finish(self) -> ExecutorResults {
        match self {
            Host::Sharded(ex) => ex.finish(),
            Host::Seq(ex) => ex.finish(),
        }
    }

    fn state_size(&self) -> usize {
        match self {
            // sharded state lives on the worker threads; not visible here
            Host::Sharded(_) => 0,
            Host::Seq(ex) => ex.cell_count(),
        }
    }
}

/// One compiled plan with its window-start ownership interval.
///
/// Every live incarnation receives the full stream; the interval decides
/// which of its emitted windows are *exact* and therefore settled. An
/// incarnation born at frontier `lo` missed nothing for windows starting
/// strictly after `lo` (rows are time-ordered); one closed at `hi` keeps
/// being fed until `horizon` so every window starting at or before `hi`
/// sees all its rows.
struct Incarnation {
    host: Host,
    /// Maps this incarnation's internal [`QueryId`] index to a sig slot.
    sigs: Vec<usize>,
    /// Exclusive lower ownership bound (`None` = from the beginning).
    lo: Option<Timestamp>,
    /// Inclusive upper ownership bound (`None` = current, still owning).
    hi: Option<Timestamp>,
    /// Retire (finish and settle) once the frontier reaches this.
    horizon: Option<Timestamp>,
}

/// Per-type rate tracking: a full [`DynamicPlanManager`] (drift-driven
/// re-planning) under [`Strategy::Sharon`], a bare [`RateEstimator`]
/// otherwise — Greedy and A-Seq sessions re-plan on churn or explicit
/// request only.
enum Tracker {
    Managed(Box<DynamicPlanManager>),
    Bare(RateEstimator),
}

impl Tracker {
    fn warmed(&self) -> bool {
        match self {
            Tracker::Managed(m) => m.warmed(),
            Tracker::Bare(e) => e.warmed(),
        }
    }

    fn rates(&self) -> &RateMap {
        match self {
            Tracker::Managed(m) => m.rates(),
            Tracker::Bare(e) => e.rates(),
        }
    }
}

/// A long-lived engine service supporting runtime query churn.
///
/// Construct through
/// [`SharonBuilder::session`](crate::SharonBuilder::session). The session
/// always runs the sharded runtime for its shared plan and accepts only
/// the online strategies (Sharon / Greedy / A-Seq); checkpoint, fault,
/// and lateness options are rejected for now (they do not yet compose
/// with plan hot-swaps), and the spill tier applies to the shared plan
/// only (sidecars are short-lived by design).
///
/// Input must be time-ordered, like every Sharon ingest path. All event
/// types must be registered in the catalog before the session starts —
/// the session owns a snapshot of it.
pub struct SharonSession {
    catalog: Catalog,
    strategy: Strategy,
    opt_config: OptimizerConfig,
    cfg: SessionConfig,
    n_shards: usize,
    options: ShardedOptions,
    seed_rates: RateMap,
    tracker: Tracker,
    handles: Vec<HandleSlot>,
    sigs: Vec<SigSlot>,
    /// The shared plan's incarnation (`None` when no query is hosted).
    main: Option<Incarnation>,
    sidecars: Vec<Incarnation>,
    /// Closed incarnations still being fed until their horizon.
    retiring: Vec<Incarnation>,
    /// Results already owned and re-keyed onto handles.
    settled: ExecutorResults,
    /// Largest event time ingested so far.
    frontier: Option<Timestamp>,
    /// Pending churn operations since the last swap.
    churn: u32,
    /// The workload currently compiled into `main`.
    shared: Workload,
    plan: SharingPlan,
    reopt_count: u64,
    swap_count: u64,
}

impl SharonSession {
    /// Start a session hosting `workload` as the initially attached
    /// queries (handles `0..n` in order).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        catalog: Catalog,
        workload: &Workload,
        seed_rates: RateMap,
        strategy: Strategy,
        opt_config: OptimizerConfig,
        n_shards: usize,
        options: ShardedOptions,
        cfg: SessionConfig,
    ) -> Result<SharonSession, CompileError> {
        assert!(
            matches!(
                strategy,
                Strategy::Sharon | Strategy::Greedy | Strategy::ASeq
            ),
            "the {} two-step baseline cannot host a live session \
             (its processors cannot surface results mid-stream)",
            strategy.name()
        );
        assert!(
            options.checkpoint.is_none() && options.fault.is_none() && options.lateness.is_none(),
            "sessions do not yet compose with checkpoint/fault/lateness options"
        );
        let rate_horizon = cfg.rate_horizon;
        let mut session = SharonSession {
            catalog,
            strategy,
            opt_config,
            cfg,
            n_shards,
            options,
            seed_rates,
            tracker: Tracker::Bare(RateEstimator::new(rate_horizon)),
            handles: Vec::new(),
            sigs: Vec::new(),
            main: None,
            sidecars: Vec::new(),
            retiring: Vec::new(),
            settled: ExecutorResults::new(),
            frontier: None,
            churn: 0,
            shared: Workload::new(),
            plan: SharingPlan::non_shared(),
            reopt_count: 0,
            swap_count: 0,
        };
        for q in workload.queries() {
            let sig = QuerySig::of(q);
            let within = q.window.within.millis();
            let slot = match session.sigs.iter().position(|s| s.sig == sig) {
                Some(i) => {
                    session.sigs[i].refs += 1;
                    i
                }
                None => {
                    session.sigs.push(SigSlot {
                        sig,
                        query: q.clone(),
                        refs: 1,
                    });
                    session.sigs.len() - 1
                }
            };
            session.handles.push(HandleSlot {
                sig: slot,
                attached_after: None,
                detached_at: None,
                within,
            });
            record_queries_attached(1);
        }
        let (wl, map) = session.rebuild();
        let (plan, outcome) =
            strategy_plan(&wl, &session.seed_rates, strategy, &session.opt_config);
        if let (Strategy::Sharon, Some(outcome)) = (strategy, &outcome) {
            session.tracker = Tracker::Managed(Box::new(DynamicPlanManager::new(
                session.cfg.rate_horizon,
                session.cfg.drift_threshold,
                session.opt_config.clone(),
                outcome,
            )));
        }
        if !wl.is_empty() {
            let ex = ShardedExecutor::with_options(
                &session.catalog,
                &wl,
                &plan,
                n_shards,
                session.options.clone(),
            )?;
            session.main = Some(Incarnation {
                host: Host::Sharded(Box::new(ex)),
                sigs: map,
                lo: None,
                hi: None,
                horizon: None,
            });
        }
        session.shared = wl;
        session.plan = plan;
        Ok(session)
    }

    /// Attach a query at runtime; results accrue from its first fully
    /// owned window (the first window starting strictly after the attach
    /// point) under the returned handle's [`QueryHandle::query_id`].
    ///
    /// If an equal-signature query is already hosted this is the
    /// **fast path**: the handle aliases the running evaluation with no
    /// compilation at all. Otherwise the query is compiled into a private
    /// **sidecar** engine (the only work on this path — the shared plan
    /// is untouched) which the next re-optimization folds into the shared
    /// plan.
    pub fn attach(&mut self, query: Query) -> Result<QueryHandle, CompileError> {
        let sig = QuerySig::of(&query);
        let within = query.window.within.millis();
        let slot = match self.sigs.iter().position(|s| s.refs > 0 && s.sig == sig) {
            Some(i) => {
                self.sigs[i].refs += 1;
                i
            }
            None => {
                let idx = self.sigs.len();
                self.sigs.push(SigSlot {
                    sig,
                    query: query.clone(),
                    refs: 1,
                });
                let mut wl = Workload::new();
                wl.push(query);
                let ex = Executor::non_shared(&self.catalog, &wl)?;
                self.sidecars.push(Incarnation {
                    host: Host::Seq(ex),
                    sigs: vec![idx],
                    lo: self.frontier,
                    hi: None,
                    horizon: None,
                });
                self.churn += 1;
                idx
            }
        };
        let handle = QueryHandle(self.handles.len() as u32);
        self.handles.push(HandleSlot {
            sig: slot,
            attached_after: self.frontier,
            detached_at: None,
            within,
        });
        record_queries_attached(1);
        Ok(handle)
    }

    /// Detach a query. The handle keeps every window fully closed before
    /// the detach point; its evaluation's state is freed immediately if
    /// it ran in a sidecar, or folded out of the shared plan at the next
    /// re-optimization.
    ///
    /// Panics if the handle was already detached.
    pub fn detach(&mut self, handle: QueryHandle) {
        let slot = &mut self.handles[handle.0 as usize];
        assert!(slot.detached_at.is_none(), "{handle} is already detached");
        slot.detached_at = Some(self.frontier.unwrap_or(Timestamp::ZERO));
        let s = slot.sig;
        self.sigs[s].refs -= 1;
        record_queries_detached(1);
        if self.sigs[s].refs == 0 {
            if let Some(pos) = self
                .sidecars
                .iter()
                .position(|inc| inc.sigs.as_slice() == [s])
            {
                let sidecar = self.sidecars.swap_remove(pos);
                self.settle_finished(sidecar);
            } else {
                // hosted by the shared plan: fold out at the next re-opt
                self.churn += 1;
            }
        }
    }

    /// Process one event (time-ordered).
    pub fn process(&mut self, e: &Event) {
        self.process_batch(std::slice::from_ref(e));
    }

    /// Process a time-ordered batch of row-form events.
    pub fn process_batch(&mut self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        self.process_columnar(&EventBatch::from_events(events));
    }

    /// Process a time-ordered columnar batch, then run the session's
    /// housekeeping at the batch boundary: rate estimation, drift /
    /// churn-triggered re-optimization (with plan hot-swap), and
    /// retirement of incarnations whose owned windows have all closed.
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        if batch.is_empty() {
            return;
        }
        if let Some(main) = &mut self.main {
            main.host.process_columnar(batch);
        }
        for inc in &mut self.sidecars {
            inc.host.process_columnar(batch);
        }
        for inc in &mut self.retiring {
            inc.host.process_columnar(batch);
        }
        let max_t = batch
            .times()
            .iter()
            .copied()
            .max()
            .expect("non-empty batch");
        self.frontier = Some(self.frontier.map_or(max_t, |f| f.max(max_t)));

        // rate estimation over the batch's per-type row counts
        let mut counts: FxHashMap<EventTypeId, u64> = FxHashMap::default();
        for &ty in batch.types() {
            *counts.entry(ty).or_insert(0) += 1;
        }
        let mut drift_plan: Option<SharingPlan> = None;
        match &mut self.tracker {
            Tracker::Managed(m) => {
                if let PlanDecision::Replace(outcome) =
                    m.observe_counts(&self.shared, counts, max_t)
                {
                    drift_plan = Some(outcome.plan);
                }
            }
            Tracker::Bare(e) => {
                e.observe_counts(counts, max_t);
            }
        }
        if let Some(plan) = drift_plan {
            self.reopt_count += 1;
            record_plan_reoptimizations(1);
            if self.churn == 0 {
                // same query set: adopt the manager's re-planned graph
                let (wl, map) = self.rebuild();
                self.swap_to(wl, map, plan);
            } else {
                // fold the pending churn into the same swap
                self.replan_and_swap();
            }
        }
        if self.churn >= self.cfg.churn_threshold.max(1) {
            self.reoptimize_now();
        }
        self.retire_due();
    }

    /// Unconditionally re-run the optimizer over the live query set and
    /// hot-swap the shared plan at this batch boundary (sidecars fold in,
    /// detached queries fold out). Never loses window state: the outgoing
    /// engines retire only after every window they own has closed.
    pub fn reoptimize_now(&mut self) {
        self.reopt_count += 1;
        record_plan_reoptimizations(1);
        self.replan_and_swap();
    }

    /// Move out every result settled so far: windows emitted by their
    /// owning incarnation, re-keyed onto the handles whose lifetime
    /// covers them. Repeated calls return disjoint epochs; the stream may
    /// keep flowing afterwards.
    pub fn drain_results(&mut self) -> ExecutorResults {
        for inc in self
            .main
            .iter_mut()
            .chain(self.sidecars.iter_mut())
            .chain(self.retiring.iter_mut())
        {
            let results = inc.host.harvest();
            settle_into(
                &self.handles,
                &mut self.settled,
                &inc.sigs,
                inc.lo,
                inc.hi,
                &results,
            );
        }
        std::mem::take(&mut self.settled)
    }

    /// Shut the session down: flush every incarnation and return all
    /// remaining results — a final [`SharonSession::drain_results`] over
    /// the flushed engines.
    pub fn finish(mut self) -> ExecutorResults {
        let incarnations: Vec<Incarnation> = self
            .main
            .take()
            .into_iter()
            .chain(self.sidecars.drain(..))
            .chain(self.retiring.drain(..))
            .collect();
        for inc in incarnations {
            self.settle_finished(inc);
        }
        std::mem::take(&mut self.settled)
    }

    /// The sharing plan currently compiled into the shared runtime.
    pub fn plan(&self) -> &SharingPlan {
        &self.plan
    }

    /// Re-optimizations performed (drift-, churn-, and explicitly
    /// triggered) over this session's lifetime.
    pub fn reoptimizations(&self) -> u64 {
        self.reopt_count
    }

    /// Hot swaps of the compiled shared plan performed.
    pub fn plan_swaps(&self) -> u64 {
        self.swap_count
    }

    /// Session-side state proxy: live aggregate cells of the sidecar and
    /// retiring engines hosted in-process (the shared plan's state lives
    /// on its worker threads and reports 0 — see
    /// [`sharon_executor::BatchProcessor::state_size`]).
    pub fn state_size(&self) -> usize {
        self.main.iter().map(|i| i.host.state_size()).sum::<usize>()
            + self
                .sidecars
                .iter()
                .map(|i| i.host.state_size())
                .sum::<usize>()
            + self
                .retiring
                .iter()
                .map(|i| i.host.state_size())
                .sum::<usize>()
    }

    /// Live sidecar engines (queries attached but not yet folded into the
    /// shared plan).
    pub fn sidecar_count(&self) -> usize {
        self.sidecars.len()
    }

    /// Handles currently attached.
    pub fn attached_count(&self) -> usize {
        self.handles
            .iter()
            .filter(|h| h.detached_at.is_none())
            .count()
    }

    /// Total handles ever issued (attached + detached).
    pub fn handle_count(&self) -> u32 {
        self.handles.len() as u32
    }

    /// Whether `handle` is still attached.
    pub fn is_attached(&self, handle: QueryHandle) -> bool {
        self.handles[handle.0 as usize].detached_at.is_none()
    }

    /// The `index`-th handle ever issued (the initial workload's queries
    /// are handles `0..n` in order, then attach order), if it exists.
    pub fn handle(&self, index: u32) -> Option<QueryHandle> {
        (index < self.handles.len() as u32).then_some(QueryHandle(index))
    }

    /// Largest event time ingested so far.
    pub fn frontier(&self) -> Option<Timestamp> {
        self.frontier
    }

    /// The live query set as a [`Workload`] plus the map from its query
    /// indices to sig slots.
    fn rebuild(&self) -> (Workload, Vec<usize>) {
        let mut wl = Workload::new();
        let mut map = Vec::new();
        for (idx, slot) in self.sigs.iter().enumerate() {
            if slot.refs > 0 {
                wl.push(slot.query.clone());
                map.push(idx);
            }
        }
        (wl, map)
    }

    /// Re-plan the live query set under the freshest rates (seed rates
    /// until a full horizon is measured) and hot-swap to it.
    fn replan_and_swap(&mut self) {
        let (wl, map) = self.rebuild();
        let rates = if self.tracker.warmed() {
            self.tracker.rates().clone()
        } else {
            self.seed_rates.clone()
        };
        let plan = if wl.is_empty() {
            SharingPlan::non_shared()
        } else {
            match &mut self.tracker {
                Tracker::Managed(m) => m.reoptimize(&wl, &rates).plan,
                Tracker::Bare(_) => strategy_plan(&wl, &rates, self.strategy, &self.opt_config).0,
            }
        };
        self.swap_to(wl, map, plan);
    }

    /// Hot-swap the shared plan at the current batch boundary: close
    /// every live incarnation at the frontier (they retire once their
    /// owned windows close) and start a fresh main incarnation owning
    /// everything after it.
    fn swap_to(&mut self, workload: Workload, sig_map: Vec<usize>, plan: SharingPlan) {
        let boundary = self.frontier;
        let mut closing: Vec<Incarnation> = self.sidecars.drain(..).collect();
        if let Some(main) = self.main.take() {
            closing.push(main);
        }
        for mut inc in closing {
            match boundary {
                // nothing ingested yet: the incarnation holds no state
                None => self.settle_finished(inc),
                Some(b) => {
                    inc.hi = Some(b);
                    inc.horizon = Some(Timestamp(b.millis() + self.max_within(&inc.sigs)));
                    self.retiring.push(inc);
                }
            }
        }
        if !workload.is_empty() {
            let ex = ShardedExecutor::with_options(
                &self.catalog,
                &workload,
                &plan,
                self.n_shards,
                self.options.clone(),
            )
            .expect("re-optimized sharing plan must compile");
            self.main = Some(Incarnation {
                host: Host::Sharded(Box::new(ex)),
                sigs: sig_map,
                lo: boundary,
                hi: None,
                horizon: None,
            });
        }
        self.shared = workload;
        self.plan = plan;
        self.churn = 0;
        self.swap_count += 1;
        record_plan_swaps(1);
    }

    /// Longest window of the sig slots hosted by an incarnation: rows up
    /// to `hi + max_within` can still land in an owned window.
    fn max_within(&self, sigs: &[usize]) -> u64 {
        sigs.iter()
            .map(|&s| self.sigs[s].query.window.within.millis())
            .max()
            .unwrap_or(0)
    }

    /// Finish retired incarnations whose horizon the frontier has passed:
    /// every window they own has closed, so flushing loses nothing.
    fn retire_due(&mut self) {
        let Some(f) = self.frontier else { return };
        let mut i = 0;
        while i < self.retiring.len() {
            if self.retiring[i].horizon.is_some_and(|h| f >= h) {
                let inc = self.retiring.swap_remove(i);
                self.settle_finished(inc);
            } else {
                i += 1;
            }
        }
    }

    /// Flush an incarnation and settle its owned windows.
    fn settle_finished(&mut self, inc: Incarnation) {
        let Incarnation {
            host, sigs, lo, hi, ..
        } = inc;
        let results = host.finish();
        settle_into(&self.handles, &mut self.settled, &sigs, lo, hi, &results);
    }
}

/// Re-key an incarnation's results onto handles: keep windows inside the
/// incarnation's ownership interval `(lo, hi]`, then emit one copy per
/// handle aliasing the window's sig slot whose lifetime covers it.
fn settle_into(
    handles: &[HandleSlot],
    settled: &mut ExecutorResults,
    sigs: &[usize],
    lo: Option<Timestamp>,
    hi: Option<Timestamp>,
    results: &ExecutorResults,
) {
    for (qid, group, w, value) in results.iter() {
        if lo.is_some_and(|l| w <= l) || hi.is_some_and(|h| w > h) {
            continue;
        }
        let slot = sigs[qid.0 as usize];
        for (h_idx, h) in handles.iter().enumerate() {
            if h.sig == slot && h.owns(w) {
                settled.emit(QueryId(h_idx as u32), group.clone(), w, *value);
            }
        }
    }
}

impl Drop for SharonSession {
    fn drop(&mut self) {
        // abandoning a session with live incarnations discards their
        // unflushed window state; surface that through the metric the
        // equivalence suites assert stays zero
        let live = u64::from(self.main.is_some())
            + self.sidecars.len() as u64
            + self.retiring.len() as u64;
        if live > 0 {
            record_swap_windows_lost(live);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharonBuilder;
    use sharon_query::{parse_query, parse_workload};

    fn session_over(sources: &[&str], extra: &[&str]) -> (SharonSession, Vec<Query>) {
        let mut catalog = Catalog::new();
        let workload = parse_workload(&mut catalog, sources.iter().copied()).unwrap();
        // parse attachable queries first so their types are in the
        // catalog snapshot the session takes
        let attachable: Vec<Query> = extra
            .iter()
            .map(|src| parse_query(&mut catalog, src).unwrap())
            .collect();
        let rates = RateMap::uniform(100.0);
        let session = SharonBuilder::new(&catalog, &workload, &rates)
            .shards(2)
            .pipeline_depth(0)
            .session(SessionConfig::default())
            .unwrap();
        (session, attachable)
    }

    /// Feed an alternating `A, B, A, B, …` stream over `[from_ms, upto_ms)`
    /// (sessions require time-ordered input across calls).
    fn feed(session: &mut SharonSession, catalog_types: &[&str], from_ms: u64, upto_ms: u64) {
        let tys: Vec<_> = catalog_types
            .iter()
            .map(|n| session.catalog.lookup(n).unwrap())
            .collect();
        let mut events = Vec::new();
        let mut t = from_ms;
        while t < upto_ms {
            for &ty in &tys {
                events.push(Event::new(ty, Timestamp(t)));
            }
            t += 500;
        }
        session.process_batch(&events);
    }

    #[test]
    fn alias_attach_takes_the_fast_path() {
        let (mut session, extra) = session_over(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 2 s"],
            &[
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 2 s",
                "RETURN COUNT(*) PATTERN SEQ(B, A) WITHIN 10 s SLIDE 2 s",
            ],
        );
        let [alias, fresh] = extra.try_into().ok().unwrap();
        let h = session.attach(alias).unwrap();
        assert_eq!(session.sidecar_count(), 0, "equal signature must alias");
        assert_eq!(h.query_id(), QueryId(1));
        let h2 = session.attach(fresh).unwrap();
        assert_eq!(session.sidecar_count(), 1, "new signature needs a sidecar");
        assert!(session.is_attached(h2));
        assert_eq!(session.attached_count(), 3);
    }

    #[test]
    fn detach_frees_sidecar_state() {
        let (mut session, extra) = session_over(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 2 s"],
            &["RETURN COUNT(*) PATTERN SEQ(B, A) WITHIN 10 s SLIDE 2 s"],
        );
        feed(&mut session, &["A", "B"], 0, 4_000);
        let h = session.attach(extra.into_iter().next().unwrap()).unwrap();
        feed(&mut session, &["A", "B"], 4_000, 8_000);
        assert!(
            session.state_size() > 0,
            "sidecar must hold live window state"
        );
        session.detach(h);
        assert_eq!(
            session.state_size(),
            0,
            "detach must free the sidecar's state"
        );
        assert!(!session.is_attached(h));
        let _ = session.finish();
    }

    #[test]
    fn explicit_reoptimize_folds_sidecars_and_swaps() {
        let (mut session, extra) = session_over(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 2 s"],
            &["RETURN COUNT(*) PATTERN SEQ(B, A) WITHIN 10 s SLIDE 2 s"],
        );
        feed(&mut session, &["A", "B"], 0, 4_000);
        session.attach(extra.into_iter().next().unwrap()).unwrap();
        assert_eq!(session.sidecar_count(), 1);
        session.reoptimize_now();
        assert_eq!(session.sidecar_count(), 0, "sidecar folded into the plan");
        assert_eq!(session.plan_swaps(), 1);
        assert_eq!(session.reoptimizations(), 1);
        // run well past the horizon so the retired incarnations flush
        feed(&mut session, &["A", "B"], 8_000, 40_000);
        let results = session.finish();
        assert!(!results.is_empty());
    }
}
