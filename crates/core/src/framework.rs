//! The Sharon framework (Section 2.2, Figure 5): static optimizer +
//! runtime executor behind one facade.
//!
//! "Given a workload Q, our Static Optimizer finds an optimal sharing plan
//! at compile time. [...] Based on this plan, our Runtime Executor computes
//! the aggregation results for each shared pattern and then combines these
//! shared aggregations to obtain the final results for each query."

use crate::builder::SharonBuilder;
use crate::strategy::{AnyExecutor, Strategy};
use sharon_executor::{CompileError, Executor, ExecutorResults};
use sharon_optimizer::{OptimizeOutcome, OptimizerConfig, RateMap};
use sharon_query::{SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventBatch, EventStream};

/// The end-to-end Sharon system: optimize once, then execute the stream.
///
/// Construct through [`SharonBuilder`]; the old `new` / `with_strategy` /
/// `with_shards` constructors remain as deprecated shims.
pub struct SharonFramework {
    executor: AnyExecutor,
    outcome: Option<OptimizeOutcome>,
}

impl SharonFramework {
    /// Assemble from a built executor and its optimizer outcome (the
    /// terminal step of [`SharonBuilder::build`]).
    pub(crate) fn from_parts(executor: AnyExecutor, outcome: Option<OptimizeOutcome>) -> Self {
        SharonFramework { executor, outcome }
    }

    /// Deprecated shim for the default build — compile `workload` with
    /// the Sharon optimizer and build the shared runtime executor.
    #[deprecated(since = "0.9.0", note = "use SharonBuilder::new(..).build()")]
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        rates: &RateMap,
    ) -> Result<Self, CompileError> {
        SharonBuilder::new(catalog, workload, rates).build()
    }

    /// Deprecated shim — compile with an explicit execution [`Strategy`]
    /// and optimizer configuration.
    #[deprecated(
        since = "0.9.0",
        note = "use SharonBuilder::new(..).strategy(s).optimizer_config(c).build()"
    )]
    pub fn with_strategy(
        catalog: &Catalog,
        workload: &Workload,
        rates: &RateMap,
        strategy: Strategy,
        config: &OptimizerConfig,
    ) -> Result<Self, CompileError> {
        SharonBuilder::new(catalog, workload, rates)
            .strategy(strategy)
            .optimizer_config(config.clone())
            .build()
    }

    /// Deprecated shim — compile with the Sharon optimizer and run on the
    /// sharded parallel runtime with `n_shards` worker threads at the
    /// default ingest pipeline depth (`SHARON_PIPELINE`, else
    /// double-buffered).
    #[deprecated(since = "0.9.0", note = "use SharonBuilder::new(..).shards(n).build()")]
    pub fn with_shards(
        catalog: &Catalog,
        workload: &Workload,
        rates: &RateMap,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        SharonBuilder::new(catalog, workload, rates)
            .shards(n_shards)
            .pipeline_depth(sharon_executor::default_pipeline_depth())
            .build()
    }

    /// The sharing plan in force (empty for non-shared strategies).
    pub fn plan(&self) -> SharingPlan {
        self.outcome
            .as_ref()
            .map(|o| o.plan.clone())
            .unwrap_or_else(SharingPlan::non_shared)
    }

    /// The optimizer outcome (phase timings, statistics), if an optimizer
    /// ran.
    pub fn optimizer_outcome(&self) -> Option<&OptimizeOutcome> {
        self.outcome.as_ref()
    }

    /// Process one event.
    pub fn process(&mut self, e: &Event) {
        self.executor.process(e);
    }

    /// Process a time-ordered batch of events (amortizes routing and
    /// predicate dispatch; see [`Executor::process_batch`]).
    pub fn process_batch(&mut self, events: &[Event]) {
        self.executor.process_batch(events);
    }

    /// Process a time-ordered columnar batch — the native form of every
    /// hot execution path (see [`Executor::process_columnar`]).
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        self.executor.process_columnar(batch);
    }

    /// Drain a stream through the executor in columnar batches.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        let mut buf = EventBatch::with_capacity(Executor::RUN_BATCH, 2);
        while stream.next_batch_columnar(Executor::RUN_BATCH, &mut buf) > 0 {
            self.process_columnar(&buf);
            buf.clear();
        }
        self
    }

    /// Flush remaining windows and return all results.
    pub fn finish(self) -> ExecutorResults {
        self.executor.finish()
    }

    /// Events that matched routing/predicates/grouping so far.
    pub fn events_matched(&self) -> u64 {
        self.executor.events_matched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_query::QueryId;
    use sharon_streams::taxi::{generate, TaxiConfig};
    use sharon_streams::workload::{figure_1_workload, measured_rates};
    use sharon_types::SortedVecStream;

    #[test]
    fn end_to_end_traffic_use_case() {
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &TaxiConfig {
                n_events: 5000,
                n_streets: 7,
                ..Default::default()
            },
        );
        let workload = figure_1_workload(&mut catalog);
        let (counts, span) = measured_rates(&events);
        let rates = RateMap::from_counts(&counts, span);

        let mut fw = SharonBuilder::new(&catalog, &workload, &rates)
            .build()
            .unwrap();
        assert!(fw.optimizer_outcome().is_some());
        fw.run(SortedVecStream::presorted(events.clone()));
        let shared_results = fw.finish();

        // A-Seq produces identical results
        let mut aseq = SharonBuilder::new(&catalog, &workload, &rates)
            .strategy(Strategy::ASeq)
            .build()
            .unwrap();
        assert!(aseq.plan().is_non_shared());
        aseq.run(SortedVecStream::presorted(events));
        let aseq_results = aseq.finish();

        assert!(
            shared_results.semantically_eq(&aseq_results, 1e-9),
            "Sharon and A-Seq must agree"
        );
        assert!(
            !shared_results.is_empty(),
            "traffic stream produces matches"
        );
        // q7 = (ElmSt, ParkAve) is the shortest pattern: it must match
        assert!(shared_results.total_count(QueryId(6)) > 0);
    }

    #[test]
    fn sharded_framework_matches_sequential() {
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &TaxiConfig {
                n_events: 4000,
                n_streets: 7,
                ..Default::default()
            },
        );
        let workload = figure_1_workload(&mut catalog);
        let (counts, span) = measured_rates(&events);
        let rates = RateMap::from_counts(&counts, span);

        let mut sequential = SharonBuilder::new(&catalog, &workload, &rates)
            .build()
            .unwrap();
        sequential.run(SortedVecStream::presorted(events.clone()));
        let want = sequential.finish();

        let mut sharded = SharonBuilder::new(&catalog, &workload, &rates)
            .shards(3)
            .build()
            .unwrap();
        assert!(
            sharded.optimizer_outcome().is_some(),
            "sharded still optimizes"
        );
        sharded.run(SortedVecStream::presorted(events));
        let got = sharded.finish();

        assert!(
            got.semantically_eq(&want, 1e-9),
            "sharding must not change results"
        );
        assert!(!got.is_empty());
    }

    /// The deprecated constructors must keep building the same engines
    /// until removal — they are the published pre-builder API.
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_build() {
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &TaxiConfig {
                n_events: 1000,
                n_streets: 7,
                ..Default::default()
            },
        );
        let workload = figure_1_workload(&mut catalog);
        let rates = RateMap::uniform(100.0);

        let mut fw = SharonFramework::new(&catalog, &workload, &rates).unwrap();
        fw.run(SortedVecStream::presorted(events.clone()));
        let want = fw.finish();

        let mut strat = SharonFramework::with_strategy(
            &catalog,
            &workload,
            &rates,
            Strategy::ASeq,
            &OptimizerConfig::default(),
        )
        .unwrap();
        strat.run(SortedVecStream::presorted(events.clone()));
        assert!(strat.finish().semantically_eq(&want, 1e-9));

        let mut sharded = SharonFramework::with_shards(&catalog, &workload, &rates, 2).unwrap();
        sharded.run(SortedVecStream::presorted(events));
        assert!(sharded.finish().semantically_eq(&want, 1e-9));
    }
}
