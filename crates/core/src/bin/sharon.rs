//! `sharon` — command-line runner for the Sharon system.
//!
//! Reads a query workload (SASE-style, one query per line), generates one
//! of the paper's streams, runs the chosen strategy, and prints the
//! sharing plan, per-query result summaries, and timing.
//!
//! ```text
//! USAGE:
//!   sharon [--queries FILE] [--stream taxi|lr|ec] [--events N]
//!          [--strategy sharon|greedy|aseq|flink|spass] [--shards N]
//!          [--pipeline-depth N] [--routers R] [--skew THETA] [--explain]
//!          [--results N] [--checkpoint-dir DIR] [--checkpoint-interval N]
//!          [--resume] [--spill-max N] [--disorder K] [--lateness B]
//!          [--churn FILE]
//!
//! Without --queries, the paper's Figure 1 traffic workload (taxi/lr) or
//! Figure 2 purchase workload (ec) is used. `--shards N` runs *any*
//! strategy — online or two-step — on the sharded parallel runtime with N
//! worker threads (every strategy is a columnar `BatchProcessor` the
//! route-once runtime can host). `--pipeline-depth N` sets the ingest
//! pipeline: 0 routes batches in-line on the ingest thread (the legacy
//! mode), N >= 1 overlaps routing with execution on a dedicated router
//! thread behind an N-deep job ring (default 2, or the `SHARON_PIPELINE`
//! environment variable). `--routers R` sizes the routing plane: the
//! compiled scopes are cost-partitioned across R router threads, each
//! with its own per-worker rings, and workers merge the R streams in
//! batch-sequence order (default 1, or the `SHARON_ROUTERS` environment
//! variable; R > 1 requires a pipelined ingest stage).
//! `--skew THETA` draws the stream's group
//! dimension (vehicle / car / customer) from a Zipf(THETA) distribution,
//! the skewed `GROUP BY` shape the sharded runtime's hot-group splitting
//! targets.
//!
//! Durability (sharded online strategies only): `--checkpoint-dir DIR`
//! takes a consistent checkpoint every `--checkpoint-interval` ingested
//! batches (default 64); `--resume` restarts from the latest complete
//! checkpoint in that directory and replays the stream from the recorded
//! offset; `--spill-max N` pages cold groups to disk, keeping at most N
//! groups resident per engine. The `SHARON_CHECKPOINT=<dir>[:<interval>]`
//! and `SHARON_FAULT=<drop@N|panic@N:S|abort@N|reorder@N:K>` environment
//! knobs are honored too (unparsable values are fatal, never ignored).
//!
//! Event time: `--disorder K` scrambles the generated stream with bounded
//! disorder (each event displaced at most K positions; seeded, so runs
//! are reproducible), `--lateness B` runs the strategy in event-time mode
//! with an allowed lateness of B milliseconds — rows buffer behind the
//! watermark `max_time_seen − B` and release in event-time order; rows
//! behind the watermark are dropped and counted. Results are exact
//! whenever B covers the stream's disorder (in event-time milliseconds).
//! The `SHARON_DISORDER=<K>` and `SHARON_LATENESS=<B>` environment knobs
//! are honored too; flags override them. (The whole `SHARON_*` surface is
//! parsed once through `RuntimeOptions::from_env`.)
//!
//! Live churn: `--churn FILE` runs the stream through a long-lived
//! `SharonSession` and replays a script of runtime workload mutations.
//! Each non-empty, non-`#` line is `@<event-offset> <action>`:
//!
//!   @25000 attach RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 2 s
//!   @40000 detach 3
//!   @45000 reopt
//!
//! `attach` compiles the query in (fast-path aliasing an equal-signature
//! hosted query, else a private sidecar), `detach <n>` detaches the n-th
//! handle (1-based: the initial workload's queries are handles 1..k in
//! order, then attach order), and `reopt` forces a re-optimization and
//! plan hot-swap at that batch boundary. Offsets are event positions in
//! the generated stream; ops apply in offset order. Requires an online
//! strategy and an in-order stream, and does not compose with
//! checkpoint/fault/resume; `--shards 0` is promoted to one shard.
//! ```

use sharon::executor::{CheckpointConfig, ShardedOptions, SpillConfig};
use sharon::prelude::*;
use sharon::streams::workload::{figure_1_workload, figure_2_workload, measured_rates_batch};
use sharon::streams::{ecommerce, linear_road, taxi};
use sharon::{resume_sharded_executor, Strategy};
use std::time::Instant;

struct Args {
    queries: Option<String>,
    stream: String,
    events: usize,
    strategy: Strategy,
    shards: usize,
    pipeline_depth: usize,
    routers: Option<usize>,
    skew: f64,
    explain: bool,
    results: usize,
    checkpoint_dir: Option<String>,
    checkpoint_interval: Option<u64>,
    resume: bool,
    spill_max: Option<usize>,
    disorder: Option<u32>,
    lateness: Option<u64>,
    churn: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: None,
        stream: "taxi".into(),
        events: 50_000,
        strategy: Strategy::Sharon,
        shards: 0,
        pipeline_depth: sharon::executor::default_pipeline_depth(),
        routers: None,
        skew: 0.0,
        explain: false,
        results: 5,
        checkpoint_dir: None,
        checkpoint_interval: None,
        resume: false,
        spill_max: None,
        disorder: None,
        lateness: None,
        churn: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--queries" => args.queries = Some(value("--queries")?),
            "--stream" => args.stream = value("--stream")?,
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--results" => {
                args.results = value("--results")?
                    .parse()
                    .map_err(|e| format!("--results: {e}"))?
            }
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "sharon" => Strategy::Sharon,
                    "greedy" => Strategy::Greedy,
                    "aseq" => Strategy::ASeq,
                    "flink" => Strategy::FlinkLike,
                    "spass" => Strategy::SpassLike,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--pipeline-depth" => {
                args.pipeline_depth = value("--pipeline-depth")?
                    .parse()
                    .map_err(|e| format!("--pipeline-depth: {e}"))?
            }
            "--routers" => {
                let n: usize = value("--routers")?
                    .parse()
                    .map_err(|e| format!("--routers: {e}"))?;
                if n == 0 {
                    return Err("--routers must be >= 1 (1 = the classic single router)".into());
                }
                args.routers = Some(n);
            }
            "--skew" => {
                args.skew = value("--skew")?
                    .parse()
                    .map_err(|e| format!("--skew: {e}"))?;
                if !(args.skew >= 0.0 && args.skew.is_finite()) {
                    return Err("--skew must be a finite theta >= 0".into());
                }
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-interval" => {
                let n: u64 = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?;
                if n == 0 {
                    return Err("--checkpoint-interval must be >= 1".into());
                }
                args.checkpoint_interval = Some(n);
            }
            "--resume" => args.resume = true,
            "--spill-max" => {
                args.spill_max = Some(
                    value("--spill-max")?
                        .parse()
                        .map_err(|e| format!("--spill-max: {e}"))?,
                )
            }
            "--disorder" => {
                args.disorder = Some(
                    value("--disorder")?
                        .parse()
                        .map_err(|e| format!("--disorder: {e}"))?,
                )
            }
            "--lateness" => {
                args.lateness = Some(
                    value("--lateness")?
                        .parse()
                        .map_err(|e| format!("--lateness: {e}"))?,
                )
            }
            "--churn" => args.churn = Some(value("--churn")?),
            "--explain" => args.explain = true,
            "--help" | "-h" => {
                println!(
                    "sharon — shared online event sequence aggregation (ICDE 2018)\n\n\
                     USAGE:\n  sharon [--queries FILE] [--stream taxi|lr|ec] [--events N]\n\
                     \x20        [--strategy sharon|greedy|aseq|flink|spass] [--shards N]\n\
                     \x20        [--pipeline-depth N] [--routers R] [--skew THETA] [--explain]\n\
                     \x20        [--results N] [--checkpoint-dir DIR] [--checkpoint-interval N]\n\
                     \x20        [--resume] [--spill-max N] [--disorder K] [--lateness B]\n\
                     \x20        [--churn FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // the whole SHARON_* environment surface, parsed in one place; an
    // unparsable knob is fatal, never silently ignored
    let runtime = match RuntimeOptions::from_env() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // flags override their environment knobs
    let shards = if args.shards > 0 {
        args.shards
    } else {
        runtime.shards.unwrap_or(0)
    };
    let disorder = args.disorder.unwrap_or(runtime.disorder);
    let mut catalog = Catalog::new();
    let events = match args.stream.as_str() {
        "taxi" => taxi::generate_batch(
            &mut catalog,
            &taxi::TaxiConfig {
                n_events: args.events,
                n_streets: 7,
                skew: args.skew,
                disorder,
                ..Default::default()
            },
        ),
        "lr" => linear_road::generate_batch(
            &mut catalog,
            &linear_road::LinearRoadConfig {
                duration_secs: (args.events / 500).max(10) as u64,
                skew: args.skew,
                disorder,
                ..Default::default()
            },
        ),
        "ec" => ecommerce::generate_batch(
            &mut catalog,
            &ecommerce::EcommerceConfig {
                n_events: args.events,
                skew: args.skew,
                disorder,
                ..Default::default()
            },
        ),
        other => {
            eprintln!("error: unknown stream `{other}` (taxi|lr|ec)");
            std::process::exit(2);
        }
    };
    if args.skew > 0.0 {
        eprintln!(
            "stream: {} events ({}, Zipf skew theta={})",
            events.len(),
            args.stream,
            args.skew
        );
    } else {
        eprintln!("stream: {} events ({})", events.len(), args.stream);
    }
    if disorder > 0 {
        eprintln!(
            "disorder: events displaced up to {disorder} positions ({} ms of lateness absorbs it exactly)",
            sharon::streams::required_lateness(&events)
        );
    }

    // 2. workload
    let workload = match &args.queries {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let sources: Vec<&str> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            match parse_workload(&mut catalog, sources) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        None if args.stream == "ec" => figure_2_workload(&mut catalog),
        None => figure_1_workload(&mut catalog),
    };
    eprintln!("workload: {} queries", workload.len());

    // 3. durability knobs — flags override the SHARON_CHECKPOINT /
    // SHARON_FAULT environment knobs that RuntimeOptions picked up
    let mut options = runtime.sharded_options();
    options.pipeline_depth = args.pipeline_depth;
    if let Some(n) = args.routers {
        options.routers = n;
    }
    if options.routers > 1 && options.pipeline_depth == 0 {
        eprintln!(
            "error: --routers {} needs a pipelined ingest stage (--pipeline-depth >= 1)",
            options.routers
        );
        std::process::exit(2);
    }
    if let Some(dir) = &args.checkpoint_dir {
        options.checkpoint = Some(CheckpointConfig::every(
            dir,
            args.checkpoint_interval.unwrap_or(64),
        ));
    } else if let Some(interval) = args.checkpoint_interval {
        match &mut options.checkpoint {
            Some(cfg) => cfg.interval_batches = interval,
            None => {
                eprintln!(
                    "error: --checkpoint-interval needs --checkpoint-dir (or SHARON_CHECKPOINT)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(max_resident) = args.spill_max {
        // spill logs are run-scoped scratch: co-locate them with the
        // checkpoint store when one exists, under the temp dir otherwise
        let dir = match &options.checkpoint {
            Some(cfg) => cfg.dir.join("spill"),
            None => std::env::temp_dir().join(format!("sharon-spill-{}", std::process::id())),
        };
        options.spill = Some(SpillConfig::new(dir, max_resident));
    }
    let durability = options.checkpoint.is_some() || options.spill.is_some();
    if (durability || options.fault.is_some() || args.resume) && shards == 0 && args.churn.is_none()
    {
        eprintln!(
            "error: checkpoint/spill/fault/resume knobs require the sharded runtime (--shards N)"
        );
        std::process::exit(2);
    }
    if (durability || args.resume)
        && matches!(args.strategy, Strategy::FlinkLike | Strategy::SpassLike)
    {
        eprintln!(
            "error: the {} two-step baseline does not support checkpoint/spill/resume",
            args.strategy.name()
        );
        std::process::exit(2);
    }
    if args.resume && options.checkpoint.is_none() {
        eprintln!("error: --resume needs --checkpoint-dir (or SHARON_CHECKPOINT)");
        std::process::exit(2);
    }
    // event-time knobs: --lateness overrides SHARON_LATENESS (already in
    // options); a disordered stream without a lateness bound would
    // violate every strategy's arrival-order contract, so refuse it
    if let Some(b) = args.lateness {
        options.lateness = Some(b);
    }
    if disorder > 0 && options.lateness.is_none() {
        eprintln!("error: --disorder needs --lateness (or SHARON_LATENESS)");
        std::process::exit(2);
    }
    let lateness = options.lateness;
    if let Some(b) = lateness {
        eprintln!("event time: allowed lateness {b} ms (later rows are dropped and counted)");
    }

    // 4. optimize + execute
    let (counts, span) = measured_rates_batch(&events);
    let rates = RateMap::from_counts(&counts, span);

    if let Some(script) = args.churn.clone() {
        run_churn(
            &script,
            &args,
            &mut catalog,
            &workload,
            &events,
            &rates,
            &options,
            &runtime,
            shards,
            disorder,
        );
        return;
    }
    let t0 = Instant::now();
    let n_routers = options.routers;
    let mut replay_offset: u64 = 0;
    let built = if args.resume {
        resume_sharded_executor(
            &catalog,
            &workload,
            &rates,
            args.strategy,
            &OptimizerConfig::default(),
            shards,
            options,
        )
        .map(|(ex, outcome, offset)| {
            replay_offset = offset;
            (ex, outcome)
        })
        .map_err(|e| format!("cannot resume: {e}"))
    } else {
        let mut builder = SharonBuilder::new(&catalog, &workload, &rates)
            .strategy(args.strategy)
            .shards(shards)
            .pipeline_depth(options.pipeline_depth)
            .routers(options.routers)
            .batch_size(options.batch_size);
        if let Some(ck) = options.checkpoint.clone() {
            builder = builder.checkpoint(ck);
        }
        if let Some(sp) = options.spill.clone() {
            builder = builder.spill(sp);
        }
        if let Some(fault) = options.fault {
            builder = builder.fault(fault);
        }
        if let Some(b) = options.lateness {
            builder = builder.lateness(b);
        }
        if let Some(mode) = runtime.scan {
            builder = builder.scan_mode(mode);
        }
        builder.build_executor().map_err(|e| e.to_string())
    };
    let (mut executor, outcome) = match built {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let optimize_time = t0.elapsed();
    if shards > 0 {
        if args.pipeline_depth > 0 && n_routers > 1 {
            eprintln!(
                "runtime: sharded across {} worker threads, pipelined ingest ({} router threads, depth {})",
                shards, n_routers, args.pipeline_depth
            );
        } else if args.pipeline_depth > 0 {
            eprintln!(
                "runtime: sharded across {} worker threads, pipelined ingest (router thread, depth {})",
                shards, args.pipeline_depth
            );
        } else {
            eprintln!(
                "runtime: sharded across {} worker threads, in-line routing",
                shards
            );
        }
    }

    if let Some(outcome) = &outcome {
        println!(
            "plan ({}, score {:.1}, optimized in {:?}):",
            args.strategy.name(),
            outcome.score,
            optimize_time
        );
        for cand in &outcome.plan.candidates {
            let qs: Vec<String> = cand.queries.iter().map(|q| q.to_string()).collect();
            println!(
                "  share {} among {}",
                cand.pattern.display(&catalog),
                qs.join(", ")
            );
        }
        if args.explain {
            for phase in &outcome.phases {
                println!("  phase {:<20} {:?}", phase.name, phase.elapsed);
            }
            let s = &outcome.stats;
            println!(
                "  candidates mined {} / graph {}v {}e / expanded {} / pruned {} / conflict-free {} / plans considered {}",
                s.candidates_mined, s.graph_vertices, s.graph_edges,
                s.expanded_vertices, s.pruned, s.conflict_free, s.plans_considered
            );
        }
    } else {
        println!("plan: none ({} runs non-shared)", args.strategy.name());
    }

    // time ingestion AND finish together: the sharded runtime drains its
    // workers in finish(), so stopping the clock earlier would credit it
    // for work it has only enqueued
    let offset = (replay_offset as usize).min(events.len());
    if args.resume {
        eprintln!(
            "resume: checkpoint covers the stream up to event {offset}; replaying {} events",
            events.len() - offset
        );
    }
    let t1 = Instant::now();
    if offset == 0 {
        executor.process_columnar(&events);
    } else {
        // replay only the suffix after the checkpointed offset
        let mut tail = sharon::types::EventBatch::new();
        tail.extend_from_range(&events, offset, events.len());
        executor.process_columnar(&tail);
    }
    // read before finish_with_matched consumes the executor; exact for
    // sequential strategies, and for the sharded runtime too once its
    // ingest flushed (which process_columnar + the finish below ensure)
    let scan_stats = executor.scan_stats();
    let (results, matched) = executor.finish_with_matched();
    let run_time = t1.elapsed();
    let processed = events.len() - offset;
    let throughput = processed as f64 / run_time.as_secs_f64().max(1e-12);
    if durability {
        eprintln!(
            "durability: {} checkpoint(s) written, {} group spill(s), {} reload(s)",
            sharon::metrics::checkpoints_written(),
            sharon::metrics::group_spills(),
            sharon::metrics::group_reloads()
        );
    }
    if lateness.is_some() {
        eprintln!(
            "event time: {} late row(s) dropped",
            sharon::metrics::late_rows_dropped()
        );
    }
    if !scan_stats.is_empty() {
        for (scope, (scanned, selected)) in scan_stats.iter().enumerate() {
            let pct = if *scanned > 0 {
                *selected as f64 / *scanned as f64 * 100.0
            } else {
                0.0
            };
            eprintln!(
                "scan: scope {scope}: {selected}/{scanned} rows selected ({pct:.1}% selectivity)"
            );
        }
    }

    // every strategy — online engines and two-step baselines alike —
    // counts its stateless-scan survivors through the BatchProcessor
    // contract, so the matched cell is always real
    let replay_note = if offset > 0 {
        format!(" ({processed} replayed after resume)")
    } else {
        String::new()
    };
    println!(
        "\nexecuted {} events{replay_note} ({matched} matched) in {:?} ({:.0} events/s), {} results",
        events.len(),
        run_time,
        throughput,
        results.len()
    );
    for q in workload.ids() {
        let rows = results.of_query_sorted(q);
        println!(
            "  {}: {} (group, window) results, total count {}",
            q,
            rows.len(),
            results.total_count(q)
        );
        for (group, window, value) in rows.into_iter().take(args.results) {
            println!("      group={group} window@{window}: {value}");
        }
    }
}

/// One scripted workload mutation, applied once the stream has been fed
/// up to (but not including) event `offset`.
struct ChurnOp {
    offset: usize,
    action: ChurnAction,
}

enum ChurnAction {
    Attach(Box<Query>),
    Detach(u32),
    Reopt,
}

/// Parse a churn script: `@<offset> attach <query>` / `@<offset>
/// detach <n>` (1-based handle) / `@<offset> reopt`, one per line, with
/// `#` comments and blank lines ignored. Attach queries compile against
/// `catalog` here, up front — the session snapshots the catalog when it
/// starts, so every type a scripted query names must exist first.
fn parse_churn_script(catalog: &mut Catalog, text: &str) -> Result<Vec<ChurnOp>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: String| format!("churn script line {}: {m}", lineno + 1);
        let rest = line
            .strip_prefix('@')
            .ok_or_else(|| err("expected `@<offset> <action>`".into()))?;
        let (off, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected an action after the offset".into()))?;
        let offset: usize = off
            .parse()
            .map_err(|e| err(format!("bad offset `{off}`: {e}")))?;
        let rest = rest.trim();
        let action = if let Some(src) = rest.strip_prefix("attach ") {
            let q = parse_query(catalog, src.trim()).map_err(|e| err(e.to_string()))?;
            ChurnAction::Attach(Box::new(q))
        } else if let Some(n) = rest.strip_prefix("detach ") {
            let n: u32 = n
                .trim()
                .parse()
                .map_err(|e| err(format!("bad handle number `{}`: {e}", n.trim())))?;
            if n == 0 {
                return Err(err("handles are numbered from 1".into()));
            }
            ChurnAction::Detach(n - 1)
        } else if rest == "reopt" {
            ChurnAction::Reopt
        } else {
            return Err(err(format!(
                "unknown action `{rest}` (expected attach/detach/reopt)"
            )));
        };
        ops.push(ChurnOp { offset, action });
    }
    ops.sort_by_key(|op| op.offset);
    Ok(ops)
}

/// `--churn` mode: run the stream through a live [`SharonSession`],
/// applying the script's attach/detach/reopt ops at their event offsets.
#[allow(clippy::too_many_arguments)]
fn run_churn(
    script: &str,
    args: &Args,
    catalog: &mut Catalog,
    workload: &Workload,
    events: &EventBatch,
    rates: &RateMap,
    options: &ShardedOptions,
    runtime: &RuntimeOptions,
    shards: usize,
    disorder: u32,
) {
    // sessions require an in-order stream and do not compose with the
    // durability/event-time tiers (yet) — refuse the combinations the
    // session layer would reject anyway, with a CLI-shaped message
    if options.checkpoint.is_some() || options.fault.is_some() || args.resume {
        eprintln!("error: --churn does not compose with checkpoint/fault/resume");
        std::process::exit(2);
    }
    if disorder > 0 || options.lateness.is_some() {
        eprintln!("error: --churn requires an in-order stream (no --disorder / --lateness)");
        std::process::exit(2);
    }
    if matches!(args.strategy, Strategy::FlinkLike | Strategy::SpassLike) {
        eprintln!(
            "error: the {} two-step baseline cannot host a live session (online strategies only)",
            args.strategy.name()
        );
        std::process::exit(2);
    }
    let text = std::fs::read_to_string(script).unwrap_or_else(|e| {
        eprintln!("error: cannot read {script}: {e}");
        std::process::exit(2);
    });
    // parse BEFORE the session snapshots the catalog, so attach queries
    // may introduce event types the initial workload never names
    let ops = match parse_churn_script(catalog, &text) {
        Ok(ops) => ops,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let shards = shards.max(1);
    let mut builder = SharonBuilder::new(catalog, workload, rates)
        .strategy(args.strategy)
        .shards(shards)
        .pipeline_depth(options.pipeline_depth)
        .routers(options.routers)
        .batch_size(options.batch_size);
    if let Some(sp) = options.spill.clone() {
        builder = builder.spill(sp);
    }
    if let Some(mode) = runtime.scan {
        builder = builder.scan_mode(mode);
    }
    let mut session = match builder.session(SessionConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "session: {} initial queries ({}) on {} shard(s), pipeline depth {}, {} scripted op(s)",
        workload.len(),
        args.strategy.name(),
        shards,
        options.pipeline_depth,
        ops.len()
    );

    let total = events.len();
    let mut pos = 0usize;
    let feed_to = |session: &mut SharonSession, pos: &mut usize, stop: usize| {
        while *pos < stop {
            let end = (*pos + 4096).min(stop);
            let mut chunk = EventBatch::new();
            chunk.extend_from_range(events, *pos, end);
            session.process_columnar(&chunk);
            *pos = end;
        }
    };

    let t1 = Instant::now();
    for op in &ops {
        feed_to(&mut session, &mut pos, op.offset.min(total));
        match &op.action {
            ChurnAction::Attach(q) => {
                let sidecars_before = session.sidecar_count();
                match session.attach((**q).clone()) {
                    Ok(h) => {
                        let path = if session.sidecar_count() > sidecars_before {
                            "private sidecar until the next re-optimization"
                        } else {
                            "fast path: aliases a hosted query"
                        };
                        eprintln!("@{}: attach -> handle {h} ({path})", op.offset);
                    }
                    Err(e) => {
                        eprintln!("error: @{} attach: {e}", op.offset);
                        std::process::exit(1);
                    }
                }
            }
            ChurnAction::Detach(idx) => match session.handle(*idx) {
                Some(h) if session.is_attached(h) => {
                    session.detach(h);
                    eprintln!("@{}: detach handle {h}", op.offset);
                }
                Some(h) => {
                    eprintln!(
                        "error: @{} detach: handle {h} is already detached",
                        op.offset
                    );
                    std::process::exit(2);
                }
                None => {
                    eprintln!(
                        "error: @{} detach: no handle {} (only {} issued)",
                        op.offset,
                        idx + 1,
                        session.handle_count()
                    );
                    std::process::exit(2);
                }
            },
            ChurnAction::Reopt => {
                session.reoptimize_now();
                eprintln!(
                    "@{}: reopt -> plan swap {} ({} sharing candidate(s) in force)",
                    op.offset,
                    session.plan_swaps(),
                    session.plan().candidates.len()
                );
            }
        }
    }
    feed_to(&mut session, &mut pos, total);

    let handles = session.handle_count();
    let (reopts, swaps) = (session.reoptimizations(), session.plan_swaps());
    let results = session.finish();
    let run_time = t1.elapsed();
    let throughput = total as f64 / run_time.as_secs_f64().max(1e-12);
    println!(
        "\nexecuted {} events through {} handle(s) in {:?} ({:.0} events/s), {} results",
        total,
        handles,
        run_time,
        throughput,
        results.len()
    );
    println!(
        "churn: {} attach(es), {} detach(es), {} re-optimization(s), {} plan swap(s), {} window(s) lost",
        sharon::metrics::queries_attached(),
        sharon::metrics::queries_detached(),
        reopts,
        swaps,
        sharon::metrics::swap_windows_lost()
    );
    for i in 0..handles {
        let q = QueryId(i);
        let rows = results.of_query_sorted(q);
        println!(
            "  handle {}: {} (group, window) results, total count {}",
            i + 1,
            rows.len(),
            results.total_count(q)
        );
        for (group, window, value) in rows.into_iter().take(args.results) {
            println!("      group={group} window@{window}: {value}");
        }
    }
}
