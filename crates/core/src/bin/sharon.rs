//! `sharon` — command-line runner for the Sharon system.
//!
//! Reads a query workload (SASE-style, one query per line), generates one
//! of the paper's streams, runs the chosen strategy, and prints the
//! sharing plan, per-query result summaries, and timing.
//!
//! ```text
//! USAGE:
//!   sharon [--queries FILE] [--stream taxi|lr|ec] [--events N]
//!          [--strategy sharon|greedy|aseq|flink|spass] [--shards N]
//!          [--pipeline-depth N] [--skew THETA] [--explain] [--results N]
//!          [--checkpoint-dir DIR] [--checkpoint-interval N] [--resume]
//!          [--spill-max N] [--disorder K] [--lateness B]
//!
//! Without --queries, the paper's Figure 1 traffic workload (taxi/lr) or
//! Figure 2 purchase workload (ec) is used. `--shards N` runs *any*
//! strategy — online or two-step — on the sharded parallel runtime with N
//! worker threads (every strategy is a columnar `BatchProcessor` the
//! route-once runtime can host). `--pipeline-depth N` sets the ingest
//! pipeline: 0 routes batches in-line on the ingest thread (the legacy
//! mode), N >= 1 overlaps routing with execution on a dedicated router
//! thread behind an N-deep job ring (default 2, or the `SHARON_PIPELINE`
//! environment variable). `--skew THETA` draws the stream's group
//! dimension (vehicle / car / customer) from a Zipf(THETA) distribution,
//! the skewed `GROUP BY` shape the sharded runtime's hot-group splitting
//! targets.
//!
//! Durability (sharded online strategies only): `--checkpoint-dir DIR`
//! takes a consistent checkpoint every `--checkpoint-interval` ingested
//! batches (default 64); `--resume` restarts from the latest complete
//! checkpoint in that directory and replays the stream from the recorded
//! offset; `--spill-max N` pages cold groups to disk, keeping at most N
//! groups resident per engine. The `SHARON_CHECKPOINT=<dir>[:<interval>]`
//! and `SHARON_FAULT=<drop@N|panic@N:S|abort@N|reorder@N:K>` environment
//! knobs are honored too (unparsable values are fatal, never ignored).
//!
//! Event time: `--disorder K` scrambles the generated stream with bounded
//! disorder (each event displaced at most K positions; seeded, so runs
//! are reproducible), `--lateness B` runs the strategy in event-time mode
//! with an allowed lateness of B milliseconds — rows buffer behind the
//! watermark `max_time_seen − B` and release in event-time order; rows
//! behind the watermark are dropped and counted. Results are exact
//! whenever B covers the stream's disorder (in event-time milliseconds).
//! The `SHARON_DISORDER=<K>` and `SHARON_LATENESS=<B>` environment knobs
//! are honored too; flags override them.
//! ```

use sharon::executor::{CheckpointConfig, ShardedOptions, SpillConfig};
use sharon::prelude::*;
use sharon::streams::workload::{figure_1_workload, figure_2_workload, measured_rates_batch};
use sharon::streams::{ecommerce, linear_road, taxi};
use sharon::{
    build_executor, build_sharded_executor_with_options, resume_sharded_executor, Strategy,
};
use std::time::Instant;

struct Args {
    queries: Option<String>,
    stream: String,
    events: usize,
    strategy: Strategy,
    shards: usize,
    pipeline_depth: usize,
    skew: f64,
    explain: bool,
    results: usize,
    checkpoint_dir: Option<String>,
    checkpoint_interval: Option<u64>,
    resume: bool,
    spill_max: Option<usize>,
    disorder: Option<u32>,
    lateness: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: None,
        stream: "taxi".into(),
        events: 50_000,
        strategy: Strategy::Sharon,
        shards: 0,
        pipeline_depth: sharon::executor::default_pipeline_depth(),
        skew: 0.0,
        explain: false,
        results: 5,
        checkpoint_dir: None,
        checkpoint_interval: None,
        resume: false,
        spill_max: None,
        disorder: None,
        lateness: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--queries" => args.queries = Some(value("--queries")?),
            "--stream" => args.stream = value("--stream")?,
            "--events" => {
                args.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--results" => {
                args.results = value("--results")?
                    .parse()
                    .map_err(|e| format!("--results: {e}"))?
            }
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "sharon" => Strategy::Sharon,
                    "greedy" => Strategy::Greedy,
                    "aseq" => Strategy::ASeq,
                    "flink" => Strategy::FlinkLike,
                    "spass" => Strategy::SpassLike,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--pipeline-depth" => {
                args.pipeline_depth = value("--pipeline-depth")?
                    .parse()
                    .map_err(|e| format!("--pipeline-depth: {e}"))?
            }
            "--skew" => {
                args.skew = value("--skew")?
                    .parse()
                    .map_err(|e| format!("--skew: {e}"))?;
                if !(args.skew >= 0.0 && args.skew.is_finite()) {
                    return Err("--skew must be a finite theta >= 0".into());
                }
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-interval" => {
                let n: u64 = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?;
                if n == 0 {
                    return Err("--checkpoint-interval must be >= 1".into());
                }
                args.checkpoint_interval = Some(n);
            }
            "--resume" => args.resume = true,
            "--spill-max" => {
                args.spill_max = Some(
                    value("--spill-max")?
                        .parse()
                        .map_err(|e| format!("--spill-max: {e}"))?,
                )
            }
            "--disorder" => {
                args.disorder = Some(
                    value("--disorder")?
                        .parse()
                        .map_err(|e| format!("--disorder: {e}"))?,
                )
            }
            "--lateness" => {
                args.lateness = Some(
                    value("--lateness")?
                        .parse()
                        .map_err(|e| format!("--lateness: {e}"))?,
                )
            }
            "--explain" => args.explain = true,
            "--help" | "-h" => {
                println!(
                    "sharon — shared online event sequence aggregation (ICDE 2018)\n\n\
                     USAGE:\n  sharon [--queries FILE] [--stream taxi|lr|ec] [--events N]\n\
                     \x20        [--strategy sharon|greedy|aseq|flink|spass] [--shards N]\n\
                     \x20        [--pipeline-depth N] [--skew THETA] [--explain] [--results N]\n\
                     \x20        [--checkpoint-dir DIR] [--checkpoint-interval N] [--resume]\n\
                     \x20        [--spill-max N] [--disorder K] [--lateness B]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // 1. stream — generated directly in columnar form; --disorder
    // overrides the SHARON_DISORDER environment knob
    let disorder = args
        .disorder
        .unwrap_or_else(sharon::streams::disorder_from_env);
    let mut catalog = Catalog::new();
    let events = match args.stream.as_str() {
        "taxi" => taxi::generate_batch(
            &mut catalog,
            &taxi::TaxiConfig {
                n_events: args.events,
                n_streets: 7,
                skew: args.skew,
                disorder,
                ..Default::default()
            },
        ),
        "lr" => linear_road::generate_batch(
            &mut catalog,
            &linear_road::LinearRoadConfig {
                duration_secs: (args.events / 500).max(10) as u64,
                skew: args.skew,
                disorder,
                ..Default::default()
            },
        ),
        "ec" => ecommerce::generate_batch(
            &mut catalog,
            &ecommerce::EcommerceConfig {
                n_events: args.events,
                skew: args.skew,
                disorder,
                ..Default::default()
            },
        ),
        other => {
            eprintln!("error: unknown stream `{other}` (taxi|lr|ec)");
            std::process::exit(2);
        }
    };
    if args.skew > 0.0 {
        eprintln!(
            "stream: {} events ({}, Zipf skew theta={})",
            events.len(),
            args.stream,
            args.skew
        );
    } else {
        eprintln!("stream: {} events ({})", events.len(), args.stream);
    }
    if disorder > 0 {
        eprintln!(
            "disorder: events displaced up to {disorder} positions ({} ms of lateness absorbs it exactly)",
            sharon::streams::required_lateness(&events)
        );
    }

    // 2. workload
    let workload = match &args.queries {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let sources: Vec<&str> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            match parse_workload(&mut catalog, sources) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        None if args.stream == "ec" => figure_2_workload(&mut catalog),
        None => figure_1_workload(&mut catalog),
    };
    eprintln!("workload: {} queries", workload.len());

    // 3. durability knobs — flags override the SHARON_CHECKPOINT /
    // SHARON_FAULT environment knobs that from_env() picks up
    let mut options = ShardedOptions::from_env();
    options.pipeline_depth = args.pipeline_depth;
    if let Some(dir) = &args.checkpoint_dir {
        options.checkpoint = Some(CheckpointConfig::every(
            dir,
            args.checkpoint_interval.unwrap_or(64),
        ));
    } else if let Some(interval) = args.checkpoint_interval {
        match &mut options.checkpoint {
            Some(cfg) => cfg.interval_batches = interval,
            None => {
                eprintln!(
                    "error: --checkpoint-interval needs --checkpoint-dir (or SHARON_CHECKPOINT)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(max_resident) = args.spill_max {
        // spill logs are run-scoped scratch: co-locate them with the
        // checkpoint store when one exists, under the temp dir otherwise
        let dir = match &options.checkpoint {
            Some(cfg) => cfg.dir.join("spill"),
            None => std::env::temp_dir().join(format!("sharon-spill-{}", std::process::id())),
        };
        options.spill = Some(SpillConfig::new(dir, max_resident));
    }
    let durability = options.checkpoint.is_some() || options.spill.is_some();
    if (durability || options.fault.is_some() || args.resume) && args.shards == 0 {
        eprintln!(
            "error: checkpoint/spill/fault/resume knobs require the sharded runtime (--shards N)"
        );
        std::process::exit(2);
    }
    if (durability || args.resume)
        && matches!(args.strategy, Strategy::FlinkLike | Strategy::SpassLike)
    {
        eprintln!(
            "error: the {} two-step baseline does not support checkpoint/spill/resume",
            args.strategy.name()
        );
        std::process::exit(2);
    }
    if args.resume && options.checkpoint.is_none() {
        eprintln!("error: --resume needs --checkpoint-dir (or SHARON_CHECKPOINT)");
        std::process::exit(2);
    }
    // event-time knobs: --lateness overrides SHARON_LATENESS (already in
    // options); a disordered stream without a lateness bound would
    // violate every strategy's arrival-order contract, so refuse it
    if let Some(b) = args.lateness {
        options.lateness = Some(b);
    }
    if disorder > 0 && options.lateness.is_none() {
        eprintln!("error: --disorder needs --lateness (or SHARON_LATENESS)");
        std::process::exit(2);
    }
    let lateness = options.lateness;
    if let Some(b) = lateness {
        eprintln!("event time: allowed lateness {b} ms (later rows are dropped and counted)");
    }

    // 4. optimize + execute
    let (counts, span) = measured_rates_batch(&events);
    let rates = RateMap::from_counts(&counts, span);
    let t0 = Instant::now();
    let mut replay_offset: u64 = 0;
    let built = if args.resume {
        resume_sharded_executor(
            &catalog,
            &workload,
            &rates,
            args.strategy,
            &OptimizerConfig::default(),
            args.shards,
            options,
        )
        .map(|(ex, outcome, offset)| {
            replay_offset = offset;
            (ex, outcome)
        })
        .map_err(|e| format!("cannot resume: {e}"))
    } else if args.shards > 0 {
        build_sharded_executor_with_options(
            &catalog,
            &workload,
            &rates,
            args.strategy,
            &OptimizerConfig::default(),
            args.shards,
            options,
        )
        .map_err(|e| e.to_string())
    } else {
        build_executor(
            &catalog,
            &workload,
            &rates,
            args.strategy,
            &OptimizerConfig::default(),
        )
        .map_err(|e| e.to_string())
    };
    let (mut executor, outcome) = match built {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // sequential executors take the lateness directly; the sharded
    // runtime already configured its engines from options.lateness
    if args.shards == 0 {
        if let Some(b) = lateness {
            executor.set_lateness(b);
        }
    }
    let optimize_time = t0.elapsed();
    if args.shards > 0 {
        if args.pipeline_depth > 0 {
            eprintln!(
                "runtime: sharded across {} worker threads, pipelined ingest (router thread, depth {})",
                args.shards, args.pipeline_depth
            );
        } else {
            eprintln!(
                "runtime: sharded across {} worker threads, in-line routing",
                args.shards
            );
        }
    }

    if let Some(outcome) = &outcome {
        println!(
            "plan ({}, score {:.1}, optimized in {:?}):",
            args.strategy.name(),
            outcome.score,
            optimize_time
        );
        for cand in &outcome.plan.candidates {
            let qs: Vec<String> = cand.queries.iter().map(|q| q.to_string()).collect();
            println!(
                "  share {} among {}",
                cand.pattern.display(&catalog),
                qs.join(", ")
            );
        }
        if args.explain {
            for phase in &outcome.phases {
                println!("  phase {:<20} {:?}", phase.name, phase.elapsed);
            }
            let s = &outcome.stats;
            println!(
                "  candidates mined {} / graph {}v {}e / expanded {} / pruned {} / conflict-free {} / plans considered {}",
                s.candidates_mined, s.graph_vertices, s.graph_edges,
                s.expanded_vertices, s.pruned, s.conflict_free, s.plans_considered
            );
        }
    } else {
        println!("plan: none ({} runs non-shared)", args.strategy.name());
    }

    // time ingestion AND finish together: the sharded runtime drains its
    // workers in finish(), so stopping the clock earlier would credit it
    // for work it has only enqueued
    let offset = (replay_offset as usize).min(events.len());
    if args.resume {
        eprintln!(
            "resume: checkpoint covers the stream up to event {offset}; replaying {} events",
            events.len() - offset
        );
    }
    let t1 = Instant::now();
    if offset == 0 {
        executor.process_columnar(&events);
    } else {
        // replay only the suffix after the checkpointed offset
        let mut tail = sharon::types::EventBatch::new();
        tail.extend_from_range(&events, offset, events.len());
        executor.process_columnar(&tail);
    }
    // read before finish_with_matched consumes the executor; exact for
    // sequential strategies, and for the sharded runtime too once its
    // ingest flushed (which process_columnar + the finish below ensure)
    let scan_stats = executor.scan_stats();
    let (results, matched) = executor.finish_with_matched();
    let run_time = t1.elapsed();
    let processed = events.len() - offset;
    let throughput = processed as f64 / run_time.as_secs_f64().max(1e-12);
    if durability {
        eprintln!(
            "durability: {} checkpoint(s) written, {} group spill(s), {} reload(s)",
            sharon::metrics::checkpoints_written(),
            sharon::metrics::group_spills(),
            sharon::metrics::group_reloads()
        );
    }
    if lateness.is_some() {
        eprintln!(
            "event time: {} late row(s) dropped",
            sharon::metrics::late_rows_dropped()
        );
    }
    if !scan_stats.is_empty() {
        for (scope, (scanned, selected)) in scan_stats.iter().enumerate() {
            let pct = if *scanned > 0 {
                *selected as f64 / *scanned as f64 * 100.0
            } else {
                0.0
            };
            eprintln!(
                "scan: scope {scope}: {selected}/{scanned} rows selected ({pct:.1}% selectivity)"
            );
        }
    }

    // every strategy — online engines and two-step baselines alike —
    // counts its stateless-scan survivors through the BatchProcessor
    // contract, so the matched cell is always real
    let replay_note = if offset > 0 {
        format!(" ({processed} replayed after resume)")
    } else {
        String::new()
    };
    println!(
        "\nexecuted {} events{replay_note} ({matched} matched) in {:?} ({:.0} events/s), {} results",
        events.len(),
        run_time,
        throughput,
        results.len()
    );
    for q in workload.ids() {
        let rows = results.of_query_sorted(q);
        println!(
            "  {}: {} (group, window) results, total count {}",
            q,
            rows.len(),
            results.total_count(q)
        );
        for (group, window, value) in rows.into_iter().take(args.results) {
            println!("      group={group} window@{window}: {value}");
        }
    }
}
