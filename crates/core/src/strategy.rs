//! Execution strategies: the five systems compared in Section 8
//! (Figure 3's taxonomy) behind one constructor.

use sharon_executor::{CompileError, Executor, ExecutorResults, ShardedExecutor};
use sharon_optimizer::{
    optimize_greedy, optimize_sharon, OptimizeOutcome, OptimizerConfig, RateMap,
};
use sharon_query::{SharingPlan, Workload};
use sharon_twostep::{FlinkLike, SpassLike};
use sharon_types::{Catalog, Event, EventBatch};

/// Which event sequence aggregation approach to run (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Shared + online: the Sharon executor under the Sharon optimizer's
    /// optimal plan.
    Sharon,
    /// Shared + online, but under GWMIN's greedily chosen plan
    /// (Figure 16's comparison).
    Greedy,
    /// Non-shared + online: A-Seq — every query independent.
    ASeq,
    /// Non-shared + two-step: the Flink-like baseline (constructs
    /// sequences).
    FlinkLike,
    /// Shared construction + two-step: the SPASS-like baseline.
    SpassLike,
}

impl Strategy {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Sharon => "SHARON",
            Strategy::Greedy => "Greedy",
            Strategy::ASeq => "A-Seq",
            Strategy::FlinkLike => "Flink",
            Strategy::SpassLike => "SPASS",
        }
    }
}

/// A uniformly driven executor of any strategy.
pub enum AnyExecutor {
    /// The online engine (Sharon / Greedy / A-Seq).
    Online(Executor),
    /// The online engine on the sharded parallel runtime.
    Sharded(ShardedExecutor),
    /// The non-shared two-step baseline.
    Flink(FlinkLike),
    /// The shared two-step baseline.
    Spass(SpassLike),
}

impl AnyExecutor {
    /// Process one event.
    pub fn process(&mut self, e: &Event) {
        match self {
            AnyExecutor::Online(x) => x.process(e),
            AnyExecutor::Sharded(x) => x.process(e),
            AnyExecutor::Flink(x) => x.process(e),
            AnyExecutor::Spass(x) => x.process(e),
        }
    }

    /// Process a time-ordered batch of events. Online engines amortize
    /// per-event dispatch; the two-step baselines fall back to the
    /// per-event path.
    pub fn process_batch(&mut self, events: &[Event]) {
        match self {
            AnyExecutor::Online(x) => x.process_batch(events),
            AnyExecutor::Sharded(x) => x.process_batch(events),
            AnyExecutor::Flink(x) => {
                for e in events {
                    x.process(e);
                }
            }
            AnyExecutor::Spass(x) => {
                for e in events {
                    x.process(e);
                }
            }
        }
    }

    /// Process a time-ordered columnar batch. The online engines run
    /// their columnar hot path (and the sharded runtime routes once and
    /// fans out row lists); the two-step baselines materialize row-form
    /// events per row, since they only expose a per-event path.
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        match self {
            AnyExecutor::Online(x) => x.process_columnar(batch),
            AnyExecutor::Sharded(x) => x.process_columnar(batch),
            AnyExecutor::Flink(x) => {
                for row in 0..batch.len() {
                    x.process(&batch.event(row));
                }
            }
            AnyExecutor::Spass(x) => {
                for row in 0..batch.len() {
                    x.process(&batch.event(row));
                }
            }
        }
    }

    /// Flush and return results.
    pub fn finish(self) -> ExecutorResults {
        self.finish_with_matched().0
    }

    /// Flush and return `(results, events_matched)`. Unlike
    /// [`AnyExecutor::events_matched`], the count here is exact for the
    /// sharded runtime too — it is read after all workers drain.
    pub fn finish_with_matched(self) -> (ExecutorResults, u64) {
        match self {
            AnyExecutor::Online(x) => {
                let matched = x.events_matched();
                (x.finish(), matched)
            }
            AnyExecutor::Sharded(x) => {
                let (results, matched, _cells) = x.finish_with_stats();
                (results, matched)
            }
            AnyExecutor::Flink(x) => (x.finish(), 0),
            AnyExecutor::Spass(x) => (x.finish(), 0),
        }
    }

    /// Events that passed routing/predicates/grouping (online engines;
    /// the sharded runtime reports the workers' last published counts,
    /// which trail ingestion by at most the in-flight batches) or zero
    /// for the two-step baselines, which do not track it.
    pub fn events_matched(&self) -> u64 {
        match self {
            AnyExecutor::Online(x) => x.events_matched(),
            AnyExecutor::Sharded(x) => x.events_matched(),
            _ => 0,
        }
    }

    /// State-size proxy: live aggregate cells / buffered events /
    /// materialized matches (zero for the sharded runtime, whose state
    /// lives on its worker threads).
    pub fn state_size(&self) -> usize {
        match self {
            AnyExecutor::Online(x) => x.cell_count(),
            AnyExecutor::Sharded(_) => 0,
            AnyExecutor::Flink(x) => x.buffered_events(),
            AnyExecutor::Spass(x) => x.materialized_matches(),
        }
    }
}

/// Build the executor (and optimizer outcome, when one runs) for a
/// strategy.
pub fn build_executor(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
    match strategy {
        Strategy::Sharon => {
            let outcome = optimize_sharon(workload, rates, config);
            let ex = Executor::new(catalog, workload, &outcome.plan)?;
            Ok((AnyExecutor::Online(ex), Some(outcome)))
        }
        Strategy::Greedy => {
            let outcome = optimize_greedy(workload, rates);
            let ex = Executor::new(catalog, workload, &outcome.plan)?;
            Ok((AnyExecutor::Online(ex), Some(outcome)))
        }
        Strategy::ASeq => {
            let ex = Executor::non_shared(catalog, workload)?;
            Ok((AnyExecutor::Online(ex), None))
        }
        Strategy::FlinkLike => Ok((AnyExecutor::Flink(FlinkLike::new(catalog, workload)?), None)),
        Strategy::SpassLike => {
            // SPASS shares *construction*; give it the same optimal plan so
            // its shared segments match Sharon's (the paper gives SPASS its
            // own sharing optimizer for construction)
            let outcome = optimize_sharon(workload, rates, config);
            let ex = SpassLike::new(catalog, workload, &outcome.plan)?;
            Ok((AnyExecutor::Spass(ex), Some(outcome)))
        }
    }
}

/// Convenience: run `events` under `strategy` and return the results.
pub fn run_strategy(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    events: &[Event],
) -> Result<ExecutorResults, CompileError> {
    let (mut ex, _) = build_executor(
        catalog,
        workload,
        rates,
        strategy,
        &OptimizerConfig::default(),
    )?;
    for e in events {
        ex.process(e);
    }
    Ok(ex.finish())
}

/// Build an online executor for an explicit, externally produced plan
/// (used by dynamic plan migration and the Figure 16 bench).
pub fn executor_for_plan(
    catalog: &Catalog,
    workload: &Workload,
    plan: &SharingPlan,
) -> Result<Executor, CompileError> {
    Executor::new(catalog, workload, plan)
}

/// Build a sharded parallel executor under `strategy`'s sharing plan.
///
/// `Strategy::FlinkLike` / `Strategy::SpassLike` are not supported — the
/// two-step baselines are inherently sequential; callers get
/// `CompileError::PlanInvalid` rather than a silently sequential run.
pub fn build_sharded_executor(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
    n_shards: usize,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
    let (plan, outcome) = match strategy {
        Strategy::Sharon => {
            let outcome = optimize_sharon(workload, rates, config);
            (outcome.plan.clone(), Some(outcome))
        }
        Strategy::Greedy => {
            let outcome = optimize_greedy(workload, rates);
            (outcome.plan.clone(), Some(outcome))
        }
        Strategy::ASeq => (SharingPlan::non_shared(), None),
        Strategy::FlinkLike | Strategy::SpassLike => {
            return Err(CompileError::PlanInvalid(format!(
                "two-step baseline {} cannot run on the sharded runtime",
                strategy.name()
            )));
        }
    };
    let ex = ShardedExecutor::new(catalog, workload, &plan, n_shards)?;
    Ok((AnyExecutor::Sharded(ex), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_streams::ecommerce::{generate, EcommerceConfig};
    use sharon_streams::workload::{figure_2_workload, measured_rates};

    #[test]
    fn all_strategies_agree_on_results() {
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &EcommerceConfig {
                n_events: 1500,
                n_items: 8,
                events_per_sec: 500,
                ..Default::default()
            },
        );
        let workload = figure_2_workload(&mut catalog);
        let (counts, span) = measured_rates(&events);
        let rates = RateMap::from_counts(&counts, span);

        let reference = run_strategy(&catalog, &workload, &rates, Strategy::ASeq, &events).unwrap();
        assert!(!reference.is_empty(), "EC stream must produce matches");
        for strategy in [
            Strategy::Sharon,
            Strategy::Greedy,
            Strategy::FlinkLike,
            Strategy::SpassLike,
        ] {
            let got = run_strategy(&catalog, &workload, &rates, strategy, &events).unwrap();
            assert!(
                got.semantically_eq(&reference, 1e-9),
                "{} diverges from A-Seq",
                strategy.name()
            );
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Sharon.name(), "SHARON");
        assert_eq!(Strategy::FlinkLike.name(), "Flink");
    }
}
