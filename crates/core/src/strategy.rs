//! Execution strategies: the five systems compared in Section 8
//! (Figure 3's taxonomy) behind one constructor.
//!
//! Every strategy — online or two-step, sequential or sharded — is a
//! [`BatchProcessor`], so [`AnyExecutor`] is nothing but a boxed trait
//! object: one columnar operator pipeline drives the whole taxonomy, with
//! no per-strategy match arms and no row-form [`Event`] materialization on
//! any batch path.

use sharon_executor::{
    BatchProcessor, CheckpointError, CompileError, Executor, ExecutorResults, ShardedExecutor,
    ShardedOptions,
};
use sharon_optimizer::{
    optimize_greedy, optimize_sharon, OptimizeOutcome, OptimizerConfig, RateMap,
};
use sharon_query::{SharingPlan, Workload};
use sharon_twostep::{FlinkLike, SpassLike};
use sharon_types::{Catalog, Event, EventBatch};

/// Which event sequence aggregation approach to run (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Shared + online: the Sharon executor under the Sharon optimizer's
    /// optimal plan.
    Sharon,
    /// Shared + online, but under GWMIN's greedily chosen plan
    /// (Figure 16's comparison).
    Greedy,
    /// Non-shared + online: A-Seq — every query independent.
    ASeq,
    /// Non-shared + two-step: the Flink-like baseline (constructs
    /// sequences).
    FlinkLike,
    /// Shared construction + two-step: the SPASS-like baseline.
    SpassLike,
}

impl Strategy {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Sharon => "SHARON",
            Strategy::Greedy => "Greedy",
            Strategy::ASeq => "A-Seq",
            Strategy::FlinkLike => "Flink",
            Strategy::SpassLike => "SPASS",
        }
    }
}

/// A uniformly driven executor of any strategy: pure trait dispatch over
/// the one [`BatchProcessor`] pipeline every strategy implements.
pub struct AnyExecutor {
    inner: Box<dyn BatchProcessor>,
}

impl AnyExecutor {
    /// Wrap any [`BatchProcessor`].
    pub fn new(inner: Box<dyn BatchProcessor>) -> Self {
        AnyExecutor { inner }
    }

    /// Process one event.
    pub fn process(&mut self, e: &Event) {
        self.inner.process_event(e);
    }

    /// Process a time-ordered batch of row-form events.
    pub fn process_batch(&mut self, events: &[Event]) {
        self.inner.process_events(events);
    }

    /// Process a time-ordered columnar batch — every strategy's native
    /// stateless-scan → stateful-dispatch pipeline (the online engines'
    /// columnar hot path, the sharded runtime's route-once fan-out, the
    /// baselines' per-scope scans). No per-row [`Event`] is materialized.
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        self.inner.process_columnar(batch);
    }

    /// Enable event-time processing: tolerate out-of-order input up to
    /// `lateness_ms` milliseconds (drop-and-count beyond). Must be called
    /// before any ingestion. Panics for the sharded runtime, whose
    /// engines are configured at spawn — set
    /// [`ShardedOptions::lateness`] there instead.
    pub fn set_lateness(&mut self, lateness_ms: u64) {
        self.inner.set_lateness(lateness_ms);
    }

    /// Late rows dropped by the event-time gate so far (0 when no gate;
    /// the sharded runtime reports through the global
    /// [`sharon_metrics::late_rows_dropped`] counter instead).
    pub fn late_rows_dropped(&self) -> u64 {
        self.inner.late_rows_dropped()
    }

    /// Flush and return results.
    pub fn finish(self) -> ExecutorResults {
        self.inner.finish().0
    }

    /// Flush and return `(results, events_matched)`. Unlike
    /// [`AnyExecutor::events_matched`], the count here is exact for the
    /// sharded runtime too — it is read after all workers drain.
    pub fn finish_with_matched(self) -> (ExecutorResults, u64) {
        self.inner.finish()
    }

    /// Events that passed routing/predicates/grouping (online engines;
    /// the sharded runtime reports the workers' last published counts,
    /// which trail ingestion by at most the in-flight batches) or zero
    /// for the two-step baselines, which do not track it.
    pub fn events_matched(&self) -> u64 {
        self.inner.events_matched()
    }

    /// State-size proxy: live aggregate cells / buffered events /
    /// materialized matches (zero for the sharded runtime, whose state
    /// lives on its worker threads).
    pub fn state_size(&self) -> usize {
        self.inner.state_size()
    }

    /// Per-scope `(rows_scanned, rows_selected)` of the stateless scan —
    /// one entry per routing scope (partition, query, or baseline
    /// partition), identical across scan modes; empty when untracked.
    pub fn scan_stats(&self) -> Vec<(u64, u64)> {
        self.inner.scan_stats()
    }
}

impl From<Executor> for AnyExecutor {
    fn from(ex: Executor) -> Self {
        AnyExecutor::new(Box::new(ex))
    }
}

impl From<ShardedExecutor> for AnyExecutor {
    fn from(ex: ShardedExecutor) -> Self {
        AnyExecutor::new(Box::new(ex))
    }
}

impl From<FlinkLike> for AnyExecutor {
    fn from(ex: FlinkLike) -> Self {
        AnyExecutor::new(Box::new(ex))
    }
}

impl From<SpassLike> for AnyExecutor {
    fn from(ex: SpassLike) -> Self {
        AnyExecutor::new(Box::new(ex))
    }
}

/// Build the executor (and optimizer outcome, when one runs) for a
/// strategy.
pub fn build_executor(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
    match strategy {
        Strategy::Sharon => {
            let outcome = optimize_sharon(workload, rates, config);
            let ex = Executor::new(catalog, workload, &outcome.plan)?;
            Ok((ex.into(), Some(outcome)))
        }
        Strategy::Greedy => {
            let outcome = optimize_greedy(workload, rates);
            let ex = Executor::new(catalog, workload, &outcome.plan)?;
            Ok((ex.into(), Some(outcome)))
        }
        Strategy::ASeq => {
            let ex = Executor::non_shared(catalog, workload)?;
            Ok((ex.into(), None))
        }
        Strategy::FlinkLike => Ok((FlinkLike::new(catalog, workload)?.into(), None)),
        Strategy::SpassLike => {
            // SPASS shares *construction*; give it the same optimal plan so
            // its shared segments match Sharon's (the paper gives SPASS its
            // own sharing optimizer for construction)
            let outcome = optimize_sharon(workload, rates, config);
            let ex = SpassLike::new(catalog, workload, &outcome.plan)?;
            Ok((ex.into(), Some(outcome)))
        }
    }
}

/// Convenience: run `events` under `strategy` and return the results.
pub fn run_strategy(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    events: &[Event],
) -> Result<ExecutorResults, CompileError> {
    let (mut ex, _) = build_executor(
        catalog,
        workload,
        rates,
        strategy,
        &OptimizerConfig::default(),
    )?;
    for e in events {
        ex.process(e);
    }
    Ok(ex.finish())
}

/// Build an online executor for an explicit, externally produced plan
/// (used by dynamic plan migration and the Figure 16 bench).
pub fn executor_for_plan(
    catalog: &Catalog,
    workload: &Workload,
    plan: &SharingPlan,
) -> Result<Executor, CompileError> {
    Executor::new(catalog, workload, plan)
}

/// Deprecated free-function form of the sharded build — construct through
/// [`crate::SharonBuilder`] instead, which owns the full option surface
/// (`strategy`, `shards`, `pipeline_depth`, `lateness`, `checkpoint`,
/// `scan_mode`, `spill`, …) behind one fluent call chain.
#[deprecated(
    since = "0.9.0",
    note = "use SharonBuilder::new(..).shards(n).pipeline_depth(d)"
)]
pub fn build_sharded_executor(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
    n_shards: usize,
    pipeline_depth: usize,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
    build_sharded_any(
        catalog,
        workload,
        rates,
        strategy,
        config,
        n_shards,
        ShardedOptions {
            pipeline_depth,
            ..ShardedOptions::default()
        },
    )
}

/// The sharing plan a strategy executes under (and the optimizer outcome
/// that produced it, when an optimizer runs): the single source of truth
/// shared by the build and resume paths, so a resumed run always compiles
/// the same partitions the checkpointing run did.
pub(crate) fn strategy_plan(
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
) -> (SharingPlan, Option<OptimizeOutcome>) {
    match strategy {
        Strategy::Sharon | Strategy::SpassLike => {
            let outcome = optimize_sharon(workload, rates, config);
            (outcome.plan.clone(), Some(outcome))
        }
        Strategy::Greedy => {
            let outcome = optimize_greedy(workload, rates);
            (outcome.plan.clone(), Some(outcome))
        }
        Strategy::ASeq | Strategy::FlinkLike => (SharingPlan::non_shared(), None),
    }
}

/// Deprecated free-function form of the fully optioned sharded build —
/// construct through [`crate::SharonBuilder`] instead.
#[deprecated(
    since = "0.9.0",
    note = "use SharonBuilder with checkpoint/spill/fault setters"
)]
pub fn build_sharded_executor_with_options(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
    n_shards: usize,
    options: ShardedOptions,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
    build_sharded_any(
        catalog, workload, rates, strategy, config, n_shards, options,
    )
}

/// Build a sharded parallel executor under `strategy` with the full
/// durability-capable option set (spill tier, periodic checkpoints, fault
/// injection — see [`ShardedOptions`]). The single sharded construction
/// path behind [`crate::SharonBuilder`] and the deprecated free functions.
///
/// Every strategy shards: the online engines run one engine set per
/// worker ([`ShardedExecutor::new`]), and the two-step baselines run one
/// full baseline instance per worker behind their own route-once,
/// scope-deduplicated routing ([`FlinkLike::sharded`] /
/// [`SpassLike::sharded`]) — making figure-13 comparisons
/// apples-to-apples columnar at any shard count.
///
/// Only the online strategies (Sharon / Greedy / A-Seq) host the
/// durability tier; passing checkpoint, spill, or fault options with a
/// two-step baseline panics — the baselines' processors cannot serialize
/// their state, and silently running without durability would be worse.
pub(crate) fn build_sharded_any(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
    n_shards: usize,
    options: ShardedOptions,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
    let (plan, outcome) = strategy_plan(workload, rates, strategy, config);
    let (ex, outcome) = match strategy {
        Strategy::Sharon | Strategy::Greedy | Strategy::ASeq => {
            let ex = ShardedExecutor::with_options(catalog, workload, &plan, n_shards, options)?;
            (ex, outcome)
        }
        Strategy::FlinkLike => {
            assert_durability_free(&options, strategy);
            let ex = FlinkLike::sharded_with_routing(
                catalog,
                workload,
                n_shards,
                options.batch_size,
                options.pipeline_depth,
                options.lateness,
                options.routers,
            )?;
            (ex, None)
        }
        Strategy::SpassLike => {
            assert_durability_free(&options, strategy);
            let ex = SpassLike::sharded_with_routing(
                catalog,
                workload,
                &plan,
                n_shards,
                options.batch_size,
                options.pipeline_depth,
                options.lateness,
                options.routers,
            )?;
            (ex, outcome)
        }
    };
    Ok((ex.into(), outcome))
}

/// The two-step baselines' processors cannot serialize their state, so
/// durability options on them are a configuration error — and silently
/// dropping the options would be worse than refusing.
fn assert_durability_free(options: &ShardedOptions, strategy: Strategy) {
    assert!(
        options.checkpoint.is_none() && options.spill.is_none() && options.fault.is_none(),
        "the {} two-step baseline does not support checkpoint/spill/fault options",
        strategy.name()
    );
}

/// Resume a sharded run of an **online** strategy (Sharon / Greedy /
/// A-Seq) from the latest complete checkpoint in `options.checkpoint`.
///
/// Returns the executor, the optimizer outcome (re-derived — the
/// optimizer is deterministic for a given workload and rate map, so the
/// plan matches the checkpointing run), and the stream offset to replay
/// from: re-ingest every event from that offset on and the results are
/// identical to an uninterrupted run.
pub fn resume_sharded_executor(
    catalog: &Catalog,
    workload: &Workload,
    rates: &RateMap,
    strategy: Strategy,
    config: &OptimizerConfig,
    n_shards: usize,
    options: ShardedOptions,
) -> Result<(AnyExecutor, Option<OptimizeOutcome>, u64), CheckpointError> {
    if matches!(strategy, Strategy::FlinkLike | Strategy::SpassLike) {
        return Err(CheckpointError::Mismatch(format!(
            "the {} two-step baseline does not support checkpoint/resume",
            strategy.name()
        )));
    }
    let (plan, outcome) = strategy_plan(workload, rates, strategy, config);
    let (ex, offset) = ShardedExecutor::resume(catalog, workload, &plan, n_shards, options)?;
    Ok((ex.into(), outcome, offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_streams::ecommerce::{generate, EcommerceConfig};
    use sharon_streams::workload::{figure_2_workload, measured_rates};

    #[test]
    fn all_strategies_agree_on_results() {
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &EcommerceConfig {
                n_events: 1500,
                n_items: 8,
                events_per_sec: 500,
                ..Default::default()
            },
        );
        let workload = figure_2_workload(&mut catalog);
        let (counts, span) = measured_rates(&events);
        let rates = RateMap::from_counts(&counts, span);

        let reference = run_strategy(&catalog, &workload, &rates, Strategy::ASeq, &events).unwrap();
        assert!(!reference.is_empty(), "EC stream must produce matches");
        for strategy in [
            Strategy::Sharon,
            Strategy::Greedy,
            Strategy::FlinkLike,
            Strategy::SpassLike,
        ] {
            let got = run_strategy(&catalog, &workload, &rates, strategy, &events).unwrap();
            assert!(
                got.semantically_eq(&reference, 1e-9),
                "{} diverges from A-Seq",
                strategy.name()
            );
        }
    }

    #[test]
    fn all_strategies_shard_via_columnar_trait_dispatch() {
        // the trait-dispatch acceptance check: every strategy, sequential
        // and sharded, driven purely through AnyExecutor::process_columnar
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &EcommerceConfig {
                n_events: 1200,
                n_items: 8,
                events_per_sec: 500,
                ..Default::default()
            },
        );
        let workload = figure_2_workload(&mut catalog);
        let (counts, span) = measured_rates(&events);
        let rates = RateMap::from_counts(&counts, span);
        let batch = sharon_types::EventBatch::from_events(&events);
        let cfg = OptimizerConfig::default();

        let reference = run_strategy(&catalog, &workload, &rates, Strategy::ASeq, &events).unwrap();
        for strategy in [
            Strategy::Sharon,
            Strategy::Greedy,
            Strategy::ASeq,
            Strategy::FlinkLike,
            Strategy::SpassLike,
        ] {
            let (mut sequential, _) =
                build_executor(&catalog, &workload, &rates, strategy, &cfg).unwrap();
            sequential.process_columnar(&batch);
            let got = sequential.finish();
            assert!(
                got.semantically_eq(&reference, 1e-9),
                "{} columnar diverges",
                strategy.name()
            );

            for (shards, depth) in [(1usize, 0usize), (1, 2), (3, 0), (3, 2)] {
                let (mut sharded, _) = crate::SharonBuilder::new(&catalog, &workload, &rates)
                    .strategy(strategy)
                    .optimizer_config(cfg.clone())
                    .shards(shards)
                    .pipeline_depth(depth)
                    .build_executor()
                    .unwrap();
                sharded.process_columnar(&batch);
                let got = sharded.finish();
                assert!(
                    got.semantically_eq(&reference, 1e-9),
                    "{} sharded/{shards} (pipeline {depth}) diverges",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Sharon.name(), "SHARON");
        assert_eq!(Strategy::FlinkLike.name(), "Flink");
    }

    /// The deprecated free-function constructors must keep working until
    /// removal — they are the published pre-builder API.
    #[test]
    #[allow(deprecated)]
    fn deprecated_builders_still_build() {
        let mut catalog = Catalog::new();
        let events = generate(
            &mut catalog,
            &EcommerceConfig {
                n_events: 600,
                n_items: 8,
                events_per_sec: 500,
                ..Default::default()
            },
        );
        let workload = figure_2_workload(&mut catalog);
        let rates = RateMap::uniform(100.0);
        let cfg = OptimizerConfig::default();
        let reference = run_strategy(&catalog, &workload, &rates, Strategy::ASeq, &events).unwrap();

        let batch = sharon_types::EventBatch::from_events(&events);
        let (mut a, _) =
            build_sharded_executor(&catalog, &workload, &rates, Strategy::Sharon, &cfg, 2, 0)
                .unwrap();
        a.process_columnar(&batch);
        assert!(a.finish().semantically_eq(&reference, 1e-9));

        let (mut b, _) = build_sharded_executor_with_options(
            &catalog,
            &workload,
            &rates,
            Strategy::Sharon,
            &cfg,
            2,
            ShardedOptions::default(),
        )
        .unwrap();
        b.process_columnar(&batch);
        assert!(b.finish().semantically_eq(&reference, 1e-9));
    }
}
