//! # sharon
//!
//! A from-scratch Rust implementation of **Sharon: Shared Online Event
//! Sequence Aggregation** (Poppe, Rozet, Lei, Rundensteiner, Maier —
//! ICDE 2018).
//!
//! Sharon evaluates workloads of event sequence aggregation queries over
//! high-rate streams *online* (without constructing event sequences) and
//! *shared* (aggregating common sub-patterns once for many queries). Its
//! optimizer encodes sharing candidates, benefits, and conflicts into the
//! SHARON graph, maps plan selection to Maximum Weight Independent Set,
//! prunes the search with GWMIN's guaranteed weight, and returns the
//! optimal sharing plan for the runtime executor.
//!
//! ## Quickstart
//!
//! ```
//! use sharon::prelude::*;
//!
//! // 1. declare the workload in the SASE-style surface syntax
//! let mut catalog = Catalog::new();
//! let workload = parse_workload(&mut catalog, [
//!     "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 10 s SLIDE 1 s",
//!     "RETURN COUNT(*) PATTERN SEQ(A, B, D) WITHIN 10 s SLIDE 1 s",
//! ]).unwrap();
//!
//! // 2. optimize + execute
//! let rates = RateMap::uniform(100.0);
//! let mut fw = SharonBuilder::new(&catalog, &workload, &rates)
//!     .build()
//!     .unwrap();
//! let (a, b, c) = (catalog.lookup("A").unwrap(), catalog.lookup("B").unwrap(),
//!                  catalog.lookup("C").unwrap());
//! for (ty, t) in [(a, 10), (b, 20), (c, 30)] {
//!     fw.process(&Event::new(ty, Timestamp::from_millis(t)));
//! }
//! let results = fw.finish();
//! assert_eq!(results.total_count(QueryId(0)), 1);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`sharon_types`] | events, values, catalogs, windows, streams |
//! | [`sharon_query`] | patterns, queries, parser, sharing plans |
//! | [`sharon_executor`] | the online Non-Shared (A-Seq) and Shared executors |
//! | [`sharon_twostep`] | the Flink-like and SPASS-like two-step baselines |
//! | [`sharon_optimizer`] | benefit model, SHARON graph, GWMIN, plan finder |
//! | [`sharon_streams`] | TX / LR / EC stream + workload generators |
//! | [`sharon_metrics`] | peak-memory allocator, latency/throughput tables |

#![warn(missing_docs)]

pub mod builder;
pub mod framework;
pub mod session;
pub mod strategy;

pub use builder::SharonBuilder;
pub use framework::SharonFramework;
pub use session::{QueryHandle, SessionConfig, SharonSession};
#[allow(deprecated)]
pub use strategy::{
    build_executor, build_sharded_executor, build_sharded_executor_with_options, executor_for_plan,
    resume_sharded_executor, run_strategy, AnyExecutor, Strategy,
};

// Re-export the component crates under stable names.
pub use sharon_executor as executor;
pub use sharon_metrics as metrics;
pub use sharon_optimizer as optimizer;
pub use sharon_query as query;
pub use sharon_streams as streams;
pub use sharon_twostep as twostep;
pub use sharon_types as types;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::builder::SharonBuilder;
    pub use crate::framework::SharonFramework;
    pub use crate::session::{QueryHandle, SessionConfig, SharonSession};
    pub use crate::strategy::{run_strategy, Strategy};
    pub use sharon_executor::{Executor, ExecutorResults, RuntimeOptions, ShardedExecutor};
    pub use sharon_optimizer::{
        optimize_exhaustive, optimize_greedy, optimize_sharon, OptimizerConfig, RateMap,
    };
    pub use sharon_query::{
        parse_query, parse_workload, AggFunc, Pattern, PlanCandidate, Query, QueryId, SharingPlan,
        Workload,
    };
    pub use sharon_types::{
        Catalog, Event, EventBatch, EventStream, EventTypeId, GroupKey, Schema, SortedVecStream,
        TimeDelta, Timestamp, Value, WindowSpec,
    };
}
