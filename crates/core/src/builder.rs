//! Fluent construction of every Sharon runtime shape.
//!
//! [`SharonBuilder`] replaces the old constructor zoo
//! (`SharonFramework::{new, with_strategy, with_shards}`,
//! `build_sharded_executor{,_with_options}`) with one chain that scales
//! from "defaults, sequential" to "sharded, pipelined, checkpointed,
//! spilling, fault-injected":
//!
//! ```
//! use sharon::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! let workload = parse_workload(&mut catalog, [
//!     "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 1 s",
//! ]).unwrap();
//! let rates = RateMap::uniform(100.0);
//!
//! let mut fw = SharonBuilder::new(&catalog, &workload, &rates)
//!     .shards(2)
//!     .pipeline_depth(0)
//!     .build()
//!     .unwrap();
//! # let _ = fw.finish();
//! ```
//!
//! The terminal calls are [`SharonBuilder::build`] (a
//! [`SharonFramework`]), [`SharonBuilder::build_executor`] (the raw
//! [`AnyExecutor`] plus optimizer outcome), and [`SharonBuilder::session`]
//! (a live [`SharonSession`] supporting runtime
//! query churn).

use crate::framework::SharonFramework;
use crate::session::{SessionConfig, SharonSession};
use crate::strategy::{build_executor, build_sharded_any, AnyExecutor, Strategy};
use sharon_executor::{
    set_scan_mode, CheckpointConfig, CompileError, FaultPlan, RuntimeOptions, ScanMode,
    ShardedOptions, SpillConfig, SplitConfig,
};
use sharon_optimizer::{OptimizeOutcome, OptimizerConfig, RateMap};
use sharon_query::Workload;
use sharon_types::Catalog;

/// Fluent builder for every executor shape: strategy × sharding ×
/// pipelining × durability × event-time × scan mode, one setter each.
///
/// Unset knobs keep the engine defaults ([`ShardedOptions::default`],
/// [`Strategy::Sharon`], [`OptimizerConfig::default`]). `shards(0)` (the
/// default) builds the sequential engine; `shards(n ≥ 1)` the sharded
/// runtime.
#[derive(Clone)]
pub struct SharonBuilder<'a> {
    catalog: &'a Catalog,
    workload: &'a Workload,
    rates: &'a RateMap,
    strategy: Strategy,
    config: OptimizerConfig,
    shards: usize,
    options: ShardedOptions,
    scan: Option<ScanMode>,
}

impl<'a> SharonBuilder<'a> {
    /// Start a build for `workload` over `catalog`, with `rates` as the
    /// optimizer's event-rate estimates.
    pub fn new(catalog: &'a Catalog, workload: &'a Workload, rates: &'a RateMap) -> Self {
        SharonBuilder {
            catalog,
            workload,
            rates,
            strategy: Strategy::Sharon,
            config: OptimizerConfig::default(),
            shards: 0,
            options: ShardedOptions::default(),
            scan: None,
        }
    }

    /// Select the execution [`Strategy`] (default [`Strategy::Sharon`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Use an explicit optimizer configuration (default
    /// [`OptimizerConfig::default`]).
    pub fn optimizer_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Run on the sharded parallel runtime with `n` worker shards
    /// (`0` = the sequential engine; the default).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Ingest pipeline depth for the sharded runtime: `0` routes in-line
    /// on the ingest thread, `n ≥ 1` overlaps routing with execution on a
    /// dedicated router thread behind an `n`-deep job ring. Default:
    /// [`sharon_executor::default_pipeline_depth`] (honours
    /// `SHARON_PIPELINE`).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.options.pipeline_depth = depth;
        self
    }

    /// Router threads in the sharded runtime's routing plane: `1` (the
    /// default) is the classic single router, `n ≥ 2` partitions the
    /// compiled scopes across `n` router threads by cost estimate —
    /// requires `pipeline_depth ≥ 1`. Default:
    /// [`sharon_executor::default_routers`] (honours `SHARON_ROUTERS`).
    pub fn routers(mut self, n: usize) -> Self {
        self.options.routers = n;
        self
    }

    /// Columnar batch size for the sharded runtime's internal rings
    /// (default [`sharon_executor::DEFAULT_BATCH_SIZE`]).
    pub fn batch_size(mut self, rows: usize) -> Self {
        self.options.batch_size = rows;
        self
    }

    /// Routing split tuning for the sharded runtime (see [`SplitConfig`]).
    pub fn split(mut self, split: SplitConfig) -> Self {
        self.options.split = split;
        self
    }

    /// Enable event-time processing with `lateness_ms` milliseconds of
    /// allowed out-of-orderness (drop-and-count beyond).
    pub fn lateness(mut self, lateness_ms: u64) -> Self {
        self.options.lateness = Some(lateness_ms);
        self
    }

    /// Enable periodic consistent checkpoints (sharded online strategies
    /// only; see [`CheckpointConfig`]).
    pub fn checkpoint(mut self, config: CheckpointConfig) -> Self {
        self.options.checkpoint = Some(config);
        self
    }

    /// Inject a fault mid-stream (crash-recovery tests; see
    /// [`FaultPlan`]).
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.options.fault = Some(plan);
        self
    }

    /// Spill cold group state to disk beyond a budget (sharded online
    /// strategies only; see [`SpillConfig`]).
    pub fn spill(mut self, config: SpillConfig) -> Self {
        self.options.spill = Some(config);
        self
    }

    /// Select the stateless-scan kernel implementation.
    ///
    /// **Process-global:** the scan mode is a process-wide override (the
    /// kernels are selected once per scan site), so this applies to every
    /// executor in the process from `build` time on, not just the one
    /// being built — last builder wins.
    pub fn scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan = Some(mode);
        self
    }

    /// Apply every knob parsed from the `SHARON_*` environment surface
    /// (see [`RuntimeOptions`]): shard count, pipeline depth, router
    /// count, scan mode, lateness, checkpoint spec, and fault plan, each
    /// only when set.
    pub fn runtime_options(mut self, opts: &RuntimeOptions) -> Self {
        if let Some(n) = opts.shards {
            self.shards = n;
        }
        if let Some(depth) = opts.pipeline_depth {
            self.options.pipeline_depth = depth;
        }
        if let Some(n) = opts.routers {
            self.options.routers = n;
        }
        if let Some(mode) = opts.scan {
            self.scan = Some(mode);
        }
        if let Some(ms) = opts.lateness {
            self.options.lateness = Some(ms);
        }
        if let Some(ck) = &opts.checkpoint {
            self.options.checkpoint = Some(ck.clone());
        }
        if let Some(fault) = opts.fault {
            self.options.fault = Some(fault);
        }
        self
    }

    /// Build the executor and the optimizer outcome (when an optimizer
    /// runs for the chosen strategy).
    ///
    /// Panics if durability options (checkpoint / spill / fault) were set
    /// with `shards(0)` — the durability tier lives in the sharded
    /// runtime only.
    pub fn build_executor(self) -> Result<(AnyExecutor, Option<OptimizeOutcome>), CompileError> {
        if let Some(mode) = self.scan {
            set_scan_mode(Some(mode));
        }
        if self.shards == 0 {
            assert!(
                self.options.checkpoint.is_none()
                    && self.options.spill.is_none()
                    && self.options.fault.is_none(),
                "checkpoint/spill/fault require the sharded runtime — call .shards(n >= 1)"
            );
            let (mut ex, outcome) = build_executor(
                self.catalog,
                self.workload,
                self.rates,
                self.strategy,
                &self.config,
            )?;
            if let Some(ms) = self.options.lateness {
                ex.set_lateness(ms);
            }
            Ok((ex, outcome))
        } else {
            build_sharded_any(
                self.catalog,
                self.workload,
                self.rates,
                self.strategy,
                &self.config,
                self.shards,
                self.options,
            )
        }
    }

    /// Build a [`SharonFramework`] — the optimize-once, run-the-stream
    /// facade.
    pub fn build(self) -> Result<SharonFramework, CompileError> {
        let (executor, outcome) = self.build_executor()?;
        Ok(SharonFramework::from_parts(executor, outcome))
    }

    /// Start a live [`SharonSession`] hosting this workload as the
    /// initial set of attached queries, supporting runtime
    /// [`attach`](SharonSession::attach) / [`detach`](SharonSession::detach)
    /// churn with background plan re-optimization.
    ///
    /// Sessions always run the sharded runtime (`shards(0)` is promoted
    /// to one shard) and require an online strategy; see
    /// [`SharonSession`] for the option surface it supports.
    pub fn session(self, session_config: SessionConfig) -> Result<SharonSession, CompileError> {
        if let Some(mode) = self.scan {
            set_scan_mode(Some(mode));
        }
        SharonSession::start(
            self.catalog.clone(),
            self.workload,
            self.rates.clone(),
            self.strategy,
            self.config,
            self.shards.max(1),
            self.options,
            session_config,
        )
    }
}
