//! Event type interning and schemas.
//!
//! Every event belongs to an *event type* "described by a schema that
//! specifies the set of event attributes and the domains of their values"
//! (Section 2.1). Event types are referred to by name in queries (`OakSt`,
//! `Laptop`, ...) but the hot execution path only ever sees a dense integer
//! [`EventTypeId`], produced by the [`Catalog`] interner. Attribute names are
//! likewise resolved to positional [`AttrId`]s at query-compile time.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned event type.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EventTypeId(pub u32);

impl EventTypeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Positional identifier of an attribute within a type's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The attribute layout of one event type.
///
/// Attributes are positional: an event of this type stores its attribute
/// values in a `Vec<Value>` parallel to `attr_names`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    attr_names: Vec<String>,
}

impl Schema {
    /// An empty schema (events with no attributes beyond type and time).
    pub fn empty() -> Self {
        Schema {
            attr_names: Vec::new(),
        }
    }

    /// Build a schema from attribute names. Names must be unique.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        let attr_names: Vec<String> = names.into_iter().map(Into::into).collect();
        debug_assert!(
            {
                let mut sorted = attr_names.clone();
                sorted.sort();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate attribute names in schema"
        );
        Schema { attr_names }
    }

    /// Resolve an attribute name to its position.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attr_names
            .iter()
            .position(|n| n == name)
            .map(|i| AttrId(i as u16))
    }

    /// Name of the attribute at `id`.
    pub fn attr_name(&self, id: AttrId) -> Option<&str> {
        self.attr_names.get(id.index()).map(String::as_str)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attr_names.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attr_names.is_empty()
    }

    /// Iterate over attribute names in positional order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attr_names.iter().map(String::as_str)
    }
}

/// Registry of event types: name ⇄ id plus per-type schema.
///
/// The catalog is the single source of truth shared by the parser, the
/// stream generators, and the executors. Registering the same name twice
/// returns the original id (the schema of the first registration wins; use
/// [`Catalog::set_schema`] to replace it).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    names: Vec<String>,
    schemas: Vec<Schema>,
    #[serde(skip)]
    by_name: HashMap<String, EventTypeId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id. Idempotent.
    pub fn register(&mut self, name: &str) -> EventTypeId {
        self.register_with_schema(name, Schema::empty())
    }

    /// Intern `name` with an attribute schema. If the type already exists
    /// its existing schema is kept.
    pub fn register_with_schema(&mut self, name: &str, schema: Schema) -> EventTypeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = EventTypeId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.schemas.push(schema);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Replace the schema of an already-registered type.
    pub fn set_schema(&mut self, id: EventTypeId, schema: Schema) {
        self.schemas[id.index()] = schema;
    }

    /// Look up a type by name without registering it.
    pub fn lookup(&self, name: &str) -> Option<EventTypeId> {
        self.by_name.get(name).copied()
    }

    /// Name of type `id`. Panics if the id was not produced by this catalog.
    pub fn name(&self, id: EventTypeId) -> &str {
        &self.names[id.index()]
    }

    /// Schema of type `id`.
    pub fn schema(&self, id: EventTypeId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EventTypeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventTypeId(i as u32), n.as_str()))
    }

    /// Rebuild the name→id index (needed after deserialization, where the
    /// map is skipped).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), EventTypeId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut c = Catalog::new();
        let a = c.register("OakSt");
        let b = c.register("MainSt");
        assert_ne!(a, b);
        assert_eq!(c.register("OakSt"), a);
        assert_eq!(c.len(), 2);
        assert_eq!(c.name(a), "OakSt");
        assert_eq!(c.lookup("MainSt"), Some(b));
        assert_eq!(c.lookup("ElmSt"), None);
    }

    #[test]
    fn schemas_resolve_attributes() {
        let mut c = Catalog::new();
        let id = c.register_with_schema("Pos", Schema::new(["vehicle", "speed"]));
        let s = c.schema(id);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attr("vehicle"), Some(AttrId(0)));
        assert_eq!(s.attr("speed"), Some(AttrId(1)));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.attr_name(AttrId(1)), Some("speed"));
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["vehicle", "speed"]);
    }

    #[test]
    fn first_schema_wins_unless_replaced() {
        let mut c = Catalog::new();
        let id = c.register_with_schema("T", Schema::new(["a"]));
        let again = c.register_with_schema("T", Schema::new(["b"]));
        assert_eq!(id, again);
        assert_eq!(c.schema(id).attr("a"), Some(AttrId(0)));
        c.set_schema(id, Schema::new(["b"]));
        assert_eq!(c.schema(id).attr("b"), Some(AttrId(0)));
        assert_eq!(c.schema(id).attr("a"), None);
    }

    #[test]
    fn iteration_and_rebuild_index() {
        let mut c = Catalog::new();
        c.register("A");
        c.register("B");
        let pairs: Vec<_> = c.iter().map(|(id, n)| (id.0, n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "A".to_string()), (1, "B".to_string())]);

        // round-trip through serde loses the index; rebuild restores it
        let json = serde_json_roundtrip(&c);
        assert_eq!(json.lookup("B"), Some(EventTypeId(1)));
    }

    fn serde_json_roundtrip(c: &Catalog) -> Catalog {
        // sharon-types doesn't depend on serde_json; emulate a round trip by
        // cloning fields and clearing the index the way `#[serde(skip)]` does.
        let mut copy = c.clone();
        copy.by_name.clear();
        copy.rebuild_index();
        copy
    }

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
