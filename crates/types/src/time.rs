//! Time points and durations.
//!
//! The paper models time as a linearly ordered set of non-negative integers
//! (Section 2.1). We fix the tick to one **millisecond**: the paper's data
//! sets carry second-resolution time stamps, but high-rate synthetic streams
//! (thousands of events per second) need sub-second resolution so that the
//! strict `e_i.time < e_j.time` sequence semantics still admits matches.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, measured in milliseconds since the start of the stream.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of time in milliseconds (always non-negative).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(pub u64);

impl Timestamp {
    /// The origin of the stream clock.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from whole seconds (the paper's native resolution).
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Raw millisecond tick count.
    #[inline]
    pub fn millis(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// The timestamp `delta` earlier than `self`, saturating at the origin.
    #[inline]
    pub fn saturating_sub(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta.0))
    }
}

impl TimeDelta {
    /// The empty duration.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * 1000)
    }

    /// Construct from whole minutes (the unit of the paper's `WITHIN`
    /// clauses, e.g. "a 10-minutes long time window that slides every
    /// minute").
    #[inline]
    pub fn from_mins(mins: u64) -> Self {
        TimeDelta(mins * 60_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        TimeDelta(ms)
    }

    /// Raw millisecond count.
    #[inline]
    pub fn millis(self) -> u64 {
        self.0
    }

    /// True if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        self.since(rhs)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(60_000) && self.0 > 0 {
            write!(f, "{}min", self.0 / 60_000)
        } else if self.0.is_multiple_of(1000) && self.0 > 0 {
            write!(f, "{}s", self.0 / 1000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_and_minute_constructors() {
        assert_eq!(Timestamp::from_secs(2), Timestamp(2000));
        assert_eq!(TimeDelta::from_mins(10), TimeDelta(600_000));
        assert_eq!(TimeDelta::from_secs(3), TimeDelta(3000));
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(5);
        assert_eq!(t + TimeDelta::from_secs(2), Timestamp::from_secs(7));
        assert_eq!(
            Timestamp::from_secs(7) - Timestamp::from_secs(5),
            TimeDelta::from_secs(2)
        );
        // saturating: `since` never goes negative
        assert_eq!(
            Timestamp::from_secs(1).since(Timestamp::from_secs(9)),
            TimeDelta::ZERO
        );
        assert_eq!(
            Timestamp::from_secs(1).saturating_sub(TimeDelta::from_secs(9)),
            Timestamp::ZERO
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(TimeDelta::from_mins(10).to_string(), "10min");
        assert_eq!(TimeDelta::from_secs(3).to_string(), "3s");
        assert_eq!(TimeDelta::from_millis(7).to_string(), "7ms");
        assert_eq!(Timestamp::from_millis(7).to_string(), "7ms");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(TimeDelta(1) < TimeDelta(2));
    }
}
