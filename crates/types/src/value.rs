//! Typed attribute values.
//!
//! Events carry attributes whose values are integers, floats, or strings
//! (Section 2.1: "described by a schema that specifies the set of event
//! attributes and the domains of their values"). Values must be hashable and
//! comparable so they can serve as `GROUP BY` keys and predicate operands;
//! floats are compared by their IEEE-754 bit pattern for hashing purposes.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A typed attribute value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer (identifiers, counters).
    Int(i64),
    /// A 64-bit float (speeds, prices).
    Float(f64),
    /// An interned string (shared, cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Numeric view of this value, if it is numeric.
    ///
    /// Aggregation functions (`SUM`, `MIN`, `MAX`, `AVG`) operate on the
    /// numeric domain; strings return `None`.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Integer view of this value, if it is an integer.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of this value, if it is a string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            // cross-type numeric equality so predicates like `price = 5`
            // work whether the attribute is int or float
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // hash ints and integral floats identically so that
            // `Int(5) == Float(5.0)` implies equal hashes
            Value::Int(i) => {
                state.write_u8(0);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_u8(0);
                    state.write_i64(*f as i64);
                } else {
                    state.write_u8(1);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    /// Total order within a type; cross-type numeric comparisons allowed;
    /// numerics and strings are incomparable.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality_and_hash() {
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Float(5.0)));
        assert_ne!(Value::Int(5), Value::Float(5.5));
    }

    #[test]
    fn string_values() {
        let a = Value::from("MainSt");
        let b = Value::str("MainSt");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), Some("MainSt"));
        assert_eq!(a.as_f64(), None);
    }

    #[test]
    fn ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
        assert_eq!(Value::Int(1).partial_cmp(&Value::from("a")), None);
    }

    #[test]
    fn nan_is_self_equal_for_hashing_purposes() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::from("x").to_string(), "x");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::Float(0.0).type_name(), "float");
        assert_eq!(Value::from("").type_name(), "string");
    }
}
