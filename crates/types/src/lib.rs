//! # sharon-types
//!
//! Foundational data model for the Sharon shared online event sequence
//! aggregation system (Poppe et al., *Sharon: Shared Online Event Sequence
//! Aggregation*, ICDE 2018).
//!
//! This crate defines the pieces of Section 2.1 of the paper:
//!
//! * [`Timestamp`] / [`TimeDelta`] — time is a linearly ordered set of
//!   non-negative ticks (we use milliseconds, so second-resolution sources
//!   simply multiply by 1000).
//! * [`Value`] — typed attribute values carried by events.
//! * [`EventTypeId`] and the [`Catalog`] — interned event types and their
//!   attribute [`Schema`]s.
//! * [`Event`] — a timestamped message of a particular event type, with
//!   small attribute lists stored inline ([`AttrVec`]).
//! * [`EventBatch`] — a columnar (struct-of-arrays) slice of the stream,
//!   the unit of work of every hot execution path.
//! * [`WindowSpec`] — the `WITHIN`/`SLIDE` sliding-window clause together
//!   with the window instance arithmetic used by the executor.
//! * [`GroupKey`] — values of the `GROUP BY` attributes.
//!
//! Everything downstream (queries, executors, optimizers, generators) builds
//! on these types; none of them depends on any external CEP system.

#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod event;
pub mod group;
pub mod hash;
pub mod stream;
pub mod time;
pub mod value;
pub mod window;

pub use batch::EventBatch;
pub use catalog::{AttrId, Catalog, EventTypeId, Schema};
pub use event::{AttrVec, Event};
pub use group::GroupKey;
pub use hash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use stream::{EventStream, SortedVecStream};
pub use time::{TimeDelta, Timestamp};
pub use value::Value;
pub use window::{WindowInstance, WindowSpec};
