//! Event streams.
//!
//! "Events are sent by event producers (e.g., vehicles) on an input event
//! stream `I`" (Section 2.1). All Sharon executors consume events in
//! non-decreasing timestamp order; [`EventStream`] is the minimal trait for
//! such ordered sources, and [`SortedVecStream`] is the in-memory
//! implementation used by tests and benchmarks.

use crate::batch::EventBatch;
use crate::event::Event;

/// An ordered source of events.
///
/// Implementations must yield events in non-decreasing timestamp order;
/// executors debug-assert this.
pub trait EventStream {
    /// Produce the next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<Event>;

    /// Append up to `max` events to `out`, returning how many were
    /// produced (0 at end of stream). Batch-oriented executors use this to
    /// amortize per-event dispatch; `out` is a caller-owned reusable
    /// buffer, so steady-state batching performs no allocation.
    fn next_batch(&mut self, max: usize, out: &mut Vec<Event>) -> usize {
        let before = out.len();
        while out.len() - before < max {
            match self.next_event() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out.len() - before
    }

    /// Append up to `max` events to the columnar batch `out`, returning
    /// how many were produced (0 at end of stream). This is the preferred
    /// ingestion form — the executors' hot paths are columnar — and `out`
    /// is a caller-owned reusable batch, so steady-state ingestion performs
    /// no allocation. Sources that hold columnar data should override this
    /// to avoid materializing row-form events.
    fn next_batch_columnar(&mut self, max: usize, out: &mut EventBatch) -> usize {
        let before = out.len();
        while out.len() - before < max {
            match self.next_event() {
                Some(e) => out.push_event(&e),
                None => break,
            }
        }
        out.len() - before
    }

    /// Drain the stream into a vector (convenience for tests/benches).
    fn collect_events(mut self) -> Vec<Event>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(e) = self.next_event() {
            out.push(e);
        }
        out
    }
}

/// An in-memory stream backed by a vector of events.
///
/// The constructor sorts by timestamp (stably, so the relative order of
/// same-timestamp events is preserved).
#[derive(Debug, Clone)]
pub struct SortedVecStream {
    events: std::vec::IntoIter<Event>,
}

impl SortedVecStream {
    /// Build a stream from events in arbitrary order.
    pub fn new(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.time);
        SortedVecStream {
            events: events.into_iter(),
        }
    }

    /// Build a stream from events already sorted by time.
    ///
    /// Debug builds verify the ordering.
    pub fn presorted(events: Vec<Event>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].time <= w[1].time),
            "presorted stream must be ordered by time"
        );
        SortedVecStream {
            events: events.into_iter(),
        }
    }

    /// Number of remaining events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.events.len() == 0
    }
}

impl EventStream for SortedVecStream {
    fn next_event(&mut self) -> Option<Event> {
        self.events.next()
    }
}

impl Iterator for SortedVecStream {
    type Item = Event;
    fn next(&mut self) -> Option<Event> {
        self.next_event()
    }
}

impl<I: Iterator<Item = Event>> EventStream for std::iter::Peekable<I> {
    fn next_event(&mut self) -> Option<Event> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EventTypeId;
    use crate::time::Timestamp;

    fn ev(ty: u32, t: u64) -> Event {
        Event::new(EventTypeId(ty), Timestamp(t))
    }

    #[test]
    fn new_sorts_by_time() {
        let s = SortedVecStream::new(vec![ev(0, 3), ev(1, 1), ev(2, 2)]);
        let times: Vec<u64> = s.map(|e| e.time.millis()).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn stable_for_ties() {
        let s = SortedVecStream::new(vec![ev(0, 1), ev(1, 1), ev(2, 1)]);
        let tys: Vec<u32> = s.map(|e| e.ty.0).collect();
        assert_eq!(tys, vec![0, 1, 2]);
    }

    #[test]
    fn collect_events_drains() {
        let s = SortedVecStream::presorted(vec![ev(0, 1), ev(0, 2)]);
        assert_eq!(s.len(), 2);
        let all = s.collect_events();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn next_batch_fills_in_chunks() {
        let mut s = SortedVecStream::presorted((0..7).map(|t| ev(0, t)).collect());
        let mut buf = Vec::new();
        assert_eq!(s.next_batch(3, &mut buf), 3);
        assert_eq!(s.next_batch(3, &mut buf), 3);
        assert_eq!(s.next_batch(3, &mut buf), 1);
        assert_eq!(s.next_batch(3, &mut buf), 0);
        assert_eq!(buf.len(), 7);
        assert!(buf.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn next_batch_columnar_fills_in_chunks() {
        let mut s = SortedVecStream::presorted((0..5).map(|t| ev(0, t)).collect());
        let mut batch = crate::batch::EventBatch::new();
        assert_eq!(s.next_batch_columnar(3, &mut batch), 3);
        assert_eq!(s.next_batch_columnar(3, &mut batch), 2);
        assert_eq!(s.next_batch_columnar(3, &mut batch), 0);
        assert_eq!(batch.len(), 5);
        assert!(batch.times().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty() {
        let s = SortedVecStream::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.collect_events().len(), 0);
    }
}
