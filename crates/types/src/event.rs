//! Events: timestamped, typed messages on a stream.
//!
//! "An event is a message indicating that something of interest to the
//! application happened in the real world. An event `e` has a time stamp
//! `e.time` assigned by the event source \[and\] belongs to a particular event
//! type `E`" (Section 2.1, Sharon paper).
//!
//! [`Event`] is the *row-form* representation; the executors' hot path runs
//! on the columnar [`crate::EventBatch`] and treats a standalone `Event` as
//! a one-row batch. To keep the row form cheap, attribute values live in an
//! [`AttrVec`] — a small-vector that stores up to [`AttrVec::INLINE`] values
//! inline, so the common 1–4 attribute events of the paper's streams never
//! touch the allocator.

use crate::catalog::{AttrId, EventTypeId};
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::mem::MaybeUninit;

/// Attribute values of one event: a small-vector inlining up to
/// [`AttrVec::INLINE`] values.
///
/// All of the paper's streams carry 2–3 attributes per event, so the
/// per-event `Vec<Value>` of the original row layout was a pure allocator
/// tax. An `AttrVec` holds short attribute lists inline and spills to a
/// heap `Vec` only beyond [`AttrVec::INLINE`] values. It dereferences to
/// `[Value]`, so indexing, iteration, and slicing work as before.
pub struct AttrVec(Repr);

enum Repr {
    /// `slots[..len]` are initialized.
    Inline {
        len: u8,
        slots: [MaybeUninit<Value>; AttrVec::INLINE],
    },
    Heap(Vec<Value>),
}

impl AttrVec {
    /// Number of attribute values stored without a heap allocation.
    pub const INLINE: usize = 4;

    /// An empty attribute list (no allocation).
    pub fn new() -> Self {
        AttrVec(Repr::Inline {
            len: 0,
            slots: [const { MaybeUninit::uninit() }; Self::INLINE],
        })
    }

    /// Number of attribute values.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True if there are no attribute values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the values have spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.0, Repr::Heap(_))
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, slots } => {
                // SAFETY: the first `len` slots are initialized (invariant).
                unsafe { std::slice::from_raw_parts(slots.as_ptr().cast::<Value>(), *len as usize) }
            }
            Repr::Heap(v) => v,
        }
    }

    /// The values as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Value] {
        match &mut self.0 {
            Repr::Inline { len, slots } => {
                // SAFETY: the first `len` slots are initialized (invariant).
                unsafe {
                    std::slice::from_raw_parts_mut(
                        slots.as_mut_ptr().cast::<Value>(),
                        *len as usize,
                    )
                }
            }
            Repr::Heap(v) => v,
        }
    }

    /// Append a value, spilling to the heap past [`AttrVec::INLINE`].
    pub fn push(&mut self, value: Value) {
        match &mut self.0 {
            Repr::Inline { len, slots } => {
                let n = *len as usize;
                if n < Self::INLINE {
                    slots[n].write(value);
                    *len = (n + 1) as u8;
                } else {
                    let mut vec = Vec::with_capacity(Self::INLINE * 2);
                    for slot in slots.iter() {
                        // SAFETY: all INLINE slots are initialized (len ==
                        // INLINE); setting len = 0 below transfers ownership
                        // so Drop will not touch them again.
                        vec.push(unsafe { slot.assume_init_read() });
                    }
                    *len = 0;
                    vec.push(value);
                    self.0 = Repr::Heap(vec);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }
}

impl Drop for Repr {
    fn drop(&mut self) {
        if let Repr::Inline { len, slots } = self {
            for slot in &mut slots[..*len as usize] {
                // SAFETY: the first `len` slots are initialized.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

impl Default for AttrVec {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for AttrVec {
    fn clone(&self) -> Self {
        Self::from(self.as_slice())
    }
}

impl From<Vec<Value>> for AttrVec {
    fn from(values: Vec<Value>) -> Self {
        if values.len() > Self::INLINE {
            AttrVec(Repr::Heap(values))
        } else {
            let mut out = Self::new();
            for v in values {
                out.push(v);
            }
            out
        }
    }
}

impl From<&[Value]> for AttrVec {
    fn from(values: &[Value]) -> Self {
        let mut out = if values.len() > Self::INLINE {
            AttrVec(Repr::Heap(Vec::with_capacity(values.len())))
        } else {
            Self::new()
        };
        for v in values {
            out.push(v.clone());
        }
        out
    }
}

impl<const N: usize> From<[Value; N]> for AttrVec {
    fn from(values: [Value; N]) -> Self {
        values.into_iter().collect()
    }
}

impl FromIterator<Value> for AttrVec {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut out = Self::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl std::ops::Deref for AttrVec {
    type Target = [Value];
    #[inline]
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AttrVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [Value] {
        self.as_mut_slice()
    }
}

impl<'a> IntoIterator for &'a AttrVec {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for AttrVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Value]> for AttrVec {
    fn eq(&self, other: &[Value]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for AttrVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// A single event (row form).
///
/// Attribute values are positional, parallel to the [`crate::Schema`] of the
/// event's type. Events are cheap to clone (string values are `Arc`-interned
/// and short attribute lists live inline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The event's type.
    pub ty: EventTypeId,
    /// The source-assigned time stamp.
    pub time: Timestamp,
    /// Positional attribute values (see the type's [`crate::Schema`]).
    pub attrs: AttrVec,
}

impl Event {
    /// An event with no attributes.
    pub fn new(ty: EventTypeId, time: Timestamp) -> Self {
        Event {
            ty,
            time,
            attrs: AttrVec::new(),
        }
    }

    /// An event with attribute values.
    pub fn with_attrs(ty: EventTypeId, time: Timestamp, attrs: impl Into<AttrVec>) -> Self {
        Event {
            ty,
            time,
            attrs: attrs.into(),
        }
    }

    /// The value of attribute `attr`, if present.
    #[inline]
    pub fn attr(&self, attr: AttrId) -> Option<&Value> {
        self.attrs.get(attr.index())
    }

    /// Numeric value of attribute `attr`, if present and numeric.
    #[inline]
    pub fn attr_f64(&self, attr: AttrId) -> Option<f64> {
        self.attr(attr).and_then(Value::as_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_access() {
        let e = Event::with_attrs(
            EventTypeId(3),
            Timestamp::from_secs(1),
            vec![Value::Int(42), Value::from("taxi"), Value::Float(1.5)],
        );
        assert_eq!(e.attr(AttrId(0)), Some(&Value::Int(42)));
        assert_eq!(e.attr(AttrId(1)).and_then(Value::as_str), Some("taxi"));
        assert_eq!(e.attr_f64(AttrId(2)), Some(1.5));
        assert_eq!(e.attr_f64(AttrId(1)), None, "strings are not numeric");
        assert_eq!(e.attr(AttrId(9)), None, "out of range");
    }

    #[test]
    fn bare_event() {
        let e = Event::new(EventTypeId(0), Timestamp(5));
        assert!(e.attrs.is_empty());
        assert_eq!(e.time, Timestamp(5));
    }

    #[test]
    fn attrvec_stays_inline_up_to_four() {
        let mut a = AttrVec::new();
        for i in 0..4 {
            a.push(Value::Int(i));
            assert!(!a.spilled(), "{} values fit inline", i + 1);
        }
        assert_eq!(a.len(), 4);
        a.push(Value::Int(4));
        assert!(a.spilled(), "fifth value spills to the heap");
        assert_eq!(a.len(), 5);
        assert_eq!(a[4], Value::Int(4));
        assert_eq!(a[0], Value::Int(0), "inline values survive the spill");
    }

    #[test]
    fn attrvec_roundtrips_vecs_of_every_size() {
        for n in 0..8i64 {
            let vals: Vec<Value> = (0..n).map(Value::Int).collect();
            let a = AttrVec::from(vals.clone());
            assert_eq!(a.as_slice(), &vals[..], "size {n}");
            assert_eq!(a.spilled(), n as usize > AttrVec::INLINE);
            let b = a.clone();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn attrvec_drops_string_values_exactly_once() {
        use std::sync::Arc;
        let s: Arc<str> = Arc::from("shared");
        for n in [1usize, 4, 6] {
            let a: AttrVec = (0..n).map(|_| Value::Str(Arc::clone(&s))).collect();
            assert_eq!(Arc::strong_count(&s), n + 1);
            drop(a);
            assert_eq!(Arc::strong_count(&s), 1, "size {n}: all clones dropped");
        }
    }

    #[test]
    fn attrvec_iteration_and_mutation() {
        let mut a = AttrVec::from(vec![Value::Int(1), Value::Int(2)]);
        let sum: i64 = (&a).into_iter().filter_map(Value::as_i64).sum();
        assert_eq!(sum, 3);
        a.as_mut_slice()[0] = Value::Int(10);
        assert_eq!(a[0], Value::Int(10));
        assert_eq!(&a, &[Value::Int(10), Value::Int(2)][..]);
    }
}
