//! Events: timestamped, typed messages on a stream.
//!
//! "An event is a message indicating that something of interest to the
//! application happened in the real world. An event `e` has a time stamp
//! `e.time` assigned by the event source [and] belongs to a particular event
//! type `E`" (Section 2.1, Sharon paper).

use crate::catalog::{AttrId, EventTypeId};
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A single event.
///
/// Attribute values are positional, parallel to the [`crate::Schema`] of the
/// event's type. Events are cheap to clone (string values are `Arc`-interned).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The event's type.
    pub ty: EventTypeId,
    /// The source-assigned time stamp.
    pub time: Timestamp,
    /// Positional attribute values (see the type's [`crate::Schema`]).
    pub attrs: Vec<Value>,
}

impl Event {
    /// An event with no attributes.
    pub fn new(ty: EventTypeId, time: Timestamp) -> Self {
        Event {
            ty,
            time,
            attrs: Vec::new(),
        }
    }

    /// An event with attribute values.
    pub fn with_attrs(ty: EventTypeId, time: Timestamp, attrs: Vec<Value>) -> Self {
        Event { ty, time, attrs }
    }

    /// The value of attribute `attr`, if present.
    #[inline]
    pub fn attr(&self, attr: AttrId) -> Option<&Value> {
        self.attrs.get(attr.index())
    }

    /// Numeric value of attribute `attr`, if present and numeric.
    #[inline]
    pub fn attr_f64(&self, attr: AttrId) -> Option<f64> {
        self.attr(attr).and_then(Value::as_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_access() {
        let e = Event::with_attrs(
            EventTypeId(3),
            Timestamp::from_secs(1),
            vec![Value::Int(42), Value::from("taxi"), Value::Float(1.5)],
        );
        assert_eq!(e.attr(AttrId(0)), Some(&Value::Int(42)));
        assert_eq!(e.attr(AttrId(1)).and_then(Value::as_str), Some("taxi"));
        assert_eq!(e.attr_f64(AttrId(2)), Some(1.5));
        assert_eq!(e.attr_f64(AttrId(1)), None, "strings are not numeric");
        assert_eq!(e.attr(AttrId(9)), None, "out of range");
    }

    #[test]
    fn bare_event() {
        let e = Event::new(EventTypeId(0), Timestamp(5));
        assert!(e.attrs.is_empty());
        assert_eq!(e.time, Timestamp(5));
    }
}
