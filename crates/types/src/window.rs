//! Sliding windows (`WITHIN` / `SLIDE`).
//!
//! A query requires all events of a matched sequence to fall "within one
//! window `w`" and returns one aggregate "per group and per window"
//! (Definition 2). Windows are the classic slide-aligned instances: instance
//! `k` covers the half-open interval `[k·slide, k·slide + within)`.

use crate::time::{TimeDelta, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `WITHIN w SLIDE s` clause of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window length (`WITHIN`).
    pub within: TimeDelta,
    /// Slide interval (`SLIDE`). Must be positive and at most `within`.
    pub slide: TimeDelta,
}

/// One window instance: `[start, start + within)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WindowInstance {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Exclusive upper bound.
    pub end: Timestamp,
}

impl WindowSpec {
    /// Create a spec, validating `0 < slide <= within`.
    pub fn new(within: TimeDelta, slide: TimeDelta) -> Self {
        assert!(!slide.is_zero(), "SLIDE must be positive");
        assert!(slide <= within, "SLIDE must not exceed WITHIN");
        WindowSpec { within, slide }
    }

    /// A tumbling window (`slide == within`).
    pub fn tumbling(within: TimeDelta) -> Self {
        Self::new(within, within)
    }

    /// The paper's default traffic window: `WITHIN 10 min SLIDE 1 min`.
    pub fn paper_traffic() -> Self {
        Self::new(TimeDelta::from_mins(10), TimeDelta::from_mins(1))
    }

    /// Maximum number of window instances that can simultaneously contain a
    /// given time point: `⌈within / slide⌉`.
    pub fn max_open(&self) -> usize {
        (self.within.millis().div_ceil(self.slide.millis())) as usize
    }

    /// Start of the latest window instance containing `t`
    /// (the instance `⌊t / slide⌋`).
    #[inline]
    pub fn last_start_covering(&self, t: Timestamp) -> Timestamp {
        Timestamp(t.millis() / self.slide.millis() * self.slide.millis())
    }

    /// Start of the earliest window instance containing `t`: the smallest
    /// slide-aligned `s` with `s + within > t`.
    #[inline]
    pub fn first_start_covering(&self, t: Timestamp) -> Timestamp {
        let (t, w, s) = (t.millis(), self.within.millis(), self.slide.millis());
        if t < w {
            Timestamp(0)
        } else {
            // smallest multiple of `s` strictly greater than `t - w`
            Timestamp(((t - w) / s + 1) * s)
        }
    }

    /// The window instance beginning at `start`.
    #[inline]
    pub fn instance(&self, start: Timestamp) -> WindowInstance {
        WindowInstance {
            start,
            end: start + self.within,
        }
    }

    /// All window instances containing `t`, in increasing start order.
    pub fn instances_covering(&self, t: Timestamp) -> impl Iterator<Item = WindowInstance> + '_ {
        let first = self.first_start_covering(t).millis();
        let last = self.last_start_covering(t).millis();
        let slide = self.slide.millis();
        (first..=last)
            .step_by(slide as usize)
            .map(move |s| self.instance(Timestamp(s)))
    }

    /// True if the window starting at `start` contains `t`.
    #[inline]
    pub fn contains(&self, start: Timestamp, t: Timestamp) -> bool {
        start <= t && t < start + self.within
    }
}

impl WindowInstance {
    /// True if `t` lies inside the instance.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WITHIN {} SLIDE {}", self.within, self.slide)
    }
}

impl fmt::Display for WindowInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(within: u64, slide: u64) -> WindowSpec {
        WindowSpec::new(TimeDelta(within), TimeDelta(slide))
    }

    #[test]
    fn max_open_windows() {
        assert_eq!(spec(10, 1).max_open(), 10);
        assert_eq!(spec(10, 3).max_open(), 4);
        assert_eq!(spec(10, 10).max_open(), 1);
        assert_eq!(WindowSpec::paper_traffic().max_open(), 10);
    }

    #[test]
    fn covering_bounds() {
        let w = spec(4, 1); // the running example of Figure 6(b)
                            // event at time 5: windows starting at 2,3,4,5
        assert_eq!(w.first_start_covering(Timestamp(5)), Timestamp(2));
        assert_eq!(w.last_start_covering(Timestamp(5)), Timestamp(5));
        let starts: Vec<u64> = w
            .instances_covering(Timestamp(5))
            .map(|i| i.start.millis())
            .collect();
        assert_eq!(starts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn early_times_are_clamped_to_origin() {
        let w = spec(10, 3);
        assert_eq!(w.first_start_covering(Timestamp(2)), Timestamp(0));
        // t = 10 is no longer inside window [0, 10)
        assert_eq!(w.first_start_covering(Timestamp(10)), Timestamp(3));
    }

    #[test]
    fn window_bounds_are_half_open() {
        let w = spec(4, 2);
        let inst = w.instance(Timestamp(2));
        assert!(inst.contains(Timestamp(2)));
        assert!(inst.contains(Timestamp(5)));
        assert!(!inst.contains(Timestamp(6)));
        assert!(!inst.contains(Timestamp(1)));
        assert!(w.contains(Timestamp(2), Timestamp(3)));
        assert!(!w.contains(Timestamp(2), Timestamp(6)));
    }

    #[test]
    fn tumbling() {
        let w = WindowSpec::tumbling(TimeDelta(5));
        assert_eq!(w.max_open(), 1);
        let starts: Vec<u64> = w
            .instances_covering(Timestamp(7))
            .map(|i| i.start.millis())
            .collect();
        assert_eq!(starts, vec![5]);
    }

    #[test]
    #[should_panic(expected = "SLIDE must be positive")]
    fn zero_slide_rejected() {
        spec(5, 0);
    }

    #[test]
    #[should_panic(expected = "SLIDE must not exceed WITHIN")]
    fn slide_larger_than_within_rejected() {
        spec(5, 6);
    }

    #[test]
    fn display() {
        assert_eq!(
            WindowSpec::paper_traffic().to_string(),
            "WITHIN 10min SLIDE 1min"
        );
        assert_eq!(spec(4, 2).instance(Timestamp(2)).to_string(), "[2ms, 6ms)");
    }
}
