//! `GROUP BY` keys.
//!
//! A query's grouping clause `G` partitions matched sequences by the values
//! of the grouping attributes; "a result is returned per group and per
//! window" (Definition 2). The common case in the paper's workloads is a
//! single attribute (`[vehicle]`, `[customer]`), which [`GroupKey`] stores
//! without an extra allocation.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The value of a query's grouping attributes for one partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupKey {
    /// No `GROUP BY` clause: all events form a single group.
    Global,
    /// A single grouping attribute (the common case).
    One(Value),
    /// Two or more grouping attributes.
    Many(Box<[Value]>),
}

impl GroupKey {
    /// Build a key from the values of the grouping attributes, in clause
    /// order.
    pub fn from_values(mut values: Vec<Value>) -> Self {
        match values.len() {
            0 => GroupKey::Global,
            1 => GroupKey::One(values.pop().expect("len checked")),
            _ => GroupKey::Many(values.into_boxed_slice()),
        }
    }

    /// Number of attribute values in the key (0 for [`GroupKey::Global`]).
    pub fn arity(&self) -> usize {
        match self {
            GroupKey::Global => 0,
            GroupKey::One(_) => 1,
            GroupKey::Many(vs) => vs.len(),
        }
    }

    /// Overwrite `self` with the key for `values`, reusing the existing
    /// allocation whenever the arity matches.
    ///
    /// This is the executor's per-event path: a reused scratch key means
    /// the only allocation left on first-sight of a multi-attribute group
    /// is the one unavoidable `clone` into the map. [`Value`]s themselves
    /// are cheap to clone (`Arc`-interned strings).
    #[inline]
    pub fn assign_from_slice(&mut self, values: &[Value]) {
        match (&mut *self, values) {
            (_, []) => *self = GroupKey::Global,
            (GroupKey::One(slot), [v]) => slot.clone_from(v),
            (_, [v]) => *self = GroupKey::One(v.clone()),
            (GroupKey::Many(slots), vs) if slots.len() == vs.len() => {
                for (slot, v) in slots.iter_mut().zip(vs) {
                    slot.clone_from(v);
                }
            }
            (_, vs) => *self = GroupKey::Many(vs.to_vec().into_boxed_slice()),
        }
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKey::Global => write!(f, "<all>"),
            GroupKey::One(v) => write!(f, "{v}"),
            GroupKey::Many(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_picks_compact_representation() {
        assert_eq!(GroupKey::from_values(vec![]), GroupKey::Global);
        assert_eq!(
            GroupKey::from_values(vec![Value::Int(7)]),
            GroupKey::One(Value::Int(7))
        );
        let many = GroupKey::from_values(vec![Value::Int(1), Value::from("x")]);
        assert_eq!(many.arity(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(GroupKey::Global.to_string(), "<all>");
        assert_eq!(GroupKey::One(Value::Int(3)).to_string(), "3");
        assert_eq!(
            GroupKey::from_values(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "(1, 2)"
        );
    }

    #[test]
    fn assign_from_slice_matches_from_values() {
        let cases: Vec<Vec<Value>> = vec![
            vec![],
            vec![Value::Int(7)],
            vec![Value::from("x")],
            vec![Value::Int(1), Value::from("y")],
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        ];
        // every transition between arities must land on the canonical form
        for from in &cases {
            for to in &cases {
                let mut key = GroupKey::from_values(from.clone());
                key.assign_from_slice(to);
                assert_eq!(key, GroupKey::from_values(to.clone()), "{from:?} -> {to:?}");
            }
        }
    }

    #[test]
    fn keys_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(GroupKey::One(Value::Int(1)));
        set.insert(GroupKey::One(Value::Int(2)));
        set.insert(GroupKey::One(Value::Int(1)));
        assert_eq!(set.len(), 2);
    }
}
