//! Columnar event batches (struct-of-arrays).
//!
//! The executors' per-event cost is dominated by the stateless prefix of
//! the pipeline — routing on the event type, predicate evaluation, group
//! key extraction — and by per-event heap traffic. An [`EventBatch`] stores
//! a slice of the stream in struct-of-arrays form so that prefix runs as
//! tight column scans and the whole batch costs a handful of amortized
//! buffer growths instead of one allocation per event:
//!
//! * a `ty` column (`Vec<EventTypeId>`) — the only column routing reads;
//! * a `time` column (`Vec<Timestamp>`);
//! * the attribute values of all rows in **one contiguous buffer**
//!   (`Vec<Value>`) with a row-offset column, Arrow-style. Event types have
//!   heterogeneous schemas (different attribute counts per type), so fixed
//!   per-attribute columns would need null padding; the offset layout keeps
//!   the values contiguous and ragged rows cheap.
//!
//! Batches are reusable: [`EventBatch::clear`] keeps all four buffers, so a
//! steady-state ingest loop performs no allocation. The row-form
//! [`Event`] remains as a compatibility shim — [`EventBatch::event`]
//! materializes one row, [`EventBatch::push_event`] appends one.

use crate::catalog::{AttrId, EventTypeId};
use crate::event::Event;
use crate::time::Timestamp;
use crate::value::Value;

/// A slice of the stream in columnar (struct-of-arrays) form.
///
/// Rows are usually appended in timestamp order, but a batch may carry
/// bounded disorder (late rows): the executors' event-time machinery
/// consumes [`EventBatch::min_time`] / [`EventBatch::max_time`] — tracked
/// incrementally on append, so the low/high water marks of the time
/// column are free at read time — to drive watermarks instead of
/// trusting arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    tys: Vec<EventTypeId>,
    times: Vec<Timestamp>,
    /// `offsets[row] .. offsets[row + 1]` indexes `values`; always has
    /// `len() + 1` entries starting with 0.
    offsets: Vec<u32>,
    /// Attribute values of all rows, contiguous.
    values: Vec<Value>,
    /// Running minimum of `times` (`u64::MAX` sentinel while empty).
    min_time: Timestamp,
    /// Running maximum of `times` (`0` sentinel while empty).
    max_time: Timestamp,
}

impl Default for EventBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EventBatch {
            tys: Vec::new(),
            times: Vec::new(),
            offsets: vec![0],
            values: Vec::new(),
            min_time: Timestamp(u64::MAX),
            max_time: Timestamp(0),
        }
    }

    /// An empty batch with room for `rows` events carrying about
    /// `attrs_per_row` values each.
    pub fn with_capacity(rows: usize, attrs_per_row: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        EventBatch {
            tys: Vec::with_capacity(rows),
            times: Vec::with_capacity(rows),
            offsets,
            values: Vec::with_capacity(rows * attrs_per_row),
            min_time: Timestamp(u64::MAX),
            max_time: Timestamp(0),
        }
    }

    /// Number of events in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.tys.len()
    }

    /// True if the batch holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tys.is_empty()
    }

    /// Drop all rows, keeping every buffer's capacity for reuse.
    pub fn clear(&mut self) {
        self.tys.clear();
        self.times.clear();
        self.offsets.truncate(1);
        self.values.clear();
        self.min_time = Timestamp(u64::MAX);
        self.max_time = Timestamp(0);
    }

    /// Append one event, moving `attrs` into the value buffer.
    ///
    /// Rows need not arrive in timestamp order — disordered streams
    /// produce batches with late rows, and the time-column watermarks
    /// ([`EventBatch::min_time`] / [`EventBatch::max_time`]) are tracked
    /// here so consumers never pay a separate scan.
    #[inline]
    pub fn push_from(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: impl IntoIterator<Item = Value>,
    ) {
        self.min_time = self.min_time.min(time);
        self.max_time = self.max_time.max(time);
        self.tys.push(ty);
        self.times.push(time);
        self.values.extend(attrs);
        let end = u32::try_from(self.values.len()).expect("batch value buffer exceeds u32 offsets");
        self.offsets.push(end);
    }

    /// Append one event, cloning `attrs` into the value buffer.
    #[inline]
    pub fn push(&mut self, ty: EventTypeId, time: Timestamp, attrs: &[Value]) {
        self.push_from(ty, time, attrs.iter().cloned());
    }

    /// Append a row-form [`Event`].
    #[inline]
    pub fn push_event(&mut self, e: &Event) {
        self.push(e.ty, e.time, &e.attrs);
    }

    /// Append rows `lo..hi` of `other`.
    pub fn extend_from_range(&mut self, other: &EventBatch, lo: usize, hi: usize) {
        for row in lo..hi {
            self.push(other.ty(row), other.time(row), other.attrs(row));
        }
    }

    /// The type of event `row`.
    #[inline]
    pub fn ty(&self, row: usize) -> EventTypeId {
        self.tys[row]
    }

    /// The timestamp of event `row`.
    #[inline]
    pub fn time(&self, row: usize) -> Timestamp {
        self.times[row]
    }

    /// The attribute values of event `row`.
    #[inline]
    pub fn attrs(&self, row: usize) -> &[Value] {
        &self.values[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }

    /// The value of attribute `attr` of event `row`, if present.
    #[inline]
    pub fn attr(&self, row: usize, attr: AttrId) -> Option<&Value> {
        self.attrs(row).get(attr.index())
    }

    /// Numeric value of attribute `attr` of event `row`, if present and
    /// numeric.
    #[inline]
    pub fn attr_f64(&self, row: usize, attr: AttrId) -> Option<f64> {
        self.attr(row, attr).and_then(Value::as_f64)
    }

    /// The whole `ty` column.
    #[inline]
    pub fn types(&self) -> &[EventTypeId] {
        &self.tys
    }

    /// The whole `time` column.
    #[inline]
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// The raw row-offset column (`len() + 1` entries, starting with 0):
    /// row `r`'s attributes live at `values()[offsets()[r] as usize ..
    /// offsets()[r + 1] as usize]`. Exposed so compiled scan kernels can
    /// gather attribute columns without per-row slice construction.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw contiguous value buffer (see [`EventBatch::offsets`]).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Low water mark of the time column (`None` while empty) — tracked
    /// incrementally on append, never a scan.
    #[inline]
    pub fn min_time(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(self.min_time)
    }

    /// High water mark of the time column (`None` while empty) — tracked
    /// incrementally on append, never a scan. Under bounded disorder this
    /// is what watermarks advance on (the last *row* may be a late one).
    #[inline]
    pub fn max_time(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(self.max_time)
    }

    /// Materialize row `row` as a row-form [`Event`] (compatibility shim).
    pub fn event(&self, row: usize) -> Event {
        Event::with_attrs(self.ty(row), self.time(row), self.attrs(row))
    }

    /// Build a batch from row-form events (any timestamp order).
    pub fn from_events(events: &[Event]) -> Self {
        let values = events.iter().map(|e| e.attrs.len()).sum::<usize>();
        let mut batch = Self::with_capacity(events.len(), values.div_ceil(events.len().max(1)));
        for e in events {
            batch.push_event(e);
        }
        batch
    }

    /// Materialize every row (compatibility shim for row-form consumers).
    pub fn to_events(&self) -> Vec<Event> {
        (0..self.len()).map(|row| self.event(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventBatch {
        let mut b = EventBatch::new();
        b.push_from(EventTypeId(0), Timestamp(1), [Value::Int(7)]);
        b.push_from(EventTypeId(1), Timestamp(2), []);
        b.push_from(
            EventTypeId(0),
            Timestamp(2),
            [Value::Int(8), Value::Float(0.5)],
        );
        b
    }

    #[test]
    fn columns_and_ragged_rows() {
        let b = sample();
        assert_eq!(b.len(), 3);
        assert_eq!(b.types(), &[EventTypeId(0), EventTypeId(1), EventTypeId(0)]);
        assert_eq!(b.times(), &[Timestamp(1), Timestamp(2), Timestamp(2)]);
        assert_eq!(b.attrs(0), &[Value::Int(7)]);
        assert_eq!(b.attrs(1), &[] as &[Value]);
        assert_eq!(b.attrs(2), &[Value::Int(8), Value::Float(0.5)]);
        assert_eq!(b.attr(2, AttrId(1)), Some(&Value::Float(0.5)));
        assert_eq!(b.attr(1, AttrId(0)), None);
        assert_eq!(b.attr_f64(2, AttrId(1)), Some(0.5));
    }

    #[test]
    fn event_roundtrip() {
        let b = sample();
        let events = b.to_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].attr_f64(AttrId(1)), Some(0.5));
        let back = EventBatch::from_events(&events);
        assert_eq!(back, b);
        assert_eq!(back.event(0), events[0]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = sample();
        let cap = (b.tys.capacity(), b.values.capacity(), b.offsets.capacity());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.offsets, vec![0]);
        assert_eq!(
            (b.tys.capacity(), b.values.capacity(), b.offsets.capacity()),
            cap
        );
        b.push(EventTypeId(9), Timestamp(5), &[Value::Int(1)]);
        assert_eq!(b.attrs(0), &[Value::Int(1)]);
    }

    #[test]
    fn extend_from_range() {
        let b = sample();
        let mut out = EventBatch::new();
        out.extend_from_range(&b, 1, 3);
        assert_eq!(out.len(), 2);
        assert_eq!(out.ty(0), EventTypeId(1));
        assert_eq!(out.attrs(1), b.attrs(2));
        out.extend_from_range(&b, 3, 3);
        assert_eq!(out.len(), 2, "empty range is a no-op");
    }

    #[test]
    fn empty_batch() {
        let b = EventBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.to_events(), Vec::<Event>::new());
        assert_eq!(EventBatch::from_events(&[]).len(), 0);
        assert_eq!(b.min_time(), None);
        assert_eq!(b.max_time(), None);
    }

    #[test]
    fn time_watermarks_track_disordered_pushes() {
        let mut b = EventBatch::new();
        b.push_from(EventTypeId(0), Timestamp(5), []);
        b.push_from(EventTypeId(0), Timestamp(2), []); // late row: allowed
        b.push_from(EventTypeId(0), Timestamp(9), []);
        assert_eq!(b.min_time(), Some(Timestamp(2)));
        assert_eq!(b.max_time(), Some(Timestamp(9)));
        b.clear();
        assert_eq!(b.min_time(), None);
        b.push_from(EventTypeId(0), Timestamp(4), []);
        assert_eq!(b.min_time(), Some(Timestamp(4)));
        assert_eq!(b.max_time(), Some(Timestamp(4)));
    }
}
