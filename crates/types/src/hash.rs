//! Fast, non-cryptographic hashing for the executor hot path.
//!
//! The per-event cost of the Sharon engine is dominated by `GROUP BY`
//! partition lookups: one hash-map probe per matched event. The standard
//! library's default SipHash-1-3 is DoS-resistant but an order of magnitude
//! slower than needed for trusted, in-process keys like [`crate::GroupKey`].
//! [`FxHasher`] implements the multiply-xor scheme popularized by Firefox
//! and the Rust compiler: a couple of arithmetic instructions per word,
//! well-mixed output for small structured keys.
//!
//! Use the [`FxHashMap`]/[`FxHashSet`] aliases anywhere a map is touched
//! per event; keep the default hasher for maps keyed by untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast multiply-xor hasher for trusted, in-process keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — for hot-path maps over trusted keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash one value with [`FxHasher`] — used for deterministic shard routing.
#[inline]
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupKey, Value};

    #[test]
    fn equal_keys_hash_equal() {
        let a = GroupKey::One(Value::Int(42));
        let b = GroupKey::One(Value::Int(42));
        assert_eq!(fx_hash_one(&a), fx_hash_one(&b));
        // cross-type numeric equality must preserve hash equality
        let c = GroupKey::One(Value::Float(42.0));
        assert_eq!(a, c);
        assert_eq!(fx_hash_one(&a), fx_hash_one(&c));
    }

    #[test]
    fn distinct_keys_spread() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..10_000i64)
            .map(|i| fx_hash_one(&GroupKey::One(Value::Int(i))))
            .collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on small dense keys");
        // low bits must be usable for shard routing
        let shards: HashSet<u64> = (0..64i64)
            .map(|i| fx_hash_one(&GroupKey::One(Value::Int(i))) % 8)
            .collect();
        assert!(shards.len() > 4, "shard routing must not collapse");
    }

    #[test]
    fn fx_map_works_with_group_keys() {
        let mut m: FxHashMap<GroupKey, usize> = FxHashMap::default();
        m.insert(GroupKey::Global, 0);
        m.insert(GroupKey::One(Value::from("MainSt")), 1);
        m.insert(GroupKey::from_values(vec![Value::Int(1), Value::Int(2)]), 2);
        assert_eq!(m[&GroupKey::Global], 0);
        assert_eq!(m[&GroupKey::One(Value::from("MainSt"))], 1);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn string_hashing_covers_remainder_bytes() {
        let h1 = fx_hash_one("abcdefgh");
        let h2 = fx_hash_one("abcdefgh!");
        let h3 = fx_hash_one("abcdefg");
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
    }
}
