//! The LRU spill tier: cold groups page out to disk.
//!
//! `GROUP BY` cardinality bounds the engines' memory: every live group
//! holds window vectors, chain logs, and segment-runner state. For
//! workloads with `groups ≫ RAM` the engine pages *cold* groups out to an
//! append-only spill log (one per engine, under the checkpoint/spill
//! directory) and reloads them on access, keeping only a configured number
//! of groups resident. Group state is position-independent — results are
//! keyed by `(query, group, window)` and window close times do not depend
//! on *when* a group's windows are drained — so a group can disappear to
//! disk for any stretch of the stream and come back exact.
//!
//! The log is append-only: re-spilling a group appends a fresh record and
//! the index forgets the old one (no in-place compaction — spill files are
//! temporary run state, deleted when the engine is dropped). Traffic is
//! observable via `sharon_metrics::{group_spills, group_reloads}`.

use sharon_types::{FxHashMap, GroupKey};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Spill-tier configuration for an engine (or every engine of a sharded
/// runtime).
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory for the spill logs (created if absent).
    pub dir: PathBuf,
    /// Maximum groups kept resident per engine; the coldest quarter is
    /// evicted whenever the map grows past this.
    pub max_resident: usize,
}

impl SpillConfig {
    /// Spill to `dir`, keeping at most `max_resident` groups in memory
    /// per engine (minimum 4, so eviction always leaves headroom).
    pub fn new(dir: impl Into<PathBuf>, max_resident: usize) -> Self {
        SpillConfig {
            dir: dir.into(),
            max_resident: max_resident.max(4),
        }
    }
}

/// One engine's append-only spill log plus its in-memory index.
#[derive(Debug)]
pub struct SpillStore {
    file: fs::File,
    path: PathBuf,
    index: FxHashMap<GroupKey, (u64, u32)>,
    write_pos: u64,
}

impl SpillStore {
    /// Create (truncating) the log `spill-<label>.log` under `dir`.
    pub fn create(dir: &Path, label: &str) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("spill-{label}.log"));
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillStore {
            file,
            path,
            index: FxHashMap::default(),
            write_pos: 0,
        })
    }

    /// Number of groups currently spilled.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no group is spilled.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `key`'s state lives in the log.
    pub fn contains(&self, key: &GroupKey) -> bool {
        self.index.contains_key(key)
    }

    /// Append `bytes` as the (new) spilled state of `key`.
    pub fn spill(&mut self, key: GroupKey, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.write_pos))?;
        self.file.write_all(bytes)?;
        self.index.insert(key, (self.write_pos, bytes.len() as u32));
        self.write_pos += bytes.len() as u64;
        sharon_metrics::record_group_spills(1);
        Ok(())
    }

    /// Remove `key` from the log's index and return its state bytes, or
    /// `None` if it was never spilled.
    pub fn take(&mut self, key: &GroupKey) -> io::Result<Option<Vec<u8>>> {
        let Some((off, len)) = self.index.remove(key) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; len as usize];
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut buf)?;
        sharon_metrics::record_group_reloads(1);
        Ok(Some(buf))
    }

    /// Drain every spilled group as `(key, bytes)`, emptying the index
    /// (used by `finish`, which must close all remaining windows, and by
    /// replica eviction). Order is unspecified.
    pub fn drain_all(&mut self) -> io::Result<Vec<(GroupKey, Vec<u8>)>> {
        let keys: Vec<GroupKey> = self.index.keys().cloned().collect();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let bytes = self.take(&key)?.expect("key from index");
            out.push((key, bytes));
        }
        Ok(out)
    }

    /// Visit every spilled group's `(key, bytes)` without removing it —
    /// the checkpoint path embeds spilled state verbatim into the segment.
    pub fn for_each(&mut self, mut f: impl FnMut(&GroupKey, &[u8])) -> io::Result<()> {
        // clone the index so reads can seek freely while iterating
        let entries: Vec<(GroupKey, (u64, u32))> =
            self.index.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let mut buf = Vec::new();
        for (key, (off, len)) in entries {
            buf.resize(len as usize, 0);
            self.file.seek(SeekFrom::Start(off))?;
            self.file.read_exact(&mut buf)?;
            f(&key, &buf);
        }
        Ok(())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // spill logs are run-scoped scratch, not durable state
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_types::Value;

    fn key(i: i64) -> GroupKey {
        GroupKey::One(Value::Int(i))
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sharon-spill-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_take_round_trip_and_overwrite() {
        let dir = test_dir("rt");
        let mut s = SpillStore::create(&dir, "t0").unwrap();
        assert!(s.is_empty());
        s.spill(key(1), b"one").unwrap();
        s.spill(key(2), b"two").unwrap();
        // re-spilling appends; the index must point at the newest record
        s.spill(key(1), b"one-v2").unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&key(1)));
        assert_eq!(s.take(&key(1)).unwrap().unwrap(), b"one-v2");
        assert_eq!(s.take(&key(1)).unwrap(), None, "take removes");
        assert_eq!(s.take(&key(2)).unwrap().unwrap(), b"two");
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_and_for_each() {
        let dir = test_dir("drain");
        let mut s = SpillStore::create(&dir, "t1").unwrap();
        s.spill(key(1), b"a").unwrap();
        s.spill(key(2), b"bb").unwrap();
        let mut seen = Vec::new();
        s.for_each(|k, b| seen.push((k.clone(), b.to_vec())))
            .unwrap();
        seen.sort_by_key(|(k, _)| k.to_string());
        assert_eq!(
            seen,
            vec![(key(1), b"a".to_vec()), (key(2), b"bb".to_vec())]
        );
        assert_eq!(s.len(), 2, "for_each leaves entries in place");

        let mut all = s.drain_all().unwrap();
        all.sort_by_key(|(k, _)| k.to_string());
        assert_eq!(all.len(), 2);
        assert!(s.is_empty());
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_removes_the_log_file() {
        let dir = test_dir("cleanup");
        let s = SpillStore::create(&dir, "t2").unwrap();
        let path = s.path.clone();
        assert!(path.exists());
        drop(s);
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
