//! The Sharon runtime executor.
//!
//! One [`Engine`] evaluates one compiled partition (queries with identical
//! predicates, grouping, window, and aggregate — assumption (2) / §7.2).
//! Per `GROUP BY` partition it maintains:
//!
//! * one [`SegmentRunner`] per runner slot — shared runners are updated
//!   *once* per event regardless of how many queries subscribe (the gain of
//!   the Shared method, Eq. 7);
//! * per query, the *chain combination* state: a [`ChainLog`] per stage
//!   recording the combined contributions `R_i` per window, and per live
//!   START event of each stage's segment, the log **offset** at its
//!   arrival — the Shared method's "count(prefix) at the time c arrives"
//!   (Section 3.3 step 2, Example 3). A completion batch folds in
//!   `O(log entries + starts + windows)` via suffix sums and a
//!   difference array (see [`ChainLog`]);
//! * per query, the final per-window accumulators, emitted when windows
//!   close.

use crate::agg::{Aggregate, Contribution, CountCell, StatsCell};
use crate::chainlog::ChainLog;
use crate::checkpoint::{StateError, StateReader, StateWriter};
use crate::compile::{compile, CompileError, CompiledPartition, Routes};
use crate::event_time::Reorder;
use crate::partial::PartialResults;
use crate::results::ExecutorResults;
use crate::runner::SegmentRunner;
use crate::scan::ScanKernel;
use crate::spill::{SpillConfig, SpillStore};
use crate::winvec::WinVec;
use sharon_query::{SharingPlan, Workload};
use sharon_types::{
    fx_hash_one, Catalog, Event, EventBatch, EventStream, EventTypeId, FxHashMap, FxHashSet,
    GroupKey, Timestamp, Value,
};
use std::collections::VecDeque;

/// Per-group runtime state.
struct GroupRuntime<A> {
    /// True once the sharded router split this (hot) group across shards:
    /// window closes then emit per-window **sub-aggregates** into the
    /// engine's [`PartialResults`] instead of final values, and the
    /// sharded merge step combines the shards' parts.
    split: bool,
    runners: Vec<SegmentRunner<A>>,
    /// `offs[q][stage]`: per live START event of the stage's segment, the
    /// chain-log offset at its arrival (unused for stage 0 / unit stages).
    offs: Vec<Vec<VecDeque<u64>>>,
    /// `chains[q][stage]`: contribution log of `R_stage`
    /// (stages `0 .. n_stages−1`).
    chains: Vec<Vec<ChainLog<A>>>,
    /// Per-window mirror of each chain log (same contributions, folded
    /// per window) — read by stateless length-1 stages, which need the
    /// current totals rather than the history.
    mirrors: Vec<Vec<WinVec<A>>>,
    /// Final per-window accumulators, one per query.
    finals: Vec<WinVec<A>>,
    /// Window-close watermark: windows with `seq < closed_before` have
    /// been emitted for this group.
    closed_before: u64,
    /// Expiration watermark (ms): START events at or before it are gone.
    expired_through: Timestamp,
    /// Recency stamp from the engine's access clock, read by the spill
    /// tier's eviction sweep (not persisted — recency is run-local).
    last_use: u64,
}

impl<A: Aggregate> GroupRuntime<A> {
    fn new(part: &CompiledPartition) -> Self {
        GroupRuntime {
            split: false,
            runners: part
                .runners
                .iter()
                .map(|r| SegmentRunner::new(r.len))
                .collect(),
            offs: part
                .queries
                .iter()
                .map(|q| (0..q.n_stages).map(|_| VecDeque::new()).collect())
                .collect(),
            chains: part
                .queries
                .iter()
                .map(|q| {
                    (0..q.n_stages.saturating_sub(1))
                        .map(|_| ChainLog::new())
                        .collect()
                })
                .collect(),
            mirrors: part
                .queries
                .iter()
                .map(|q| {
                    (0..q.n_stages.saturating_sub(1))
                        .map(|_| WinVec::new())
                        .collect()
                })
                .collect(),
            finals: part.queries.iter().map(|_| WinVec::new()).collect(),
            closed_before: 0,
            expired_through: Timestamp::ZERO,
            last_use: 0,
        }
    }

    /// Serialize this group's full evaluation state. The layout is shared
    /// by the spill tier (paging cold groups to disk) and the checkpoint
    /// segments (which embed spilled groups' bytes verbatim) — one format,
    /// so spilled state checkpoints without a decode/re-encode cycle.
    fn save_state(&self, w: &mut StateWriter) {
        w.bool(self.split);
        w.u64(self.closed_before);
        w.time(self.expired_through);
        w.seq_len(self.runners.len());
        for r in &self.runners {
            r.save_state(w);
        }
        w.seq_len(self.offs.len());
        for q in &self.offs {
            w.seq_len(q.len());
            for dq in q {
                w.seq_len(dq.len());
                for &off in dq {
                    w.u64(off);
                }
            }
        }
        w.seq_len(self.chains.len());
        for q in &self.chains {
            w.seq_len(q.len());
            for log in q {
                log.save_state(w);
            }
        }
        w.seq_len(self.mirrors.len());
        for q in &self.mirrors {
            w.seq_len(q.len());
            for m in q {
                m.save_state(w);
            }
        }
        w.seq_len(self.finals.len());
        for f in &self.finals {
            f.save_state(w);
        }
    }

    /// Decode a group written by [`GroupRuntime::save_state`], validating
    /// every dimension against the compiled partition the state claims to
    /// belong to.
    fn load_state(r: &mut StateReader<'_>, part: &CompiledPartition) -> Result<Self, StateError> {
        let split = r.bool()?;
        let closed_before = r.u64()?;
        let expired_through = r.time()?;
        let n_runners = r.seq_len()?;
        if n_runners != part.runners.len() {
            return Err(StateError::Corrupt("group runner count"));
        }
        let mut runners = Vec::with_capacity(n_runners);
        for _ in 0..n_runners {
            runners.push(SegmentRunner::load_state(r)?);
        }
        let n_q = r.seq_len()?;
        if n_q != part.queries.len() {
            return Err(StateError::Corrupt("group query count (offs)"));
        }
        let mut offs = Vec::with_capacity(n_q);
        for q in &part.queries {
            let n_stages = r.seq_len()?;
            if n_stages != q.n_stages {
                return Err(StateError::Corrupt("group stage count (offs)"));
            }
            let mut per_stage = Vec::with_capacity(n_stages);
            for _ in 0..n_stages {
                let n = r.seq_len()?;
                let mut dq = VecDeque::with_capacity(n);
                for _ in 0..n {
                    dq.push_back(r.u64()?);
                }
                per_stage.push(dq);
            }
            offs.push(per_stage);
        }
        if r.seq_len()? != part.queries.len() {
            return Err(StateError::Corrupt("group query count (chains)"));
        }
        let mut chains = Vec::with_capacity(n_q);
        for q in &part.queries {
            let n = r.seq_len()?;
            if n != q.n_stages.saturating_sub(1) {
                return Err(StateError::Corrupt("group stage count (chains)"));
            }
            let mut per_stage = Vec::with_capacity(n);
            for _ in 0..n {
                per_stage.push(ChainLog::load_state(r)?);
            }
            chains.push(per_stage);
        }
        if r.seq_len()? != part.queries.len() {
            return Err(StateError::Corrupt("group query count (mirrors)"));
        }
        let mut mirrors = Vec::with_capacity(n_q);
        for q in &part.queries {
            let n = r.seq_len()?;
            if n != q.n_stages.saturating_sub(1) {
                return Err(StateError::Corrupt("group stage count (mirrors)"));
            }
            let mut per_stage = Vec::with_capacity(n);
            for _ in 0..n {
                per_stage.push(WinVec::load_state(r)?);
            }
            mirrors.push(per_stage);
        }
        if r.seq_len()? != part.queries.len() {
            return Err(StateError::Corrupt("group query count (finals)"));
        }
        let mut finals = Vec::with_capacity(n_q);
        for _ in 0..n_q {
            finals.push(WinVec::load_state(r)?);
        }
        Ok(GroupRuntime {
            split,
            runners,
            offs,
            chains,
            mirrors,
            finals,
            closed_before,
            expired_through,
            last_use: 0,
        })
    }

    /// Rough number of live aggregate cells (memory proxy).
    fn cell_count(&self) -> usize {
        self.runners
            .iter()
            .map(SegmentRunner::cell_count)
            .sum::<usize>()
            + self
                .chains
                .iter()
                .flatten()
                .map(ChainLog::len)
                .sum::<usize>()
            + self
                .mirrors
                .iter()
                .flatten()
                .map(WinVec::len)
                .sum::<usize>()
            + self.finals.iter().map(WinVec::len).sum::<usize>()
            + self.offs.iter().flatten().map(VecDeque::len).sum::<usize>()
    }
}

/// Where a fold's per-window totals land: a later chain stage's log or
/// the query's final accumulators.
enum FoldTarget<'a, A: Aggregate> {
    Final(&'a mut WinVec<A>),
    Log(&'a mut ChainLog<A>, &'a mut WinVec<A>),
}

impl<A: Aggregate> FoldTarget<'_, A> {
    #[inline]
    fn add_range(&mut self, t: Timestamp, lo: u64, hi: u64, v: A) {
        match self {
            FoldTarget::Final(w) => w.add_range(t, lo, hi, v),
            FoldTarget::Log(l, m) => {
                l.add_range(t, lo, hi, v);
                m.add_range(t, lo, hi, v);
            }
        }
    }
}

/// Scratch buffers reused across events.
struct FoldScratch<A> {
    /// Per-START completion deltas of the current END event.
    completions: Vec<(usize, Timestamp, A)>,
    /// Suffix sums of the completion deltas.
    suffix: Vec<A>,
    /// Difference-array / dense window accumulators.
    add_at: Vec<A>,
    remove_after: Vec<A>,
    /// Reused emission buffer for closing windows (see `Engine::touch`).
    emit: Vec<(u64, A)>,
}

impl<A: Aggregate> FoldScratch<A> {
    fn new() -> Self {
        FoldScratch {
            completions: Vec::new(),
            suffix: Vec::new(),
            add_at: Vec::new(),
            remove_after: Vec::new(),
            emit: Vec::new(),
        }
    }
}

/// The slice of the group space one engine owns under sharded execution.
///
/// Groups are hash-partitioned: an engine with slice `(index, of)` owns the
/// groups whose [`fx_hash_one`] lands on `index` modulo `of` in its *high*
/// 32 bits, plus — when `owns_global` — the single [`GroupKey::Global`]
/// partition. Since groups never interact (Definition 2: one result per
/// group per window), engines over disjoint slices produce disjoint,
/// exactly mergeable results.
///
/// Routing deliberately uses different hash bits than the per-shard
/// `FxHashMap` bucket index (which is derived from the low bits of the
/// same hash): were both taken from the low bits, every key a shard owns
/// would be congruent to its index mod `of`, and with power-of-two shard
/// counts the shard's map would home-hash into only `1/of` of its buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// This engine's shard index in `0..of`.
    pub index: u32,
    /// Total number of shards.
    pub of: u32,
    /// Whether this engine owns the global (no `GROUP BY`) partition.
    pub owns_global: bool,
}

impl ShardSlice {
    /// True if `key` belongs to this slice.
    #[inline]
    pub fn owns(&self, key: &GroupKey) -> bool {
        match key {
            GroupKey::Global => self.owns_global,
            key => ((fx_hash_one(key) >> 32) % self.of as u64) as u32 == self.index,
        }
    }
}

/// One engine's spill tier: the append-only store plus the resident
/// budget (see [`crate::spill`]).
struct SpillTier {
    store: SpillStore,
    max_resident: usize,
}

/// An executor for one compiled partition, generic over the aggregate
/// kernel.
pub struct Engine<A: Aggregate> {
    part: CompiledPartition,
    groups: FxHashMap<GroupKey, GroupRuntime<A>>,
    results: ExecutorResults,
    scratch: FoldScratch<A>,
    /// Reused per-event key storage — the hot path never allocates a
    /// fresh key; cloning happens only on first sight of a group.
    key_scratch: GroupKey,
    /// Reused buffer for the grouping attributes of the current event.
    vals_scratch: Vec<Value>,
    /// Reused row-selection buffer of the columnar pre-pass.
    sel_scratch: Vec<u32>,
    /// Group-space slice owned by this engine (`None` = everything).
    shard: Option<ShardSlice>,
    /// Hashes of split (hot) groups the router announced to this shard
    /// (their rows may arrive regardless of [`ShardSlice::owns`]).
    split_hashes: FxHashSet<u64>,
    /// Whether the global (no `GROUP BY`) partition is split.
    split_global: bool,
    /// Per-window sub-aggregates of split groups, merged across shards by
    /// the sharded runtime at the end of the run.
    partials: PartialResults,
    /// Paging tier for cold groups (`None` = everything stays resident;
    /// the disabled hot path pays exactly one branch).
    spill: Option<SpillTier>,
    /// Monotone access clock stamping [`GroupRuntime::last_use`].
    clock: u64,
    last_time: Timestamp,
    events_matched: u64,
    /// Event-time reorder gate (`None` = arrival order is event-time
    /// order, the historical contract; the disabled hot path pays one
    /// branch). When set, rows buffer behind the watermark
    /// `max_time_seen − lateness` and release in event-time order; rows
    /// behind the watermark are dropped and counted.
    reorder: Option<Reorder>,
    /// Unsplit notices deferred behind the reorder gate: each waits until
    /// the watermark passes the gate frontier observed at notice time, so
    /// every buffered row of the cooled group releases before its replica
    /// state is force-closed. Empty on arrival-time engines (no gate —
    /// notices apply immediately).
    deferred_unsplits: Vec<(GroupKey, Timestamp)>,
    /// Compiled scan kernel of the columnar pre-pass (`None` = the
    /// scalar interpreter, per [`crate::scan::scan_mode`]).
    scan: Option<ScanKernel>,
    /// Rows examined by this engine's columnar pre-pass.
    rows_scanned: u64,
    /// Rows that survived routing + predicates + groupability (before
    /// shard-ownership filtering, so scalar and vector modes agree).
    rows_selected: u64,
}

impl<A: Aggregate> Engine<A> {
    /// Build an engine from a compiled partition.
    pub fn new(part: CompiledPartition) -> Self {
        let scan = match crate::scan::scan_mode() {
            crate::scan::ScanMode::Vector => Some(part.scan_kernel()),
            crate::scan::ScanMode::Scalar => None,
        };
        Engine {
            part,
            groups: FxHashMap::default(),
            results: ExecutorResults::new(),
            scratch: FoldScratch::new(),
            key_scratch: GroupKey::Global,
            vals_scratch: Vec::new(),
            sel_scratch: Vec::new(),
            shard: None,
            split_hashes: FxHashSet::default(),
            split_global: false,
            partials: PartialResults::new(),
            spill: None,
            clock: 0,
            last_time: Timestamp::ZERO,
            events_matched: 0,
            reorder: None,
            deferred_unsplits: Vec::new(),
            scan,
            rows_scanned: 0,
            rows_selected: 0,
        }
    }

    /// Enable event-time processing with the given allowed lateness (in
    /// milliseconds): rows buffer in the reorder gate and release in
    /// event-time order once the watermark `max_time_seen − lateness`
    /// passes them; rows arriving behind the watermark are dropped and
    /// counted ([`sharon_metrics::late_rows_dropped`]). Exact whenever
    /// `lateness` covers the stream's disorder bound.
    pub fn set_lateness(&mut self, lateness_ms: u64) {
        self.reorder = Some(Reorder::new(lateness_ms));
    }

    /// Late rows this engine dropped (0 when no gate is configured).
    pub fn late_rows_dropped(&self) -> u64 {
        self.reorder.as_ref().map_or(0, Reorder::late_rows_dropped)
    }

    /// The engine's current watermark (`None` when no gate is configured).
    pub fn watermark(&self) -> Option<Timestamp> {
        self.reorder.as_ref().map(Reorder::watermark)
    }

    /// Enable the LRU spill tier: at most `config.max_resident` groups
    /// stay in memory; colder groups page out to `spill-<label>.log`
    /// under `config.dir` and reload transparently on next access.
    pub fn set_spill(&mut self, config: &SpillConfig, label: &str) -> std::io::Result<()> {
        self.spill = Some(SpillTier {
            store: SpillStore::create(&config.dir, label)?,
            max_resident: config.max_resident,
        });
        Ok(())
    }

    /// Build an engine that only processes the groups in `slice`
    /// (see [`ShardSlice`]); all other events are filtered out after
    /// routing, predicates, and key extraction.
    pub fn with_shard(part: CompiledPartition, slice: ShardSlice) -> Self {
        let mut engine = Self::new(part);
        engine.shard = Some(slice);
        engine
    }

    #[inline]
    fn contribution(part: &CompiledPartition, ty: EventTypeId, attrs: &[Value]) -> Contribution {
        match part.contrib_target {
            Some((t, attr)) if t == ty => match attr {
                None => Contribution::of(1.0),
                Some(a) => match attrs.get(a.index()).and_then(Value::as_f64) {
                    Some(v) => Contribution::of(v),
                    None => Contribution::NONE,
                },
            },
            _ => Contribution::NONE,
        }
    }

    /// Process one event (events must arrive in timestamp order, unless
    /// an event-time gate is configured via [`Engine::set_lateness`]).
    #[inline]
    pub fn process(&mut self, e: &Event) {
        self.process_row(e.ty, e.time, &e.attrs, false, false);
        if self.reorder.is_some() {
            self.advance_watermark(e.time);
        }
    }

    /// The per-row entry of the per-event shim and both columnar entry
    /// points: goes straight to the in-order path, or — with an
    /// event-time gate configured — through the reorder gate, which
    /// buffers the row for watermark-ordered release (or drops and
    /// counts it as late).
    #[inline]
    fn process_row(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: &[Value],
        pre_routed: bool,
        state_only: bool,
    ) {
        match &mut self.reorder {
            None => self.process_row_inner(ty, time, attrs, pre_routed, state_only),
            Some(gate) => {
                gate.admit(ty, time, attrs, 0, pre_routed, state_only);
            }
        }
    }

    /// Advance the event-time watermark to `frontier − lateness`
    /// (monotone) and release every buffered row the watermark has
    /// passed, in event-time order, into the in-order row path. A no-op
    /// without a configured gate. The sharded runtime calls this with the
    /// router's merged cross-shard frontier; the sequential paths
    /// self-advance per event / per batch.
    pub fn advance_watermark(&mut self, frontier: Timestamp) {
        let Some(gate) = &mut self.reorder else {
            return;
        };
        gate.advance(frontier);
        self.release_ready();
        self.apply_ripe_unsplits();
    }

    /// Drain every gate-buffered row the current watermark has passed.
    fn release_ready(&mut self) {
        while let Some(row) = self.reorder.as_mut().and_then(Reorder::pop_ready) {
            self.process_row_inner(row.ty, row.time, &row.attrs, row.pre_routed, row.state_only);
            if let Some(gate) = &mut self.reorder {
                gate.recycle(row);
            }
        }
    }

    /// End-of-stream: open the gate and release everything still buffered
    /// (and apply any deferred unsplit hand-backs). Idempotent, and a
    /// no-op on arrival-time engines; [`Engine::finish_parts`] calls it,
    /// but callers that read pre-finish stats ([`Engine::events_matched`],
    /// [`Engine::cell_count`]) must call it first — buffered rows still
    /// count toward both.
    pub fn flush_pending(&mut self) {
        let Some(gate) = &mut self.reorder else {
            return;
        };
        gate.open();
        self.release_ready();
        // an open gate's watermark passed every deadline: all deferred
        // hand-backs apply before results are reported
        self.apply_ripe_unsplits();
    }

    /// The shared in-order row path of every entry point. With
    /// `pre_routed`, the caller (the columnar pre-pass or the sharded
    /// batch router) has already evaluated this partition's predicates
    /// and established that this engine may process the row's group, so
    /// both checks are skipped. With `state_only`, the row is a broadcast
    /// replica of a split group: it mutates evaluation state exactly like
    /// the full copy on its owning shard, but folds nothing into final
    /// accumulators and is not counted as matched — the split group's
    /// final folds happen exactly once globally.
    #[inline]
    fn process_row_inner(
        &mut self,
        ty: EventTypeId,
        time: Timestamp,
        attrs: &[Value],
        pre_routed: bool,
        state_only: bool,
    ) {
        debug_assert!(time >= self.last_time, "events must be time-ordered");
        self.last_time = time;

        let Some(routes) = self.part.routes.get(ty.index()).and_then(Option::as_ref) else {
            debug_assert!(!pre_routed, "router selected an unrouted event type");
            return;
        };
        // partition-wide predicates on this type
        if !pre_routed && !self.part.predicates_pass(ty, attrs) {
            return;
        }
        // group key — written into the reused scratch key, so the hot path
        // performs no allocation and no clone until a group is first seen
        if !self
            .part
            .read_group_key(ty, attrs, &mut self.vals_scratch, &mut self.key_scratch)
        {
            debug_assert!(!pre_routed, "router selected an ungroupable event");
            return; // ungroupable event
        }
        // sharded execution: skip groups another engine owns (rows of
        // split groups legitimately land off-owner, which the pre-routed
        // debug assert below accounts for)
        if let Some(slice) = &self.shard {
            if !pre_routed && !slice.owns(&self.key_scratch) {
                return;
            }
        }
        if !state_only {
            self.events_matched += 1;
        }

        // lookup-before-insert: `key_scratch.clone()` (the only remaining
        // allocation) happens exactly once per distinct group. Split
        // membership is resolved ONCE here, on first sight — split
        // notices always precede the split group's rows, and
        // `mark_split` upgrades groups that already exist — so the
        // per-row hot path never re-hashes the key to probe the split
        // set.
        if !self.groups.contains_key(&self.key_scratch) {
            let split_now = self.shard.is_some()
                && match &self.key_scratch {
                    GroupKey::Global => self.split_global,
                    key => {
                        !self.split_hashes.is_empty()
                            && self.split_hashes.contains(&fx_hash_one(key))
                    }
                };
            // a "new" group may in fact be paged out — the spill tier's
            // reload path (cold, never taken when spilling is off) brings
            // it back before any fresh state is created
            let reloaded = match &mut self.spill {
                Some(tier) => Self::reload_spilled(tier, &self.part, &self.key_scratch),
                None => None,
            };
            let mut grt = reloaded.unwrap_or_else(|| GroupRuntime::new(&self.part));
            // split membership is resolved once per residency: a notice
            // that arrived while the group was spilled is applied here
            grt.split |= split_now;
            self.groups.insert(self.key_scratch.clone(), grt);
            if let Some(tier) = &mut self.spill {
                if self.groups.len() > tier.max_resident {
                    Self::evict_coldest(tier, &mut self.groups, &self.key_scratch);
                }
            }
        }
        let grt = self
            .groups
            .get_mut(&self.key_scratch)
            .expect("group present after insert");
        self.clock += 1;
        grt.last_use = self.clock;
        if let Some(slice) = &self.shard {
            if pre_routed {
                debug_assert!(
                    grt.split || slice.owns(&self.key_scratch),
                    "router misrouted a group"
                );
            }
        }

        Self::touch(
            grt,
            &self.part,
            time,
            &mut self.results,
            &mut self.partials,
            &self.key_scratch,
            &mut self.scratch.emit,
        );

        let c = Self::contribution(&self.part, ty, attrs);
        Self::dispatch(
            grt,
            &self.part,
            routes,
            time,
            c,
            !state_only,
            &mut self.scratch,
        );
    }

    /// Mark a group as split across shards (a router notice): its rows may
    /// arrive off-owner from now on, and its window closes emit per-window
    /// sub-aggregates instead of final values.
    pub fn mark_split(&mut self, key: &GroupKey) {
        // a re-heat can re-split a group whose deferred unsplit has not
        // ripened yet: cancel the hand-back — the replica state is live
        // again and force-closing it would lose the new split's history
        self.deferred_unsplits.retain(|(k, _)| k != key);
        match key {
            GroupKey::Global => self.split_global = true,
            key => {
                self.split_hashes.insert(fx_hash_one(key));
            }
        }
        if let Some(grt) = self.groups.get_mut(key) {
            grt.split = true;
        }
        // pre-size the sub-aggregate buffer at split time so the split
        // path starts from real capacity instead of growing from zero
        // (beyond this, growth is amortized doubling; callers with a
        // results budget use `reserve_results` for exact planning)
        self.partials.reserve(256);
    }

    /// Revert a split notice (the router cooled the group back down).
    ///
    /// The **owner** shard keeps the group marked split: its remaining
    /// windows still emit sub-aggregates, and the merge step is
    /// insensitive to the replica set shrinking back to one — keeping the
    /// flag avoids a final-vs-partial emission conflict on windows that
    /// straddle the hand-off. Every **replica** shard force-closes its
    /// copy's remaining windows into sub-aggregates and drops the replica
    /// state, reclaiming its memory.
    ///
    /// Event-time engines defer the hand-back while the reorder gate
    /// still buffers rows: it applies once the watermark passes the gate
    /// frontier observed here, i.e. after every row admitted before the
    /// notice — the group's round-robined full copies included — has been
    /// released.
    pub fn mark_unsplit(&mut self, key: &GroupKey) {
        if let Some(gate) = &self.reorder {
            if gate.pending_len() > 0 {
                self.deferred_unsplits.push((key.clone(), gate.frontier()));
                return;
            }
        }
        self.unsplit_now(key);
    }

    /// Apply every deferred unsplit whose gate-frontier deadline the
    /// watermark has passed (all of their buffered rows are released).
    fn apply_ripe_unsplits(&mut self) {
        if self.deferred_unsplits.is_empty() {
            return;
        }
        let Some(gate) = &self.reorder else {
            return;
        };
        let wm = gate.watermark();
        let mut i = 0;
        while i < self.deferred_unsplits.len() {
            if self.deferred_unsplits[i].1 <= wm {
                let (key, _) = self.deferred_unsplits.swap_remove(i);
                self.unsplit_now(&key);
            } else {
                i += 1;
            }
        }
    }

    /// The immediate half of [`Engine::mark_unsplit`].
    fn unsplit_now(&mut self, key: &GroupKey) {
        let owner = match &self.shard {
            None => true,
            Some(slice) => slice.owns(key),
        };
        if owner {
            return;
        }
        if let Some(mut grt) = self.groups.remove(key) {
            Self::drain_group(
                &self.part,
                key,
                &mut grt,
                &mut self.results,
                &mut self.partials,
            );
        }
        // a replica copy is never evicted while split (eviction skips
        // split groups), but stay defensive: drain any paged-out bytes
        // rather than silently dropping window state
        let spilled = match &mut self.spill {
            Some(tier) => tier
                .store
                .take(key)
                .unwrap_or_else(|e| panic!("spill read failed: {e}")),
            None => None,
        };
        if let Some(bytes) = spilled {
            let mut r = StateReader::new(&bytes);
            let mut grt = GroupRuntime::load_state(&mut r, &self.part)
                .unwrap_or_else(|e| panic!("spilled group state corrupt: {e}"));
            grt.split = true;
            Self::drain_group(
                &self.part,
                key,
                &mut grt,
                &mut self.results,
                &mut self.partials,
            );
        }
    }

    /// Page `key` back in from the spill log, or `None` if it was never
    /// spilled. Cold path: taken at most once per group per residency.
    #[cold]
    fn reload_spilled(
        tier: &mut SpillTier,
        part: &CompiledPartition,
        key: &GroupKey,
    ) -> Option<GroupRuntime<A>> {
        let bytes = tier
            .store
            .take(key)
            .unwrap_or_else(|e| panic!("spill read failed: {e}"))?;
        let mut r = StateReader::new(&bytes);
        let grt = GroupRuntime::load_state(&mut r, part)
            .unwrap_or_else(|e| panic!("spilled group state corrupt: {e}"));
        Some(grt)
    }

    /// Page out the coldest quarter of the resident groups (by
    /// [`GroupRuntime::last_use`]), so one eviction sweep buys
    /// `max_resident / 4` insertions before the budget binds again.
    /// Split groups are skipped — they are hot by definition and their
    /// sub-aggregate flow assumes residency — as is the group that
    /// triggered the sweep.
    #[cold]
    fn evict_coldest(
        tier: &mut SpillTier,
        groups: &mut FxHashMap<GroupKey, GroupRuntime<A>>,
        keep: &GroupKey,
    ) {
        let n_evict = (tier.max_resident / 4).max(1);
        let mut order: Vec<(u64, GroupKey)> = groups
            .iter()
            .filter(|(k, g)| !g.split && *k != keep)
            .map(|(k, g)| (g.last_use, k.clone()))
            .collect();
        order.sort_unstable_by_key(|a| a.0);
        order.truncate(n_evict);
        for (_, key) in order {
            let grt = groups.remove(&key).expect("key taken from live iteration");
            let mut w = StateWriter::new();
            grt.save_state(&mut w);
            tier.store
                .spill(key, &w.into_bytes())
                .unwrap_or_else(|e| panic!("spill write failed: {e}"));
        }
    }

    /// Drain every remaining final window of one group into `results`
    /// (or `partials` for split groups) — the shared tail of
    /// `finish_parts`, spilled-group finalization, and replica eviction.
    fn drain_group(
        part: &CompiledPartition,
        key: &GroupKey,
        grt: &mut GroupRuntime<A>,
        results: &mut ExecutorResults,
        partials: &mut PartialResults,
    ) {
        let split = grt.split;
        for (qi, f) in grt.finals.iter_mut().enumerate() {
            for (seq, v) in f.drain_before(u64::MAX) {
                let window = Timestamp(seq * part.window.slide.millis());
                if split {
                    partials.push(
                        part.queries[qi].id,
                        key.clone(),
                        window,
                        v.to_partial(),
                        part.queries[qi].output,
                    );
                } else {
                    results.emit(
                        part.queries[qi].id,
                        key.clone(),
                        window,
                        v.output(part.queries[qi].output),
                    );
                }
            }
        }
    }

    /// Serialize this engine's full evaluation state into a checkpoint
    /// segment. Spilled groups are embedded **verbatim** — their on-disk
    /// bytes already use the per-group layout — so checkpointing under
    /// spill pressure reads the log sequentially instead of paging cold
    /// groups back through the engine.
    pub fn save_state(&mut self, w: &mut StateWriter) {
        w.time(self.last_time);
        w.u64(self.events_matched);
        w.bool(self.split_global);
        // deterministic order: identical state must yield identical bytes
        let mut hashes: Vec<u64> = self.split_hashes.iter().copied().collect();
        hashes.sort_unstable();
        w.seq_len(hashes.len());
        for h in hashes {
            w.u64(h);
        }
        self.results.save_state(w);
        self.partials.save_state(w);
        let spilled = self.spill.as_ref().map_or(0, |t| t.store.len());
        w.seq_len(self.groups.len() + spilled);
        for (key, grt) in &self.groups {
            w.group_key(key);
            let mut gw = StateWriter::new();
            grt.save_state(&mut gw);
            w.bytes(&gw.into_bytes());
        }
        if let Some(tier) = &mut self.spill {
            tier.store
                .for_each(|key, bytes| {
                    w.group_key(key);
                    w.bytes(bytes);
                })
                .unwrap_or_else(|e| panic!("spill read during checkpoint failed: {e}"));
        }
        // event-time state: watermark + pending (not-yet-released) rows,
        // so a resume under disorder is crash-exact
        w.bool(self.reorder.is_some());
        if let Some(gate) = &self.reorder {
            gate.save_state(w);
            w.seq_len(self.deferred_unsplits.len());
            for (key, deadline) in &self.deferred_unsplits {
                w.group_key(key);
                w.time(*deadline);
            }
        }
    }

    /// Restore the state written by [`Engine::save_state`] into a freshly
    /// built engine for the **same** compiled partition and shard slice.
    /// With a spill tier configured, groups beyond the resident budget go
    /// straight back to the spill log without being decoded.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.last_time = r.time()?;
        self.events_matched = r.u64()?;
        self.split_global = r.bool()?;
        let n_hashes = r.seq_len()?;
        self.split_hashes.clear();
        self.split_hashes.reserve(n_hashes);
        for _ in 0..n_hashes {
            self.split_hashes.insert(r.u64()?);
        }
        self.results = ExecutorResults::load_state(r)?;
        self.partials = PartialResults::load_state(r)?;
        let n_groups = r.seq_len()?;
        self.groups.clear();
        for _ in 0..n_groups {
            let key = r.group_key()?;
            let bytes = r.bytes()?;
            let budget = self.spill.as_ref().map_or(usize::MAX, |t| t.max_resident);
            if self.groups.len() < budget {
                let mut gr = StateReader::new(bytes);
                let mut grt = GroupRuntime::load_state(&mut gr, &self.part)?;
                if !gr.is_exhausted() {
                    return Err(StateError::Corrupt("trailing group state bytes"));
                }
                self.clock += 1;
                grt.last_use = self.clock;
                self.groups.insert(key, grt);
            } else {
                let tier = self.spill.as_mut().expect("finite budget implies a tier");
                tier.store
                    .spill(key, bytes)
                    .map_err(|_| StateError::Corrupt("spill write during restore"))?;
            }
        }
        // a lateness mismatch between the checkpoint and the rebuilt
        // engine would silently change which rows count as late — refuse
        // both directions rather than guess
        let had_gate = r.bool()?;
        match (&mut self.reorder, had_gate) {
            (Some(gate), true) => {
                gate.load_state(r)?;
                let n = r.seq_len()?;
                self.deferred_unsplits.clear();
                for _ in 0..n {
                    let key = r.group_key()?;
                    let deadline = r.time()?;
                    self.deferred_unsplits.push((key, deadline));
                }
            }
            (None, false) => {}
            (Some(_), false) => {
                return Err(StateError::Corrupt(
                    "checkpoint has no event-time state but lateness is configured",
                ));
            }
            (None, true) => {
                return Err(StateError::Corrupt(
                    "checkpoint has event-time state but no lateness is configured",
                ));
            }
        }
        Ok(())
    }

    /// Number of groups currently paged out to the spill log.
    pub fn spilled_group_count(&self) -> usize {
        self.spill.as_ref().map_or(0, |t| t.store.len())
    }

    /// Process a time-ordered batch of events.
    ///
    /// Semantically identical to calling [`Engine::process`] per event;
    /// batching exists so callers amortize per-event virtual dispatch and
    /// keep this engine's state hot in cache across the whole slice.
    pub fn process_batch(&mut self, events: &[Event]) {
        for e in events {
            self.process(e);
        }
    }

    /// Process a time-ordered columnar batch.
    ///
    /// Semantically identical to [`Engine::process`] per row, but split
    /// into two passes: a **stateless pre-pass** that runs routing over the
    /// `ty` column, predicate evaluation over the value columns, and
    /// groupability/ownership checks, collecting the surviving row indexes
    /// into a reused selection buffer — and a **stateful pass** that
    /// dispatches only the selected rows into per-group state. The
    /// pre-pass touches no group state, so it runs as tight column scans;
    /// the stateful pass never re-evaluates predicates.
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        let mut sel = std::mem::take(&mut self.sel_scratch);
        sel.clear();
        let selected = if let Some(kernel) = &mut self.scan {
            // vectorized pre-pass: the kernel evaluates routing,
            // predicates, and groupability into a selection bitmap;
            // only a sharded engine still walks the survivors for
            // key construction (ownership hashes the actual key)
            match &self.shard {
                None => {
                    kernel.select_into(batch, 0, batch.len(), &mut sel);
                    sel.len() as u64
                }
                Some(slice) => {
                    let words = kernel.scan(batch, 0, batch.len());
                    for (w, &word) in words.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let lane = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let row = w * 64 + lane;
                            let ok = self.part.read_group_key(
                                batch.ty(row),
                                batch.attrs(row),
                                &mut self.vals_scratch,
                                &mut self.key_scratch,
                            );
                            debug_assert!(ok, "kernel-selected row must be groupable");
                            if ok && slice.owns(&self.key_scratch) {
                                sel.push(row as u32);
                            }
                        }
                    }
                    kernel.selected()
                }
            }
        } else {
            let mut selected = 0u64;
            let tys = batch.types();
            for (row, ty) in tys.iter().enumerate() {
                if !self.part.routed(*ty) {
                    continue;
                }
                let attrs = batch.attrs(row);
                if !self.part.predicates_pass(*ty, attrs) {
                    continue;
                }
                match &self.shard {
                    // the unsharded pre-pass only filters on groupability,
                    // deferring key construction to the stateful pass —
                    // no second clone of the grouping values
                    None => {
                        if !self.part.groupable(*ty, attrs) {
                            continue; // ungroupable event
                        }
                    }
                    // a sharded engine needs the actual key (hashed for
                    // ownership); `read_group_key` also filters ungroupables
                    Some(slice) => {
                        if !self.part.read_group_key(
                            *ty,
                            attrs,
                            &mut self.vals_scratch,
                            &mut self.key_scratch,
                        ) {
                            continue; // ungroupable event
                        }
                        // counted before the ownership filter so scalar and
                        // vector tallies agree (ownership is a shard-local
                        // partition of the same selection)
                        selected += 1;
                        if !slice.owns(&self.key_scratch) {
                            continue;
                        }
                        sel.push(row as u32);
                        continue;
                    }
                }
                selected += 1;
                sel.push(row as u32);
            }
            selected
        };
        self.rows_scanned += batch.len() as u64;
        self.rows_selected += selected;
        sharon_metrics::record_rows_scanned(batch.len() as u64);
        sharon_metrics::record_rows_selected(selected);
        self.process_rows(batch, &sel);
        self.sel_scratch = sel;
        // event-time mode: the batch's time-column max (tracked by the
        // stateless scan in `EventBatch::push_from`) is this engine's
        // frontier — advance once per batch, after admitting its rows
        if self.reorder.is_some() {
            if let Some(max) = batch.max_time() {
                self.advance_watermark(max);
            }
        }
    }

    /// Process the pre-routed rows `rows` of `batch`, in order.
    ///
    /// The caller asserts that every listed row routes into this
    /// partition, passes its predicates, and belongs to a group this
    /// engine owns — the sharded runtime's batch router establishes
    /// exactly this once per batch, so shard workers never re-evaluate
    /// the stateless prefix for rows they do not own.
    pub fn process_routed(&mut self, batch: &EventBatch, rows: &[u32]) {
        self.process_rows(batch, rows);
    }

    /// [`Engine::process_routed`] for a shard of a split group: `full`
    /// rows are processed normally, `state` rows are broadcast replicas
    /// whose final folds and matched counting are suppressed. Both lists
    /// are ascending; they are merged on the fly so the engine sees the
    /// rows in batch order.
    pub fn process_routed_split(&mut self, batch: &EventBatch, full: &[u32], state: &[u32]) {
        if state.is_empty() {
            return self.process_rows(batch, full);
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < full.len() || j < state.len() {
            let take_full = match (full.get(i), state.get(j)) {
                (Some(&f), Some(&s)) => f < s, // a row is never in both lists
                (Some(_), None) => true,
                _ => false,
            };
            let (row, state_only) = if take_full {
                i += 1;
                (full[i - 1] as usize, false)
            } else {
                j += 1;
                (state[j - 1] as usize, true)
            };
            self.process_row(
                batch.ty(row),
                batch.time(row),
                batch.attrs(row),
                true,
                state_only,
            );
        }
    }

    #[inline]
    fn process_rows(&mut self, batch: &EventBatch, rows: &[u32]) {
        for &row in rows {
            let row = row as usize;
            self.process_row(
                batch.ty(row),
                batch.time(row),
                batch.attrs(row),
                true,
                false,
            );
        }
    }

    /// Pre-size the result store for about `additional` further results
    /// per query, so steady-state window emission does not reallocate
    /// (sub-aggregate entries of split groups included).
    pub fn reserve_results(&mut self, additional: usize) {
        for q in &self.part.queries {
            self.results.reserve(q.id, additional);
        }
        // sharded engines can be handed split groups at any point; size
        // their sub-aggregate buffer with the same budget
        if self.shard.is_some() {
            self.partials.reserve(additional * self.part.queries.len());
        }
    }

    /// Expire START events and emit/close finished windows for one group.
    ///
    /// `emit_buf` is a reused scratch buffer for the drained
    /// `(window, value)` pairs — window closes allocate nothing in steady
    /// state. Split groups emit per-window sub-aggregate cells into
    /// `partials` (merged across shards later) instead of final values.
    fn touch(
        grt: &mut GroupRuntime<A>,
        part: &CompiledPartition,
        now: Timestamp,
        results: &mut ExecutorResults,
        partials: &mut PartialResults,
        key: &GroupKey,
        emit_buf: &mut Vec<(u64, A)>,
    ) {
        let spec = part.window;
        // expire: a START event at time s is dead once now − s ≥ within
        if now.millis() >= spec.within.millis() {
            let cutoff = Timestamp(now.millis() - spec.within.millis());
            if cutoff > grt.expired_through {
                grt.expired_through = cutoff;
                for (ri, runner) in grt.runners.iter_mut().enumerate() {
                    let dropped = runner.expire(cutoff);
                    if dropped > 0 {
                        for &(q, s) in &part.runners[ri].start_subs {
                            let dq = &mut grt.offs[q][s];
                            for _ in 0..dropped {
                                dq.pop_front();
                            }
                        }
                    }
                }
            }
        }
        // close windows whose end ≤ now — only when the close watermark
        // actually advanced (it moves once per slide, not per event)
        let slide = spec.slide.millis();
        let close_seq = spec.first_start_covering(now).millis() / slide;
        if close_seq <= grt.closed_before {
            return;
        }
        grt.closed_before = close_seq;
        for (qi, f) in grt.finals.iter_mut().enumerate() {
            emit_buf.clear();
            f.drain_before_into(close_seq, emit_buf);
            for &(seq, v) in emit_buf.iter() {
                if grt.split {
                    partials.push(
                        part.queries[qi].id,
                        key.clone(),
                        Timestamp(seq * slide),
                        v.to_partial(),
                        part.queries[qi].output,
                    );
                } else {
                    results.emit(
                        part.queries[qi].id,
                        key.clone(),
                        Timestamp(seq * slide),
                        v.output(part.queries[qi].output),
                    );
                }
            }
        }
        for cq in grt.chains.iter_mut() {
            for log in cq.iter_mut() {
                log.drop_dead(close_seq);
            }
        }
        for mq in grt.mirrors.iter_mut() {
            for m in mq.iter_mut() {
                m.drop_before(close_seq);
            }
        }
    }

    /// Materialize the accumulated window totals (difference-array form
    /// when the cell supports subtraction, dense otherwise) and emit them
    /// run-compressed into `target`.
    fn emit_totals(
        scratch: &mut FoldScratch<A>,
        target: &mut FoldTarget<'_, A>,
        t: Timestamp,
        min_seq: u64,
        width: usize,
    ) {
        let mut running = A::ZERO;
        let mut run_start = 0usize;
        let mut run_val = A::ZERO;
        let mut run_open = false;
        for i in 0..width {
            if A::SUBTRACTABLE {
                running.merge(&scratch.add_at[i]);
            } else {
                running = scratch.add_at[i];
            }
            let cur = running;
            if run_open && cur != run_val {
                if !run_val.is_zero() {
                    target.add_range(
                        t,
                        min_seq + run_start as u64,
                        min_seq + i as u64 - 1,
                        run_val,
                    );
                }
                run_start = i;
                run_val = cur;
            } else if !run_open {
                run_open = true;
                run_start = i;
                run_val = cur;
            }
            if A::SUBTRACTABLE {
                running.sub_assign(&scratch.remove_after[i]);
            }
        }
        if run_open && !run_val.is_zero() {
            target.add_range(
                t,
                min_seq + run_start as u64,
                min_seq + width as u64 - 1,
                run_val,
            );
        }
    }

    /// Accumulate `value × multiplier` over windows `lo..=hi` (already
    /// clamped to the open range) into the fold buffers.
    #[inline]
    fn accumulate(scratch: &mut FoldScratch<A>, li: usize, hi: usize, value: A, multiplier: &A) {
        let contribution = value.cross(multiplier);
        if contribution.is_zero() {
            return;
        }
        if A::SUBTRACTABLE {
            scratch.add_at[li].merge(&contribution);
            scratch.remove_after[hi].merge(&contribution);
        } else {
            for w in li..=hi {
                scratch.add_at[w].merge(&contribution);
            }
        }
    }

    fn reset_buffers(scratch: &mut FoldScratch<A>, width: usize) {
        scratch.add_at.clear();
        scratch.add_at.resize(width, A::ZERO);
        scratch.remove_after.clear();
        scratch.remove_after.resize(width, A::ZERO);
    }

    /// Route one in-group event through all its runner and unit roles.
    ///
    /// With `fold_finals` false (the state-only replica path of split
    /// groups), every fold whose target is a final accumulator is
    /// suppressed: state-writing roles — runner STARTs/mids, chain-stage
    /// completions, chain-writing units — proceed identically, so all
    /// shards of a split group evolve the same evaluation state while
    /// final contributions happen exactly once globally.
    fn dispatch(
        grt: &mut GroupRuntime<A>,
        part: &CompiledPartition,
        routes: &Routes,
        t: Timestamp,
        c: Contribution,
        fold_finals: bool,
        scratch: &mut FoldScratch<A>,
    ) {
        let spec = part.window;
        let slide = spec.slide.millis();
        let min_seq = spec.first_start_covering(t).millis() / slide;
        let last_seq = spec.last_start_covering(t).millis() / slide;
        let width = (last_seq - min_seq + 1) as usize;

        let GroupRuntime {
            runners,
            offs,
            chains,
            mirrors,
            finals,
            ..
        } = grt;

        for &(ri, pos) in &routes.runner_roles {
            let rspec = &part.runners[ri];
            if pos + 1 == rspec.len {
                // state-only replicas skip ENDs whose every completion
                // folds into a final accumulator — nothing they may write
                if !fold_finals
                    && rspec
                        .completion_subs
                        .iter()
                        .all(|&(q, stage)| stage + 1 == part.queries[q].n_stages)
                {
                    continue;
                }
                // END of the segment: collect per-START completion deltas
                scratch.completions.clear();
                runners[ri].on_end(t, c, |idx, st, d| {
                    scratch.completions.push((idx, st, d));
                });
                if scratch.completions.is_empty() {
                    continue;
                }
                // suffix sums δᵢ + δᵢ₊₁ + … (needed by stage > 0 folds)
                let n_comp = scratch.completions.len();
                scratch.suffix.clear();
                scratch.suffix.resize(n_comp, A::ZERO);
                let mut acc = A::ZERO;
                for i in (0..n_comp).rev() {
                    acc.merge(&scratch.completions[i].2);
                    scratch.suffix[i] = acc;
                }
                for &(q, stage) in &rspec.completion_subs {
                    let n = part.queries[q].n_stages;
                    if !fold_finals && stage + 1 == n {
                        continue; // replica: final folds happen elsewhere
                    }
                    Self::reset_buffers(scratch, width);
                    if stage == 0 {
                        // leftmost segment: a completion starting in window
                        // `hi` belongs to every open window up to `hi`
                        let one = A::unit(Contribution::NONE);
                        for i in 0..n_comp {
                            let (_, st, delta) = scratch.completions[i];
                            let hi = st.millis() / slide;
                            if hi >= min_seq {
                                let hi_i = (hi.min(last_seq) - min_seq) as usize;
                                Self::accumulate(scratch, 0, hi_i, delta, &one);
                            }
                        }
                    } else {
                        // chain fold: Σᵢ R(tᵢ) × δᵢ over the log
                        // (two-pointer over entries and START offsets)
                        let log = &mut chains[q][stage - 1];
                        log.settle(t);
                        let stage_offs = &offs[q][stage];
                        let mut p = 0usize;
                        for (j, entry) in log.iter() {
                            while p < n_comp && stage_offs[scratch.completions[p].0] <= j {
                                p += 1;
                            }
                            if p == n_comp {
                                break;
                            }
                            let lo = entry.lo.max(min_seq);
                            if lo > entry.hi {
                                continue;
                            }
                            let li = (lo - min_seq) as usize;
                            let hi_i = (entry.hi.min(last_seq) - min_seq) as usize;
                            let mult = scratch.suffix[p];
                            let value = entry.value;
                            Self::accumulate(scratch, li, hi_i, value, &mult);
                        }
                    }
                    let mut target = if stage + 1 == n {
                        FoldTarget::Final(&mut finals[q])
                    } else {
                        FoldTarget::Log(&mut chains[q][stage], &mut mirrors[q][stage])
                    };
                    Self::emit_totals(scratch, &mut target, t, min_seq, width);
                }
            } else if pos == 0 {
                // START of the segment: open a live START entry and record
                // the chain-log offset for stages > 0
                runners[ri].on_start(t, c);
                for &(q, stage) in &rspec.start_subs {
                    let off = chains[q][stage - 1].offset_at(t);
                    offs[q][stage].push_back(off);
                }
            } else {
                runners[ri].on_mid(pos, t, c);
            }
        }

        // stateless length-1 segments: START and END coincide
        for &(q, stage) in &routes.unit_roles {
            let n = part.queries[q].n_stages;
            if !fold_finals && stage + 1 == n {
                continue; // replica: final folds happen elsewhere
            }
            let delta = A::unit(c);
            if stage == 0 {
                let mut target = if n == 1 {
                    FoldTarget::Final(&mut finals[q])
                } else {
                    FoldTarget::Log(&mut chains[q][0], &mut mirrors[q][0])
                };
                target.add_range(t, min_seq, last_seq, delta);
            } else {
                // immediate combination: (all chains completed before now)
                // × this single event — the mirror holds the current
                // per-window totals, O(open windows)
                let snap = mirrors[q][stage - 1].snapshot(t);
                let mut target = if stage + 1 == n {
                    FoldTarget::Final(&mut finals[q])
                } else {
                    FoldTarget::Log(&mut chains[q][stage], &mut mirrors[q][stage])
                };
                for (seq, v) in snap.iter() {
                    if seq < min_seq {
                        continue;
                    }
                    let contribution = v.cross(&delta);
                    if !contribution.is_zero() {
                        target.add_range(t, seq, seq, contribution);
                    }
                }
            }
        }
    }

    /// Flush all remaining windows and return the results.
    ///
    /// Only valid on engines that never had a group split (the sequential
    /// paths): split groups produce sub-aggregates, which require the
    /// sharded runtime's merge step — use [`Engine::finish_parts`] there.
    pub fn finish(self) -> ExecutorResults {
        let (results, partials) = self.finish_parts();
        // a hard assert: silently dropping a split group's entire result
        // set would be far worse than aborting (the check is one
        // `Vec::is_empty`)
        assert!(
            partials.is_empty(),
            "split-group sub-aggregates require the sharded merge step — \
             use Engine::finish_parts"
        );
        results
    }

    /// Flush all remaining windows and return the final results plus this
    /// shard's per-window sub-aggregates of split groups (combined across
    /// shards by [`crate::PartialResults::finalize_into`]).
    pub fn finish_parts(mut self) -> (ExecutorResults, PartialResults) {
        // end of stream: release every row still buffered in the
        // event-time gate before any window is force-closed
        self.flush_pending();
        // spilled groups first, decoded and drained one at a time — the
        // end of a spilling run never re-materializes the whole group map
        if let Some(mut tier) = self.spill.take() {
            let spilled = tier
                .store
                .drain_all()
                .unwrap_or_else(|e| panic!("spill read at finish failed: {e}"));
            for (key, bytes) in spilled {
                let mut r = StateReader::new(&bytes);
                let mut grt = GroupRuntime::load_state(&mut r, &self.part)
                    .unwrap_or_else(|e| panic!("spilled group state corrupt: {e}"));
                Self::drain_group(
                    &self.part,
                    &key,
                    &mut grt,
                    &mut self.results,
                    &mut self.partials,
                );
            }
        }
        for (key, grt) in self.groups.iter_mut() {
            Self::drain_group(&self.part, key, grt, &mut self.results, &mut self.partials);
        }
        (self.results, self.partials)
    }

    /// Take the results emitted so far, leaving the store empty. Windows
    /// still open keep their state and appear in a later take or at
    /// [`Engine::finish`] — this is the non-consuming epoch drain used by
    /// the session layer's `drain_results`.
    pub fn take_results(&mut self) -> ExecutorResults {
        std::mem::take(&mut self.results)
    }

    /// Events that passed routing, predicates, and grouping.
    pub fn events_matched(&self) -> u64 {
        self.events_matched
    }

    /// `(rows_scanned, rows_selected)` of this engine's columnar
    /// pre-pass — identical in scalar and vector scan modes (selection
    /// is counted before any shard-ownership filtering).
    pub fn scan_stats(&self) -> (u64, u64) {
        (self.rows_scanned, self.rows_selected)
    }

    /// Live aggregate cells across all groups (memory proxy).
    pub fn cell_count(&self) -> usize {
        self.groups.values().map(GroupRuntime::cell_count).sum()
    }

    /// Number of groups with live state.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// The public executor: compiles a workload + plan into one engine per
/// sharing-signature partition and fans every event out to them.
///
/// With [`SharingPlan::non_shared`] this *is* the Non-Shared method
/// (A-Seq per query, Section 3.2); with an optimizer-produced plan it is
/// the Sharon executor (Section 3.3).
pub enum Executor {
    /// All queries are `COUNT`-like: specialized count kernel.
    #[doc(hidden)]
    __Internal(Vec<EngineKind>),
}

/// One partition engine, monomorphized on its aggregate kernel.
pub enum EngineKind {
    /// `COUNT(*)` / `COUNT(E)` partition.
    Count(Engine<CountCell>),
    /// `SUM`/`MIN`/`MAX`/`AVG` partition.
    Stats(Engine<StatsCell>),
}

impl EngineKind {
    /// Build the right kernel for `part`, optionally restricted to a
    /// group-space [`ShardSlice`].
    pub fn for_partition(part: CompiledPartition, shard: Option<ShardSlice>) -> Self {
        let count_only = part.count_only;
        match (count_only, shard) {
            (true, Some(s)) => EngineKind::Count(Engine::with_shard(part, s)),
            (true, None) => EngineKind::Count(Engine::new(part)),
            (false, Some(s)) => EngineKind::Stats(Engine::with_shard(part, s)),
            (false, None) => EngineKind::Stats(Engine::new(part)),
        }
    }

    /// Process a time-ordered batch of events.
    pub fn process_batch(&mut self, events: &[Event]) {
        match self {
            EngineKind::Count(en) => en.process_batch(events),
            EngineKind::Stats(en) => en.process_batch(events),
        }
    }

    /// Process a time-ordered columnar batch (see
    /// [`Engine::process_columnar`]).
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        match self {
            EngineKind::Count(en) => en.process_columnar(batch),
            EngineKind::Stats(en) => en.process_columnar(batch),
        }
    }

    /// Process pre-routed rows of a columnar batch (see
    /// [`Engine::process_routed`]).
    pub fn process_routed(&mut self, batch: &EventBatch, rows: &[u32]) {
        match self {
            EngineKind::Count(en) => en.process_routed(batch, rows),
            EngineKind::Stats(en) => en.process_routed(batch, rows),
        }
    }

    /// Process pre-routed full rows interleaved with state-only replica
    /// rows of split groups (see [`Engine::process_routed_split`]).
    pub fn process_routed_split(&mut self, batch: &EventBatch, full: &[u32], state: &[u32]) {
        match self {
            EngineKind::Count(en) => en.process_routed_split(batch, full, state),
            EngineKind::Stats(en) => en.process_routed_split(batch, full, state),
        }
    }

    /// Mark a group as split across shards (see [`Engine::mark_split`]).
    pub fn mark_split(&mut self, key: &GroupKey) {
        match self {
            EngineKind::Count(en) => en.mark_split(key),
            EngineKind::Stats(en) => en.mark_split(key),
        }
    }

    /// Revert a split notice (see [`Engine::mark_unsplit`]).
    pub fn mark_unsplit(&mut self, key: &GroupKey) {
        match self {
            EngineKind::Count(en) => en.mark_unsplit(key),
            EngineKind::Stats(en) => en.mark_unsplit(key),
        }
    }

    /// Enable the LRU spill tier (see [`Engine::set_spill`]).
    pub fn set_spill(&mut self, config: &SpillConfig, label: &str) -> std::io::Result<()> {
        match self {
            EngineKind::Count(en) => en.set_spill(config, label),
            EngineKind::Stats(en) => en.set_spill(config, label),
        }
    }

    /// Enable event-time processing (see [`Engine::set_lateness`]).
    pub fn set_lateness(&mut self, lateness_ms: u64) {
        match self {
            EngineKind::Count(en) => en.set_lateness(lateness_ms),
            EngineKind::Stats(en) => en.set_lateness(lateness_ms),
        }
    }

    /// Advance the event-time watermark and release ready rows (see
    /// [`Engine::advance_watermark`]).
    pub fn advance_watermark(&mut self, frontier: Timestamp) {
        match self {
            EngineKind::Count(en) => en.advance_watermark(frontier),
            EngineKind::Stats(en) => en.advance_watermark(frontier),
        }
    }

    /// Late rows dropped by this engine's gate (see
    /// [`Engine::late_rows_dropped`]).
    pub fn late_rows_dropped(&self) -> u64 {
        match self {
            EngineKind::Count(en) => en.late_rows_dropped(),
            EngineKind::Stats(en) => en.late_rows_dropped(),
        }
    }

    /// Serialize the full evaluation state, tagged with the kernel kind
    /// (see [`Engine::save_state`]).
    pub fn save_state(&mut self, w: &mut crate::checkpoint::StateWriter) {
        match self {
            EngineKind::Count(en) => {
                w.u8(0);
                en.save_state(w);
            }
            EngineKind::Stats(en) => {
                w.u8(1);
                en.save_state(w);
            }
        }
    }

    /// Restore state written by [`EngineKind::save_state`]; the kernel
    /// kind must match the one this engine was compiled with.
    pub fn load_state(
        &mut self,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<(), crate::checkpoint::StateError> {
        let tag = r.u8()?;
        match (self, tag) {
            (EngineKind::Count(en), 0) => en.load_state(r),
            (EngineKind::Stats(en), 1) => en.load_state(r),
            _ => Err(crate::checkpoint::StateError::Corrupt("engine kind tag")),
        }
    }

    /// Number of groups currently paged out to the spill log (see
    /// [`Engine::spilled_group_count`]).
    pub fn spilled_group_count(&self) -> usize {
        match self {
            EngineKind::Count(en) => en.spilled_group_count(),
            EngineKind::Stats(en) => en.spilled_group_count(),
        }
    }

    /// Pre-size the result store (see [`Engine::reserve_results`]).
    pub fn reserve_results(&mut self, additional: usize) {
        match self {
            EngineKind::Count(en) => en.reserve_results(additional),
            EngineKind::Stats(en) => en.reserve_results(additional),
        }
    }

    /// Take the results emitted so far without finishing (see
    /// [`Engine::take_results`]).
    pub fn take_results(&mut self) -> ExecutorResults {
        match self {
            EngineKind::Count(en) => en.take_results(),
            EngineKind::Stats(en) => en.take_results(),
        }
    }

    /// Flush remaining windows and return the results.
    pub fn finish(self) -> ExecutorResults {
        match self {
            EngineKind::Count(en) => en.finish(),
            EngineKind::Stats(en) => en.finish(),
        }
    }

    /// Flush remaining windows and return the results plus split-group
    /// sub-aggregates (see [`Engine::finish_parts`]).
    pub fn finish_parts(self) -> (ExecutorResults, PartialResults) {
        match self {
            EngineKind::Count(en) => en.finish_parts(),
            EngineKind::Stats(en) => en.finish_parts(),
        }
    }

    /// Events that passed routing, predicates, grouping, and shard
    /// ownership.
    pub fn events_matched(&self) -> u64 {
        match self {
            EngineKind::Count(en) => en.events_matched(),
            EngineKind::Stats(en) => en.events_matched(),
        }
    }

    /// `(rows_scanned, rows_selected)` of the columnar pre-pass (see
    /// [`Engine::scan_stats`]).
    pub fn scan_stats(&self) -> (u64, u64) {
        match self {
            EngineKind::Count(en) => en.scan_stats(),
            EngineKind::Stats(en) => en.scan_stats(),
        }
    }

    /// End-of-stream gate drain (see [`Engine::flush_pending`]): release
    /// every buffered event-time row so pre-finish stats are final.
    pub fn flush_pending(&mut self) {
        match self {
            EngineKind::Count(en) => en.flush_pending(),
            EngineKind::Stats(en) => en.flush_pending(),
        }
    }
}

impl Executor {
    /// Compile `workload` under `plan`.
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
    ) -> Result<Self, CompileError> {
        let parts = compile(catalog, workload, plan)?;
        let engines = parts
            .into_iter()
            .map(|p| EngineKind::for_partition(p, None))
            .collect();
        Ok(Executor::__Internal(engines))
    }

    /// The Non-Shared (A-Seq) executor for `workload`.
    pub fn non_shared(catalog: &Catalog, workload: &Workload) -> Result<Self, CompileError> {
        Self::new(catalog, workload, &SharingPlan::non_shared())
    }

    fn engines(&mut self) -> &mut Vec<EngineKind> {
        let Executor::__Internal(e) = self;
        e
    }

    /// Process one event.
    pub fn process(&mut self, e: &Event) {
        for engine in self.engines() {
            match engine {
                EngineKind::Count(en) => en.process(e),
                EngineKind::Stats(en) => en.process(e),
            }
        }
    }

    /// Process a time-ordered batch of events.
    ///
    /// Equivalent to per-event [`Executor::process`], but iterates engines
    /// in the outer loop: each partition engine consumes the whole batch
    /// while its state is hot, instead of every event paying one dispatch
    /// per engine.
    pub fn process_batch(&mut self, events: &[Event]) {
        for engine in self.engines() {
            engine.process_batch(events);
        }
    }

    /// Process a time-ordered columnar batch: each partition engine runs
    /// its columnar pre-pass and stateful pass over the whole batch while
    /// its state is hot (see [`Engine::process_columnar`]).
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        for engine in self.engines() {
            engine.process_columnar(batch);
        }
    }

    /// Pre-size every partition's result store for about `additional`
    /// further results per query (capacity planning for allocation-free
    /// steady-state emission).
    pub fn reserve_results(&mut self, additional: usize) {
        for engine in self.engines() {
            engine.reserve_results(additional);
        }
    }

    /// Enable event-time processing on every partition engine (see
    /// [`Engine::set_lateness`]): input may arrive out of timestamp
    /// order, rows release behind the watermark `max_time_seen −
    /// lateness_ms`, and rows behind the watermark are dropped and
    /// counted.
    pub fn set_lateness(&mut self, lateness_ms: u64) {
        for engine in self.engines() {
            engine.set_lateness(lateness_ms);
        }
    }

    /// Late rows dropped, summed over partitions.
    pub fn late_rows_dropped(&self) -> u64 {
        let Executor::__Internal(engines) = self;
        engines.iter().map(EngineKind::late_rows_dropped).sum()
    }

    /// Default batch size for [`Executor::run`] and the sharded runtime.
    pub const RUN_BATCH: usize = 1024;

    /// Drain a stream through the executor in columnar batches.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        let mut buf = EventBatch::with_capacity(Self::RUN_BATCH, 2);
        while stream.next_batch_columnar(Self::RUN_BATCH, &mut buf) > 0 {
            self.process_columnar(&buf);
            buf.clear();
        }
        self
    }

    /// Take the results emitted so far across all partition engines,
    /// leaving every store empty. Open windows keep their state and
    /// appear in a later take or at [`Executor::finish`] — the epoch
    /// drain backing the session layer's `drain_results`.
    pub fn take_results(&mut self) -> ExecutorResults {
        let mut out = ExecutorResults::new();
        for engine in self.engines() {
            out.merge(engine.take_results());
        }
        out
    }

    /// Flush remaining windows and return all results.
    pub fn finish(self) -> ExecutorResults {
        let Executor::__Internal(engines) = self;
        let mut out = ExecutorResults::new();
        for engine in engines {
            out.merge(match engine {
                EngineKind::Count(en) => en.finish(),
                EngineKind::Stats(en) => en.finish(),
            });
        }
        out
    }

    /// Events that passed routing, predicates, and grouping, summed over
    /// partitions.
    pub fn events_matched(&self) -> u64 {
        let Executor::__Internal(engines) = self;
        engines
            .iter()
            .map(|e| match e {
                EngineKind::Count(en) => en.events_matched(),
                EngineKind::Stats(en) => en.events_matched(),
            })
            .sum()
    }

    /// Live aggregate cells (memory proxy).
    pub fn cell_count(&self) -> usize {
        let Executor::__Internal(engines) = self;
        engines
            .iter()
            .map(|e| match e {
                EngineKind::Count(en) => en.cell_count(),
                EngineKind::Stats(en) => en.cell_count(),
            })
            .sum()
    }

    /// Per-partition `(rows_scanned, rows_selected)` of the columnar
    /// pre-pass (one entry per engine, in partition order).
    pub fn scan_stats(&self) -> Vec<(u64, u64)> {
        let Executor::__Internal(engines) = self;
        engines.iter().map(EngineKind::scan_stats).collect()
    }
}

impl crate::processor::BatchProcessor for Executor {
    fn process_event(&mut self, e: &Event) {
        self.process(e);
    }

    fn process_events(&mut self, events: &[Event]) {
        self.process_batch(events);
    }

    fn process_columnar(&mut self, batch: &EventBatch) {
        Executor::process_columnar(self, batch);
    }

    fn set_lateness(&mut self, lateness_ms: u64) {
        Executor::set_lateness(self, lateness_ms);
    }

    fn late_rows_dropped(&self) -> u64 {
        Executor::late_rows_dropped(self)
    }

    fn events_matched(&self) -> u64 {
        Executor::events_matched(self)
    }

    fn scan_stats(&self) -> Vec<(u64, u64)> {
        Executor::scan_stats(self)
    }

    fn state_size(&self) -> usize {
        self.cell_count()
    }

    fn finish(self: Box<Self>) -> (ExecutorResults, u64) {
        let matched = Executor::events_matched(&self);
        ((*self).finish(), matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_query::aggregate::AggValue;
    use sharon_query::{parse_workload, Pattern, PlanCandidate, QueryId};
    use sharon_types::EventTypeId;

    fn ev(ty: EventTypeId, t: u64) -> Event {
        Event::new(ty, Timestamp(t))
    }

    fn run_queries(
        sources: &[&str],
        plan: &SharingPlan,
        build: impl Fn(&Catalog) -> Vec<Event>,
    ) -> (Catalog, ExecutorResults) {
        let mut c = Catalog::new();
        let w = parse_workload(&mut c, sources.iter().copied()).unwrap();
        let mut ex = Executor::new(&c, &w, plan).unwrap();
        for e in build(&c) {
            ex.process(&e);
        }
        (c, ex.finish())
    }

    #[test]
    fn figure_6a_count_in_one_window() {
        // pattern (A,B); a1 b2 a3 b4 all inside window [0, 10)
        let (c, res) = run_queries(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms"],
            &SharingPlan::non_shared(),
            |cat| {
                let a = cat.lookup("A").unwrap();
                let b = cat.lookup("B").unwrap();
                vec![ev(a, 1), ev(b, 2), ev(a, 3), ev(b, 4)]
            },
        );
        let _ = c;
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(3)),
            "paper Figure 6(a): count(A,B) = 3"
        );
    }

    #[test]
    fn figure_6b_sliding_window_expiration() {
        // window length 4, slide 1; a1 a2 b5: only (a2,b5) fits a window,
        // namely [2, 6)
        let (_, res) = run_queries(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 4 ms SLIDE 1 ms"],
            &SharingPlan::non_shared(),
            |cat| {
                let a = cat.lookup("A").unwrap();
                let b = cat.lookup("B").unwrap();
                vec![ev(a, 1), ev(a, 2), ev(b, 5)]
            },
        );
        let all = res.of_query_sorted(QueryId(0));
        assert_eq!(
            all,
            vec![(GroupKey::Global, Timestamp(2), AggValue::Count(1))]
        );
    }

    #[test]
    fn multiple_windows_capture_the_same_sequence() {
        // within 4 slide 1: (a3,b4) is inside windows [1,5),[2,6),[3,7)
        let (_, res) = run_queries(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 4 ms SLIDE 1 ms"],
            &SharingPlan::non_shared(),
            |cat| {
                let a = cat.lookup("A").unwrap();
                let b = cat.lookup("B").unwrap();
                vec![ev(a, 3), ev(b, 4)]
            },
        );
        let all = res.of_query_sorted(QueryId(0));
        assert_eq!(all.len(), 3);
        for (g, w, v) in &all {
            assert_eq!(*g, GroupKey::Global);
            assert!([1, 2, 3].contains(&w.millis()), "window {w}");
            assert_eq!(*v, AggValue::Count(1));
        }
    }

    #[test]
    fn shared_plan_reproduces_example_3_total() {
        // (A,B,C,D) with shared (A,B) and (C,D) vs non-shared: same counts.
        // a1 b2 c3 d4 d5 c6 d7 inside one window:
        //   via c3: (a1,b2) before c3 = 1; (c3,d4),(c3,d5),(c3,d7) = 3 → 3
        //   via c6: (a1,b2) = 1; (c6,d7) = 1 → 1
        //   total = 4
        let srcs = [
            "RETURN COUNT(*) PATTERN SEQ(A, B, C, D) WITHIN 100 ms SLIDE 100 ms",
            "RETURN COUNT(*) PATTERN SEQ(A, B, Z) WITHIN 100 ms SLIDE 100 ms",
        ];
        let events = |cat: &Catalog| {
            let a = cat.lookup("A").unwrap();
            let b = cat.lookup("B").unwrap();
            let cc = cat.lookup("C").unwrap();
            let d = cat.lookup("D").unwrap();
            vec![
                ev(a, 1),
                ev(b, 2),
                ev(cc, 3),
                ev(d, 4),
                ev(d, 5),
                ev(cc, 6),
                ev(d, 7),
            ]
        };
        // shared plan: share (A,B) between q1 and q2
        let mut c0 = Catalog::new();
        let _ = parse_workload(&mut c0, srcs.iter().copied()).unwrap();
        let ab = Pattern::from_names(&mut c0, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);

        let (_, shared) = run_queries(&srcs, &plan, events);
        let (_, nonshared) = run_queries(&srcs, &SharingPlan::non_shared(), events);

        assert_eq!(
            shared.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(4))
        );
        assert!(shared.semantically_eq(&nonshared, 1e-9));
    }

    #[test]
    fn grouping_partitions_state() {
        let mut c = Catalog::new();
        let a = c.register_with_schema("A", sharon_types::Schema::new(["vehicle"]));
        let b = c.register_with_schema("B", sharon_types::Schema::new(["vehicle"]));
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY vehicle WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let mut ex = Executor::non_shared(&c, &w).unwrap();
        let mk = |ty, t, v: i64| Event::with_attrs(ty, Timestamp(t), vec![Value::Int(v)]);
        // vehicle 1: a1 b2 ; vehicle 2: a3 ; b4 of vehicle 2 completes only v2
        ex.process(&mk(a, 1, 1));
        ex.process(&mk(b, 2, 1));
        ex.process(&mk(a, 3, 2));
        ex.process(&mk(b, 4, 2));
        let res = ex.finish();
        let k1 = GroupKey::One(Value::Int(1));
        let k2 = GroupKey::One(Value::Int(2));
        assert_eq!(
            res.get(QueryId(0), &k1, Timestamp(0)),
            Some(&AggValue::Count(1))
        );
        assert_eq!(
            res.get(QueryId(0), &k2, Timestamp(0)),
            Some(&AggValue::Count(1))
        );
        assert_eq!(res.len(), 2, "no cross-vehicle sequences");
    }

    #[test]
    fn predicates_filter_events() {
        let mut c = Catalog::new();
        let a = c.register_with_schema("A", sharon_types::Schema::new(["speed"]));
        let b = c.register("B");
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.speed > 50 WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let mut ex = Executor::non_shared(&c, &w).unwrap();
        ex.process(&Event::with_attrs(a, Timestamp(1), vec![Value::Int(40)])); // filtered
        ex.process(&Event::with_attrs(a, Timestamp(2), vec![Value::Int(60)]));
        ex.process(&ev(b, 3));
        assert_eq!(ex.events_matched(), 2);
        let res = ex.finish();
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(1))
        );
    }

    #[test]
    fn sum_aggregate_over_sequences() {
        // SUM(B.x) over pattern (A,B): a1, b2(x=10), b3(x=5)
        // sequences: (a1,b2) and (a1,b3) => sum = 15
        let mut c = Catalog::new();
        let a = c.register("A");
        let b = c.register_with_schema("B", sharon_types::Schema::new(["x"]));
        let w = parse_workload(
            &mut c,
            ["RETURN SUM(B.x) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let mut ex = Executor::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        ex.process(&ev(a, 1));
        ex.process(&Event::with_attrs(b, Timestamp(2), vec![Value::Int(10)]));
        ex.process(&Event::with_attrs(b, Timestamp(3), vec![Value::Int(5)]));
        let res = ex.finish();
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Number(Some(15.0)))
        );
    }

    #[test]
    fn min_max_avg() {
        let mut c = Catalog::new();
        let a = c.register_with_schema("A", sharon_types::Schema::new(["x"]));
        let b = c.register("B");
        let w = parse_workload(
            &mut c,
            [
                "RETURN MIN(A.x) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
                "RETURN MAX(A.x) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
                "RETURN AVG(A.x) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let mut ex = Executor::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        ex.process(&Event::with_attrs(a, Timestamp(1), vec![Value::Int(4)]));
        ex.process(&Event::with_attrs(a, Timestamp(2), vec![Value::Int(8)]));
        ex.process(&ev(b, 3));
        let res = ex.finish();
        let g = GroupKey::Global;
        assert_eq!(
            res.get(QueryId(0), &g, Timestamp(0)),
            Some(&AggValue::Number(Some(4.0)))
        );
        assert_eq!(
            res.get(QueryId(1), &g, Timestamp(0)),
            Some(&AggValue::Number(Some(8.0)))
        );
        assert_eq!(
            res.get(QueryId(2), &g, Timestamp(0)),
            Some(&AggValue::Number(Some(6.0)))
        );
    }

    #[test]
    fn non_subtractable_multi_window_fold_avoids_difference_arrays() {
        // overlapping sliding windows force a multi-window range fold —
        // the shape the difference-array fast path optimizes. Stats cells
        // are not SUBTRACTABLE, so the fold must take the dense path:
        // reaching `sub_assign` on a StatsCell panics ("does not support
        // subtraction"), so completing with exact per-window minima
        // proves the fast path never ran
        let mut c = Catalog::new();
        let a = c.register_with_schema("A", sharon_types::Schema::new(["x"]));
        let b = c.register("B");
        let w = parse_workload(
            &mut c,
            ["RETURN MIN(A.x) PATTERN SEQ(A, B) WITHIN 12 ms SLIDE 4 ms"],
        )
        .unwrap();
        let mut ex = Executor::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        ex.process(&Event::with_attrs(a, Timestamp(1), vec![Value::Int(4)]));
        ex.process(&Event::with_attrs(a, Timestamp(6), vec![Value::Int(2)]));
        ex.process(&ev(b, 9));
        let res = ex.finish();
        let g = GroupKey::Global;
        // window 0..12 holds both sequences (min 2), window 4..16 only
        // the one starting at the second A
        assert_eq!(
            res.get(QueryId(0), &g, Timestamp(0)),
            Some(&AggValue::Number(Some(2.0)))
        );
        assert_eq!(
            res.get(QueryId(0), &g, Timestamp(4)),
            Some(&AggValue::Number(Some(2.0)))
        );
    }

    #[test]
    fn gated_engine_absorbs_covered_disorder_exactly() {
        let queries = ["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 5 ms"];
        let (_, want) = run_queries(&queries, &SharingPlan::non_shared(), |cat| {
            let a = cat.lookup("A").unwrap();
            let b = cat.lookup("B").unwrap();
            vec![ev(a, 1), ev(b, 3), ev(a, 4), ev(b, 7)]
        });

        let mut c = Catalog::new();
        let a = c.register("A");
        let b = c.register("B");
        let w = parse_workload(&mut c, queries).unwrap();
        let mut ex = Executor::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        ex.set_lateness(4); // covers the shuffle below (max regression 3)
        for e in [ev(b, 3), ev(a, 1), ev(b, 7), ev(a, 4)] {
            ex.process(&e);
        }
        assert_eq!(ex.late_rows_dropped(), 0);
        let got = ex.finish();
        assert!(
            got.semantically_eq(&want, 1e-9),
            "covered disorder must reproduce the in-order results"
        );
    }

    #[test]
    fn late_rows_drop_and_count_never_fold() {
        let mut c = Catalog::new();
        let a = c.register("A");
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A) WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let mut ex = Executor::new(&c, &w, &SharingPlan::non_shared()).unwrap();
        ex.set_lateness(2);
        ex.process(&ev(a, 10)); // watermark 8
        ex.process(&ev(a, 5)); // 5 < 8: late — dropped and counted
        ex.process(&ev(a, 8)); // 8 == watermark: admitted
        assert_eq!(ex.late_rows_dropped(), 1);
        let res = ex.finish();
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(1)),
            "the late row must not be folded into the closed window"
        );
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(10)),
            Some(&AggValue::Count(1))
        );
    }

    #[test]
    fn length_one_pattern() {
        let (_, res) = run_queries(
            &["RETURN COUNT(*) PATTERN SEQ(A) WITHIN 10 ms SLIDE 10 ms"],
            &SharingPlan::non_shared(),
            |cat| {
                let a = cat.lookup("A").unwrap();
                vec![ev(a, 1), ev(a, 2), ev(a, 15)]
            },
        );
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(2))
        );
        assert_eq!(
            res.get(QueryId(0), &GroupKey::Global, Timestamp(10)),
            Some(&AggValue::Count(1))
        );
    }

    #[test]
    fn same_timestamp_events_never_form_sequences() {
        let (_, res) = run_queries(
            &["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms"],
            &SharingPlan::non_shared(),
            |cat| {
                let a = cat.lookup("A").unwrap();
                let b = cat.lookup("B").unwrap();
                vec![ev(a, 5), ev(b, 5)]
            },
        );
        assert!(res.is_empty());
    }

    #[test]
    fn shared_unit_prefix_and_suffix() {
        // q1 = (X, A, B), q2 = (Y, A, B) share (A,B) at stage 1;
        // X/Y are unit stage-0 segments.
        let srcs = [
            "RETURN COUNT(*) PATTERN SEQ(X, A, B) WITHIN 100 ms SLIDE 100 ms",
            "RETURN COUNT(*) PATTERN SEQ(Y, A, B) WITHIN 100 ms SLIDE 100 ms",
        ];
        let mut c0 = Catalog::new();
        let _ = parse_workload(&mut c0, srcs.iter().copied()).unwrap();
        let ab = Pattern::from_names(&mut c0, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        let events = |cat: &Catalog| {
            let x = cat.lookup("X").unwrap();
            let y = cat.lookup("Y").unwrap();
            let a = cat.lookup("A").unwrap();
            let b = cat.lookup("B").unwrap();
            // x1 y2 a3 b4 a5 b6:
            // q1: x1 followed by (a,b) pairs: (a3,b4),(a3,b6),(a5,b6) = 3
            // q2: y2 followed by the same 3 pairs = 3
            vec![ev(x, 1), ev(y, 2), ev(a, 3), ev(b, 4), ev(a, 5), ev(b, 6)]
        };
        let (_, shared) = run_queries(&srcs, &plan, events);
        let (_, nonshared) = run_queries(&srcs, &SharingPlan::non_shared(), events);
        assert_eq!(
            shared.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(3))
        );
        assert_eq!(
            shared.get(QueryId(1), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Count(3))
        );
        assert!(shared.semantically_eq(&nonshared, 1e-9));
    }

    #[test]
    fn shared_sliding_window_equivalence_small() {
        // sliding windows + shared mid segment, compare with non-shared
        let srcs = [
            "RETURN COUNT(*) PATTERN SEQ(X, A, B, Z) WITHIN 6 ms SLIDE 2 ms",
            "RETURN COUNT(*) PATTERN SEQ(Y, A, B, Z) WITHIN 6 ms SLIDE 2 ms",
        ];
        let mut c0 = Catalog::new();
        let _ = parse_workload(&mut c0, srcs.iter().copied()).unwrap();
        let ab = Pattern::from_names(&mut c0, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        let events = |cat: &Catalog| {
            let x = cat.lookup("X").unwrap();
            let y = cat.lookup("Y").unwrap();
            let a = cat.lookup("A").unwrap();
            let b = cat.lookup("B").unwrap();
            let z = cat.lookup("Z").unwrap();
            vec![
                ev(x, 1),
                ev(a, 2),
                ev(y, 3),
                ev(b, 4),
                ev(z, 5),
                ev(a, 6),
                ev(x, 7),
                ev(b, 8),
                ev(z, 9),
                ev(z, 10),
            ]
        };
        let (_, shared) = run_queries(&srcs, &plan, events);
        let (_, nonshared) = run_queries(&srcs, &SharingPlan::non_shared(), events);
        assert!(
            shared.semantically_eq(&nonshared, 1e-9),
            "shared: {:?}\nnonshared: {:?}",
            shared.of_query_sorted(QueryId(0)),
            nonshared.of_query_sorted(QueryId(0))
        );
        assert!(!nonshared.is_empty());
    }

    #[test]
    fn sharded_engines_process_columnar_partitions_the_groups() {
        // engines built with a ShardSlice and fed whole columnar batches
        // keep only the groups they own; merging the shard results
        // reproduces the unsharded engine exactly
        let mut c = Catalog::new();
        c.register_with_schema("A", sharon_types::Schema::new(["g"]));
        c.register_with_schema("B", sharon_types::Schema::new(["g"]));
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut batch = sharon_types::EventBatch::new();
        for i in 0..600u64 {
            batch.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int((i / 2) as i64 % 23)],
            );
        }

        let mut unsharded = Executor::non_shared(&c, &w).unwrap();
        unsharded.process_columnar(&batch);
        let want_matched = unsharded.events_matched();
        let want = unsharded.finish();
        assert!(!want.is_empty());

        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        let n_shards = 3u32;
        let mut got = ExecutorResults::new();
        let mut matched = 0;
        for shard in 0..n_shards {
            let mut engines: Vec<EngineKind> = parts
                .iter()
                .enumerate()
                .map(|(pi, p)| {
                    let slice = ShardSlice {
                        index: shard,
                        of: n_shards,
                        owns_global: pi as u32 % n_shards == shard,
                    };
                    EngineKind::for_partition(p.clone(), Some(slice))
                })
                .collect();
            for engine in &mut engines {
                engine.process_columnar(&batch);
            }
            for engine in engines {
                matched += engine.events_matched();
                got.merge(engine.finish());
            }
        }
        assert_eq!(matched, want_matched, "shard ownership partitions rows");
        assert!(got.semantically_eq(&want, 1e-9));
    }

    #[test]
    fn events_matched_and_cell_count() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms"],
        )
        .unwrap();
        let mut ex = Executor::non_shared(&c, &w).unwrap();
        let a = c.lookup("A").unwrap();
        ex.process(&ev(a, 1));
        let unknown = EventTypeId(99);
        ex.process(&ev(unknown, 2)); // ignored entirely
        assert_eq!(ex.events_matched(), 1);
        assert!(ex.cell_count() >= 1);
    }

    /// A grouped two-stage workload over `n_groups` groups: alternating
    /// `A(g)` / `B(g)` rounds, one event per group per round.
    fn grouped_setup(n_groups: i64) -> (Catalog, Workload, Vec<Event>) {
        use sharon_types::Schema;
        let mut c = Catalog::new();
        c.register_with_schema("A", Schema::new(["g"]));
        c.register_with_schema("B", Schema::new(["g"]));
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 8 ms SLIDE 4 ms"],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut events = Vec::new();
        let mut t = 0u64;
        for round in 0..6i64 {
            for g in 0..n_groups {
                t += 1;
                let ty = if (g + round) % 2 == 0 { a } else { b };
                events.push(Event::with_attrs(ty, Timestamp(t), [Value::Int(g)]));
            }
        }
        (c, w, events)
    }

    #[test]
    fn spill_tier_pages_cold_groups_with_identical_results() {
        use crate::spill::SpillConfig;
        let (c, w, events) = grouped_setup(64);
        let dir = std::env::temp_dir().join(format!("sharon-engine-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SpillConfig::new(&dir, 8);

        let run = |spill: Option<&SpillConfig>| {
            let mut ex = Executor::non_shared(&c, &w).unwrap();
            if let Some(cfg) = spill {
                let Executor::__Internal(engines) = &mut ex;
                for (i, e) in engines.iter_mut().enumerate() {
                    e.set_spill(cfg, &format!("engine-test-{i}")).unwrap();
                }
            }
            for e in &events {
                ex.process(e);
            }
            ex.finish()
        };

        let spills_before = sharon_metrics::group_spills();
        let reloads_before = sharon_metrics::group_reloads();
        let with_spill = run(Some(&cfg));
        assert!(
            sharon_metrics::group_spills() > spills_before,
            "64 groups under a budget of 8 must page out"
        );
        assert!(
            sharon_metrics::group_reloads() > reloads_before,
            "revisited groups must page back in"
        );
        let without = run(None);
        assert!(
            with_spill.semantically_eq(&without, 0.0),
            "paging groups in and out must not change any result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_state_round_trips_mid_stream() {
        let (c, w, events) = grouped_setup(16);
        // cut mid-stream at an uneven point so live STARTs, pending
        // same-timestamp state, and half-closed windows all cross the
        // snapshot boundary
        let cut = events.len() / 2 + 3;

        let mut reference = Executor::non_shared(&c, &w).unwrap();
        for e in &events {
            reference.process(e);
        }
        let want_matched = reference.events_matched();
        let want = reference.finish();

        let mut first = Executor::non_shared(&c, &w).unwrap();
        for e in &events[..cut] {
            first.process(e);
        }
        let blobs: Vec<Vec<u8>> = {
            let Executor::__Internal(engines) = &mut first;
            engines
                .iter_mut()
                .map(|e| {
                    let mut sw = crate::checkpoint::StateWriter::new();
                    e.save_state(&mut sw);
                    sw.into_bytes()
                })
                .collect()
        };

        let mut resumed = Executor::non_shared(&c, &w).unwrap();
        {
            let Executor::__Internal(engines) = &mut resumed;
            assert_eq!(engines.len(), blobs.len());
            for (e, b) in engines.iter_mut().zip(&blobs) {
                let mut sr = crate::checkpoint::StateReader::new(b);
                e.load_state(&mut sr).unwrap();
                assert!(sr.is_exhausted(), "engine state fully consumed");
            }
        }
        for e in &events[cut..] {
            resumed.process(e);
        }
        assert_eq!(resumed.events_matched(), want_matched);
        assert!(
            resumed.finish().semantically_eq(&want, 0.0),
            "snapshot + restore + replay must equal the uninterrupted run"
        );
    }

    #[test]
    fn engine_load_state_rejects_kind_mismatch() {
        let (c, w, _) = grouped_setup(2);
        let mut ex = Executor::non_shared(&c, &w).unwrap();
        let Executor::__Internal(engines) = &mut ex;
        let mut sw = crate::checkpoint::StateWriter::new();
        engines[0].save_state(&mut sw);
        let mut bytes = sw.into_bytes();
        bytes[0] ^= 1; // flip the kernel-kind tag
        let mut sr = crate::checkpoint::StateReader::new(&bytes);
        assert!(engines[0].load_state(&mut sr).is_err());
    }
}
