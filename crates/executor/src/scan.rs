//! Compiled scan kernels: the stateless prefix of a routing scope
//! (type routing, predicate clauses, groupability) evaluated over whole
//! [`EventBatch`]es into **u64 selection bitmaps**, 64 rows per word.
//!
//! The per-row interpreter walks every row through `routed` →
//! `predicates_pass` → `groupable`, paying branchy virtual-ish dispatch
//! per row per clause. A [`ScanKernel`] compiles the scope's clause list
//! once and evaluates it column-at-a-time:
//!
//! 1. **Routing + groupability pass** — one fused sweep over the `ty` and
//!    row-offset columns builds the candidate bitmap: a single per-type
//!    table lookup yields the row's minimum width (`u32::MAX` for
//!    unrouted types), so bit `i` is one compare — set iff the row's type
//!    routes into the scope *and* the row carries every `GROUP BY`
//!    attribute (grouping attributes are positional, so presence of
//!    attribute `a` is `row_width > a`). The same sweep scatters each
//!    clause-bearing type's membership bitmap, so the type column is read
//!    exactly once per scan no matter how many clauses follow.
//! 2. **Gather** — identical `(attr, op, lit)` clauses appearing on
//!    several types (the signature of a shared workload) are merged at
//!    compile time into one clause over the union type mask; for each
//!    distinct `(type set, attribute)` run, the *live* rows' values are
//!    gathered once into reused typed column scratch (`f64` mirror, exact
//!    `i64` lane, plus present/int/str bitmaps). Live means still
//!    selected: rows an earlier clause failed are never gathered again.
//! 3. **Clause evaluation** — each clause produces a pass bitmap from the
//!    gathered columns with branch-free 64-lane comparisons, folded into
//!    the selection with `R &= !M | P` (rows of other types are
//!    unaffected; matching rows must pass). String-literal equality falls
//!    back to a scalar lane over the (few) set bits.
//! 4. **Extraction** — `trailing_zeros` walks each word's survivors into
//!    the existing `Vec<u32>` selection buffers.
//!
//! Exactness is non-negotiable: the kernel reproduces
//! [`sharon_query::clause_passes`] bit for bit — a missing attribute
//! fails every operator (`!=` included), a present-but-incomparable value
//! (numeric vs. string, NaN comparisons) satisfies only `!=`, `Int` vs
//! `Int` compares exactly in `i64` (no precision loss past 2^53), and
//! mixed numeric comparisons go through `f64` exactly like
//! [`Value::partial_cmp`]. The scalar interpreter stays available as the
//! differential-testing oracle behind the `SHARON_SCAN` knob.

use sharon_query::{clause_passes, CmpOp};
use sharon_types::{AttrId, EventBatch, Value};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Which stateless-scan implementation the executors run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// The per-row interpreter loop (the differential-testing oracle).
    Scalar,
    /// Compiled [`ScanKernel`]s over u64 selection bitmaps (the default).
    Vector,
}

impl std::str::FromStr for ScanMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(ScanMode::Scalar),
            "vector" => Ok(ScanMode::Vector),
            other => Err(format!("must be `scalar` or `vector`, got `{other}`")),
        }
    }
}

/// Process-wide programmatic override of the scan mode (0 = none,
/// 1 = scalar, 2 = vector). Tests use [`set_scan_mode`] instead of
/// mutating the environment, which would race across test threads.
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The scan mode to use when none is forced programmatically: the
/// `SHARON_SCAN` environment variable if set (`scalar` or `vector`),
/// [`ScanMode::Vector`] otherwise.
///
/// Read at component construction time, never on the hot path. An
/// unparsable `SHARON_SCAN` panics rather than silently running the
/// default mode — a bench matrix typo must not record numbers attributed
/// to a scan mode that never ran.
pub fn scan_mode() -> ScanMode {
    match MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return ScanMode::Scalar,
        2 => return ScanMode::Vector,
        _ => {}
    }
    match std::env::var("SHARON_SCAN") {
        Ok(s) => match s.as_str() {
            "scalar" => ScanMode::Scalar,
            "vector" => ScanMode::Vector,
            other => panic!("SHARON_SCAN must be `scalar` or `vector`, got `{other}`"),
        },
        Err(_) => ScanMode::Vector,
    }
}

/// Force the scan mode for components constructed from now on (`None`
/// returns control to the `SHARON_SCAN` environment variable). Tests use
/// this to build scalar and vector executors side by side in one process.
pub fn set_scan_mode(mode: Option<ScanMode>) {
    let v = match mode {
        None => 0,
        Some(ScanMode::Scalar) => 1,
        Some(ScanMode::Vector) => 2,
    };
    MODE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Per-scope stateless-scan tallies, shared between a [`crate::BatchRouter`]
/// (which may live on a dedicated router thread) and the
/// [`crate::ShardedExecutor`] handle that reports them: `scanned` counts
/// rows examined, `selected` rows that survived routing + predicates +
/// groupability.
#[derive(Debug)]
pub struct ScanCounters {
    scanned: Box<[AtomicU64]>,
    selected: Box<[AtomicU64]>,
}

impl ScanCounters {
    /// Zeroed counters for `n_scopes` routing scopes.
    pub fn new(n_scopes: usize) -> Arc<Self> {
        Arc::new(ScanCounters {
            scanned: (0..n_scopes).map(|_| AtomicU64::new(0)).collect(),
            selected: (0..n_scopes).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Add one chunk's tallies for `scope`.
    #[inline]
    pub fn record(&self, scope: usize, scanned: u64, selected: u64) {
        self.scanned[scope].fetch_add(scanned, Ordering::Relaxed);
        self.selected[scope].fetch_add(selected, Ordering::Relaxed);
    }

    /// Number of scopes tracked.
    pub fn len(&self) -> usize {
        self.scanned.len()
    }

    /// True if no scopes are tracked.
    pub fn is_empty(&self) -> bool {
        self.scanned.is_empty()
    }

    /// `(rows_scanned, rows_selected)` of `scope` so far.
    pub fn get(&self, scope: usize) -> (u64, u64) {
        (
            self.scanned[scope].load(Ordering::Relaxed),
            self.selected[scope].load(Ordering::Relaxed),
        )
    }

    /// All scopes' `(rows_scanned, rows_selected)` pairs.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// One compiled predicate clause: rows of the types named by `slots`
/// must satisfy `attrs[attr] <op> lit`. Identical `(attr, op, lit)`
/// clauses appearing on several routed types — the signature of a shared
/// workload — are merged into one clause over the *union* of the type
/// masks, so the comparison sweep runs once, not once per type.
#[derive(Debug, Clone)]
struct Clause {
    /// Slot indexes (into the scattered per-type membership bitmaps) of
    /// every type carrying this clause, sorted.
    slots: Box<[u32]>,
    /// Positional attribute index within the row.
    attr: u32,
    op: CmpOp,
    lit: Value,
}

/// Reused typed column scratch of the gather stage: one entry per chunk
/// row (dense; only lanes set in the current type bitmap are live).
#[derive(Debug, Default)]
struct Gather {
    /// `f64` mirror of every present numeric value (`Int` lanes hold
    /// `i as f64` — exactly [`Value::as_f64`]'s mixed-comparison view).
    f64s: Vec<f64>,
    /// Exact `i64` lane of `Int` values.
    i64s: Vec<i64>,
    /// Bit set iff the row carries the attribute at all.
    present: Vec<u64>,
    /// Bit set iff the attribute is `Value::Int` (⊆ present).
    ints: Vec<u64>,
    /// Bit set iff the attribute is `Value::Str` (⊆ present).
    strs: Vec<u64>,
}

/// A compiled scan kernel for one routing scope. Built once at executor
/// construction (see [`crate::CompiledPartition::scan_kernel`]); all
/// scratch is reused, so steady-state scanning allocates nothing.
#[derive(Debug)]
pub struct ScanKernel {
    /// Per type id (dense): `(min_width, 1 + slot)`. `min_width` fuses
    /// routing and groupability into one compare — `u32::MAX` for
    /// unrouted types (unreachable by any real row: a row would need
    /// 2^32 - 1 values to match, more than the u32 offset column can
    /// index), else `max group-attr index + 1` (0 with no `GROUP BY`).
    /// The second element is `1 + slot` into
    /// [`ScanKernel::ty_match_all`] for types carrying clauses, 0
    /// otherwise — pass 1 scatters every clause type's membership bitmap
    /// in its single sweep over the type column.
    ty_table: Box<[(u32, u32)]>,
    /// Merged predicate clauses, sorted by `(slots, attr)` so the gather
    /// is built once per distinct `(type set, attr)` run.
    clauses: Box<[Clause]>,
    /// Number of distinct clause-bearing types (slots).
    n_slots: usize,
    /// The selection bitmap under construction (64 rows per word).
    words: Vec<u64>,
    /// Concatenated per-slot type-membership bitmaps (`n_slots × n_words`),
    /// filled by pass 1.
    ty_match_all: Vec<u64>,
    /// The current clause's *live* mask: its type's membership ∧ the
    /// selection so far — rows another clause already failed are never
    /// gathered or compared again.
    ty_match: Vec<u64>,
    gather: Gather,
}

impl ScanKernel {
    /// Compile a kernel from a scope's routing bitmap, per-type `GROUP BY`
    /// attributes, and per-type predicate clauses — the exact tables the
    /// scalar interpreter walks.
    pub fn new(
        routed: Vec<bool>,
        group_attrs: &[Box<[AttrId]>],
        predicates: &[Vec<(AttrId, CmpOp, Value)>],
    ) -> Self {
        // raw per-type clauses of routed types (others can never matter)
        let mut raw: Vec<(u32, u32, CmpOp, Value)> = Vec::new();
        for (ti, is_routed) in routed.iter().enumerate() {
            if !is_routed {
                continue;
            }
            for (attr, op, lit) in predicates.get(ti).into_iter().flatten() {
                raw.push((ti as u32, attr.index() as u32, *op, lit.clone()));
            }
        }
        // one scatter slot per clause-bearing type, in type order
        let mut ty_slot = vec![0u32; routed.len()];
        let mut n_slots = 0usize;
        for &(ti, ..) in raw.iter() {
            let s = &mut ty_slot[ti as usize];
            if *s == 0 {
                n_slots += 1;
                *s = n_slots as u32;
            }
        }
        // merge identical (attr, op, lit) clauses across types: a shared
        // workload attaches the same comparison to many pattern types, and
        // one sweep over the union mask serves them all. (NaN float
        // literals never compare equal, so they simply stay unmerged.)
        let mut clauses: Vec<Clause> = Vec::new();
        let mut merged: Vec<Vec<u32>> = Vec::new();
        for (ti, attr, op, lit) in raw {
            let slot = ty_slot[ti as usize] - 1;
            if let Some(i) = clauses
                .iter()
                .position(|c| c.attr == attr && c.op == op && c.lit == lit)
            {
                if !merged[i].contains(&slot) {
                    merged[i].push(slot);
                }
            } else {
                clauses.push(Clause {
                    slots: Box::new([]),
                    attr,
                    op,
                    lit,
                });
                merged.push(vec![slot]);
            }
        }
        for (c, mut slots) in clauses.iter_mut().zip(merged) {
            slots.sort_unstable();
            c.slots = slots.into_boxed_slice();
        }
        clauses.sort_by(|a, b| (&a.slots, a.attr).cmp(&(&b.slots, b.attr)));
        let ty_table = routed
            .iter()
            .enumerate()
            .map(|(ti, &is_routed)| {
                let need = if is_routed {
                    group_attrs
                        .get(ti)
                        .map(|g| g.iter().map(|a| a.index() as u32 + 1).max().unwrap_or(0))
                        .unwrap_or(0)
                } else {
                    u32::MAX
                };
                (need, ty_slot[ti])
            })
            .collect();
        ScanKernel {
            ty_table,
            clauses: clauses.into_boxed_slice(),
            n_slots,
            words: Vec::new(),
            ty_match_all: Vec::new(),
            ty_match: Vec::new(),
            gather: Gather::default(),
        }
    }

    /// Evaluate the scope's stateless prefix over rows `lo..hi` of
    /// `batch`, returning the selection bitmap: bit `i - lo` of the
    /// result covers absolute row `i`. The returned slice borrows the
    /// kernel's reused scratch.
    pub fn scan(&mut self, batch: &EventBatch, lo: usize, hi: usize) -> &[u64] {
        let n = hi - lo;
        let n_words = n.div_ceil(64);
        self.words.clear();
        self.words.resize(n_words, 0);
        let tys = &batch.types()[lo..hi];
        // chunk-relative offsets view: row i's width is offs[i+1]-offs[i]
        let offs = &batch.offsets()[lo..hi + 1];

        // pass 1: routing ∧ groupability, fused over the ty and offset
        // columns (lanes beyond `n` stay 0 in the trailing word): one
        // table lookup yields the row's minimum width (u32::MAX for
        // unrouted types), so routing and the GROUP BY width check are a
        // single compare. The same sweep scatters each clause-bearing
        // type's membership bitmap into its `ty_match_all` slot, so pass 2
        // never re-reads the type column — clause-free scopes take the
        // slot-free loop below.
        let table = &self.ty_table;
        if self.n_slots == 0 {
            for (w, word) in self.words.iter_mut().enumerate() {
                let base = w * 64;
                let lanes = (n - base).min(64);
                let tys_w = &tys[base..base + lanes];
                let offs_w = &offs[base..base + lanes + 1];
                let mut bits = 0u64;
                for (lane, ty) in tys_w.iter().enumerate() {
                    let (need, _) = table.get(ty.index()).copied().unwrap_or((u32::MAX, 0));
                    let ok = offs_w[lane + 1] - offs_w[lane] >= need;
                    bits |= (ok as u64) << lane;
                }
                *word = bits;
            }
        } else {
            self.ty_match_all.clear();
            self.ty_match_all.resize(self.n_slots * n_words, 0);
            for (w, word) in self.words.iter_mut().enumerate() {
                let base = w * 64;
                let lanes = (n - base).min(64);
                let tys_w = &tys[base..base + lanes];
                let offs_w = &offs[base..base + lanes + 1];
                let mut bits = 0u64;
                for (lane, ty) in tys_w.iter().enumerate() {
                    let (need, slot) = table.get(ty.index()).copied().unwrap_or((u32::MAX, 0));
                    let ok = offs_w[lane + 1] - offs_w[lane] >= need;
                    bits |= (ok as u64) << lane;
                    if slot != 0 {
                        self.ty_match_all[(slot as usize - 1) * n_words + w] |= 1u64 << lane;
                    }
                }
                *word = bits;
            }
        }
        if self.clauses.is_empty() || self.words.iter().all(|&w| w == 0) {
            return &self.words;
        }

        // pass 2: predicate clauses, fused with AND/ANDNOT. Each clause's
        // working mask is the union of its types' membership bitmaps
        // (scattered by pass 1) ∧ the selection so far, so rows an earlier
        // clause already failed are neither gathered nor compared again.
        // Clauses are sorted by (slots, attr): the gather runs once per
        // distinct (type set, attr) run, and because the selection only
        // ever shrinks, a gather taken at the first clause of a run covers
        // every later clause's (smaller) mask.
        let mut cur: Option<(&[u32], u32)> = None;
        let values = batch.values();
        for clause in self.clauses.iter() {
            self.ty_match.clear();
            self.ty_match.resize(n_words, 0);
            for &s in clause.slots.iter() {
                let sb = &self.ty_match_all[s as usize * n_words..][..n_words];
                for (m, &t) in self.ty_match.iter_mut().zip(sb) {
                    *m |= t;
                }
            }
            let mut live = 0u64;
            for (m, &r) in self.ty_match.iter_mut().zip(self.words.iter()) {
                *m &= r;
                live |= *m;
            }
            if live == 0 {
                continue; // no live rows of these types: clause cannot matter
            }
            if cur != Some((&clause.slots, clause.attr)) {
                gather_column(
                    &mut self.gather,
                    &self.ty_match,
                    offs,
                    values,
                    clause.attr,
                    n,
                );
                cur = Some((&clause.slots, clause.attr));
            }
            eval_clause(
                &mut self.words,
                &self.ty_match,
                &self.gather,
                offs,
                values,
                clause,
                n,
            );
        }
        &self.words
    }

    /// [`ScanKernel::scan`] + extraction: append the surviving absolute
    /// row indexes to `sel` (ascending).
    pub fn select_into(&mut self, batch: &EventBatch, lo: usize, hi: usize, sel: &mut Vec<u32>) {
        self.scan(batch, lo, hi);
        extract_into(&self.words, lo, sel);
    }

    /// Rows selected by the most recent [`ScanKernel::scan`].
    pub fn selected(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// Gather attribute `attr` of every row in `ty_match` into the typed
/// column scratch. `offs` is the chunk-relative offsets view (`n + 1`
/// entries indexing the batch-wide `values` buffer).
fn gather_column(
    g: &mut Gather,
    ty_match: &[u64],
    offs: &[u32],
    values: &[Value],
    attr: u32,
    n: usize,
) {
    let n_words = ty_match.len();
    g.f64s.resize(n, 0.0);
    g.i64s.resize(n, 0);
    g.present.clear();
    g.present.resize(n_words, 0);
    g.ints.clear();
    g.ints.resize(n_words, 0);
    g.strs.clear();
    g.strs.resize(n_words, 0);
    for (w, &m) in ty_match.iter().enumerate() {
        let mut bits = m;
        let (mut present, mut ints, mut strs) = (0u64, 0u64, 0u64);
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let i = w * 64 + lane;
            if offs[i + 1] - offs[i] > attr {
                present |= 1 << lane;
                match &values[(offs[i] + attr) as usize] {
                    Value::Int(x) => {
                        ints |= 1 << lane;
                        g.i64s[i] = *x;
                        // the f64 mirror is exactly `Value::as_f64`'s view
                        // of the mixed numeric comparison
                        g.f64s[i] = *x as f64;
                    }
                    Value::Float(f) => g.f64s[i] = *f,
                    Value::Str(_) => strs |= 1 << lane,
                }
            }
        }
        g.present[w] = present;
        g.ints[w] = ints;
        g.strs[w] = strs;
    }
}

/// 64-lane branch-free comparison of an `f64` column against a literal.
/// Native IEEE-754 comparisons reproduce `partial_cmp` + `CmpOp::eval`
/// exactly: any comparison involving NaN orders as `None`, which fails
/// every operator except `!=` — and native `!=` is true for NaN operands.
#[inline]
fn cmp_f64_word(vals: &[f64], lit: f64, op: CmpOp) -> u64 {
    macro_rules! pack {
        ($test:expr) => {{
            let mut bits = 0u64;
            for (lane, &v) in vals.iter().enumerate() {
                bits |= (($test(v)) as u64) << lane;
            }
            bits
        }};
    }
    match op {
        CmpOp::Eq => pack!(|v: f64| v == lit),
        CmpOp::Ne => pack!(|v: f64| v != lit),
        CmpOp::Lt => pack!(|v: f64| v < lit),
        CmpOp::Le => pack!(|v: f64| v <= lit),
        CmpOp::Gt => pack!(|v: f64| v > lit),
        CmpOp::Ge => pack!(|v: f64| v >= lit),
    }
}

/// 64-lane comparison of the exact `i64` column against an integer
/// literal (`Int` vs `Int` must not round-trip through `f64`: beyond
/// 2^53 the conversion conflates distinct integers).
#[inline]
fn cmp_i64_word(vals: &[i64], lit: i64, op: CmpOp) -> u64 {
    macro_rules! pack {
        ($test:expr) => {{
            let mut bits = 0u64;
            for (lane, &v) in vals.iter().enumerate() {
                bits |= (($test(v)) as u64) << lane;
            }
            bits
        }};
    }
    match op {
        CmpOp::Eq => pack!(|v: i64| v == lit),
        CmpOp::Ne => pack!(|v: i64| v != lit),
        CmpOp::Lt => pack!(|v: i64| v < lit),
        CmpOp::Le => pack!(|v: i64| v <= lit),
        CmpOp::Gt => pack!(|v: i64| v > lit),
        CmpOp::Ge => pack!(|v: i64| v >= lit),
    }
}

/// Fold one clause into the selection: `words[w] &= !M | P` — rows of
/// other types (`!M`) are unaffected, matching rows survive only where
/// the clause passes (`P`).
fn eval_clause(
    words: &mut [u64],
    ty_match: &[u64],
    g: &Gather,
    offs: &[u32],
    values: &[Value],
    clause: &Clause,
    n: usize,
) {
    let op = clause.op;
    // a present-but-incomparable value satisfies only `!=`
    let ne_all = if op == CmpOp::Ne { !0u64 } else { 0 };
    for (w, &m) in ty_match.iter().enumerate() {
        if m == 0 {
            continue;
        }
        let base = w * 64;
        let lanes = (n - base).min(64);
        let present = g.present[w];
        let strs = g.strs[w];
        let pass = match &clause.lit {
            Value::Int(k) => {
                // Int vs Int is exact; Float vs Int goes through f64
                // (`as_f64` on both sides); Str vs Int is incomparable
                let ints = g.ints[w];
                let floats = present & !ints & !strs;
                let ci = cmp_i64_word(&g.i64s[base..base + lanes], *k, op);
                let cf = cmp_f64_word(&g.f64s[base..base + lanes], *k as f64, op);
                (ints & ci) | (floats & cf) | (present & strs & ne_all)
            }
            Value::Float(x) => {
                // every numeric lane compares in f64 (Int lanes were
                // mirrored by the gather); Str vs Float is incomparable
                let nums = present & !strs;
                let cf = cmp_f64_word(&g.f64s[base..base + lanes], *x, op);
                (nums & cf) | (present & strs & ne_all)
            }
            Value::Str(_) => {
                // Str vs Str compares lexicographically — a scalar lane
                // over the (few) string bits through the shared helper;
                // numeric vs Str is incomparable
                let mut pass = present & !strs & ne_all;
                let mut bits = m & present & strs;
                while bits != 0 {
                    let lane = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let i = base + lane;
                    let v = &values[(offs[i] + clause.attr) as usize];
                    if clause_passes(op, Some(v), &clause.lit) {
                        pass |= 1 << lane;
                    }
                }
                pass
            }
        };
        words[w] &= !m | pass;
    }
}

/// Extract the set bits of a selection bitmap into absolute row indexes
/// (bit `i` of `words` is row `lo + i`), appended to `sel` ascending.
pub fn extract_into(words: &[u64], lo: usize, sel: &mut Vec<u32>) {
    for (w, &word) in words.iter().enumerate() {
        let base = lo + w * 64;
        let mut bits = word;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            sel.push((base + lane) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_types::{EventTypeId, Timestamp};

    /// The scalar oracle: exactly the interpreter the engines run.
    fn scalar_select(
        routed: &[bool],
        group_attrs: &[Box<[AttrId]>],
        predicates: &[Vec<(AttrId, CmpOp, Value)>],
        batch: &EventBatch,
        lo: usize,
        hi: usize,
    ) -> Vec<u32> {
        let mut sel = Vec::new();
        for row in lo..hi {
            let ty = batch.ty(row);
            if !routed.get(ty.index()).copied().unwrap_or(false) {
                continue;
            }
            let attrs = batch.attrs(row);
            let preds_ok = predicates.get(ty.index()).is_none_or(|preds| {
                preds
                    .iter()
                    .all(|(a, op, lit)| clause_passes(*op, attrs.get(a.index()), lit))
            });
            if !preds_ok {
                continue;
            }
            let grp_ok = group_attrs
                .get(ty.index())
                .is_none_or(|gattrs| gattrs.iter().all(|a| attrs.get(a.index()).is_some()));
            if !grp_ok {
                continue;
            }
            sel.push(row as u32);
        }
        sel
    }

    fn assert_parity(
        routed: Vec<bool>,
        group_attrs: Vec<Box<[AttrId]>>,
        predicates: Vec<Vec<(AttrId, CmpOp, Value)>>,
        batch: &EventBatch,
    ) {
        let mut kernel = ScanKernel::new(routed.clone(), &group_attrs, &predicates);
        for (lo, hi) in [
            (0, batch.len()),
            (0, batch.len().min(1)),
            (batch.len() / 3, batch.len()),
            (batch.len() / 2, batch.len() / 2),
        ] {
            let want = scalar_select(&routed, &group_attrs, &predicates, batch, lo, hi);
            let mut got = Vec::new();
            kernel.select_into(batch, lo, hi, &mut got);
            assert_eq!(got, want, "rows {lo}..{hi}");
            assert_eq!(kernel.selected(), want.len() as u64);
        }
    }

    /// A batch mixing every hard case: NaN, ±inf, huge exact ints,
    /// strings, missing attributes, unrouted types, ragged widths.
    fn hard_batch(n: usize) -> EventBatch {
        let mut b = EventBatch::new();
        for i in 0..n {
            let ty = EventTypeId((i % 3) as u32);
            let t = Timestamp(i as u64);
            match i % 7 {
                0 => b.push_from(ty, t, [Value::Float(f64::NAN), Value::Int(i as i64)]),
                1 => b.push_from(ty, t, [Value::Int((1i64 << 53) + i as i64)]),
                2 => b.push_from(ty, t, []), // all attrs missing
                3 => b.push_from(ty, t, [Value::str("MainSt"), Value::Float(i as f64)]),
                4 => b.push_from(ty, t, [Value::Float(f64::INFINITY), Value::str("x")]),
                5 => b.push_from(ty, t, [Value::Int(-5), Value::Float(-0.0)]),
                _ => b.push_from(ty, t, [Value::Float(0.5 + i as f64)]),
            }
        }
        b
    }

    #[test]
    fn routing_and_group_width_only() {
        let b = hard_batch(130); // trailing partial word
        assert_parity(vec![true, false, true], vec![], vec![], &b);
        // GROUP BY attr 1 on type 0: width filter drops narrow rows
        assert_parity(
            vec![true, true, false],
            vec![Box::new([AttrId(1)]), Box::new([])],
            vec![],
            &b,
        );
    }

    #[test]
    fn numeric_clauses_match_scalar_semantics() {
        let b = hard_batch(200);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for lit in [
                Value::Int(0),
                Value::Int((1i64 << 53) + 1),
                Value::Float(f64::NAN),
                Value::Float(0.0),
                Value::Float(f64::INFINITY),
                Value::str("MainSt"),
                Value::str("zz"),
            ] {
                assert_parity(
                    vec![true, true, true],
                    vec![],
                    vec![
                        vec![(AttrId(0), op, lit.clone())],
                        vec![(AttrId(1), op, lit.clone())],
                        vec![],
                    ],
                    &b,
                );
            }
        }
    }

    #[test]
    fn int_comparisons_are_exact_past_2_pow_53() {
        // 2^53 and 2^53 + 1 collapse in f64; the exact i64 lane must not
        let mut b = EventBatch::new();
        b.push_from(EventTypeId(0), Timestamp(0), [Value::Int(1i64 << 53)]);
        b.push_from(EventTypeId(0), Timestamp(1), [Value::Int((1i64 << 53) + 1)]);
        let preds = vec![vec![(AttrId(0), CmpOp::Eq, Value::Int((1i64 << 53) + 1))]];
        let mut kernel = ScanKernel::new(vec![true], &[], &preds);
        let mut sel = Vec::new();
        kernel.select_into(&b, 0, 2, &mut sel);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn multiple_clauses_fuse_with_and() {
        let b = hard_batch(150);
        assert_parity(
            vec![true, true, true],
            vec![Box::new([]), Box::new([AttrId(0)])],
            vec![
                vec![
                    (AttrId(0), CmpOp::Ge, Value::Int(-10)),
                    (AttrId(1), CmpOp::Ne, Value::str("x")),
                ],
                vec![(AttrId(0), CmpOp::Ne, Value::Float(f64::NAN))],
                vec![],
            ],
            &b,
        );
    }

    #[test]
    fn empty_batch_and_unrouted_scope() {
        let b = EventBatch::new();
        let mut kernel = ScanKernel::new(vec![false], &[], &[]);
        let mut sel = Vec::new();
        kernel.select_into(&b, 0, 0, &mut sel);
        assert!(sel.is_empty());
        assert_eq!(kernel.selected(), 0);
    }

    #[test]
    fn extract_into_is_ascending_and_absolute() {
        let words = [0b1001u64, 0b1];
        let mut sel = Vec::new();
        extract_into(&words, 10, &mut sel);
        assert_eq!(sel, vec![10, 13, 74]);
    }

    #[test]
    fn scan_mode_override_wins_over_env() {
        set_scan_mode(Some(ScanMode::Scalar));
        assert_eq!(scan_mode(), ScanMode::Scalar);
        set_scan_mode(Some(ScanMode::Vector));
        assert_eq!(scan_mode(), ScanMode::Vector);
        set_scan_mode(None);
        let _ = scan_mode(); // falls back to env/default without panicking
    }

    /// Side-by-side timing of the kernel vs the scalar interpreter on a
    /// taxi-shaped batch (5 types, Int + Float attrs, one Float clause per
    /// routed type). Not an assertion — run explicitly when tuning:
    /// `cargo test --release -p sharon-executor --lib scan -- --ignored --nocapture`
    #[test]
    #[ignore = "manual perf A/B harness, prints timings"]
    fn perf_ab_kernel_vs_scalar() {
        let n = 200_000usize;
        let mut b = EventBatch::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let ty = EventTypeId((next() % 5) as u32);
            let speed = 5.0 + (next() % 6500) as f64 / 100.0;
            b.push_from(
                ty,
                Timestamp(i as u64),
                [Value::Int((next() % 512) as i64), Value::Float(speed)],
            );
        }
        let routed = vec![true, true, true, false, false];
        let group_attrs: Vec<Box<[AttrId]>> = vec![
            Box::new([AttrId(0)]),
            Box::new([AttrId(0)]),
            Box::new([AttrId(0)]),
        ];
        {
            // stage baseline: routing + group width only (no clauses)
            let mut kernel = ScanKernel::new(routed.clone(), &group_attrs, &[]);
            let mut sel = Vec::new();
            let iters = 50;
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                sel.clear();
                kernel.select_into(&b, 0, n, &mut sel);
            }
            let ev = (n * iters) as f64;
            println!(
                "pass1+extract only: {:>6.1} Mev/s ({} rows)",
                ev / t0.elapsed().as_secs_f64() / 1e6,
                sel.len(),
            );
        }
        type Scenario = (&'static str, Vec<(AttrId, CmpOp, Value)>);
        let scenarios: [Scenario; 4] = [
            ("0%   ", vec![(AttrId(1), CmpOp::Lt, Value::Float(5.0))]),
            ("50%  ", vec![(AttrId(1), CmpOp::Lt, Value::Float(37.5))]),
            ("100% ", vec![(AttrId(1), CmpOp::Lt, Value::Float(70.5))]),
            // branch-hostile empty range: each clause passes ~50% of rows
            // (unpredictable per row), the conjunction passes none
            (
                "range",
                vec![
                    (AttrId(1), CmpOp::Ge, Value::Float(37.5)),
                    (AttrId(1), CmpOp::Lt, Value::Float(37.5)),
                ],
            ),
        ];
        for (label, clauses) in scenarios {
            let predicates: Vec<Vec<(AttrId, CmpOp, Value)>> =
                vec![clauses.clone(), clauses.clone(), clauses.clone()];
            let mut kernel = ScanKernel::new(routed.clone(), &group_attrs, &predicates);
            let mut sel = Vec::new();
            let iters = 50;
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                sel.clear();
                kernel.select_into(&b, 0, n, &mut sel);
            }
            let vector = t0.elapsed();
            let v_rows = sel.len();
            let t1 = std::time::Instant::now();
            for _ in 0..iters {
                sel = scalar_select(&routed, &group_attrs, &predicates, &b, 0, n);
            }
            let scalar = t1.elapsed();
            assert_eq!(sel.len(), v_rows);
            let ev = (n * iters) as f64;
            println!(
                "sel {label}: scalar {:>6.1} Mev/s | vector {:>6.1} Mev/s | {:.2}x ({} rows)",
                ev / scalar.as_secs_f64() / 1e6,
                ev / vector.as_secs_f64() / 1e6,
                scalar.as_secs_f64() / vector.as_secs_f64(),
                v_rows,
            );
        }
    }

    #[test]
    fn counters_accumulate_per_scope() {
        let c = ScanCounters::new(2);
        c.record(0, 100, 10);
        c.record(0, 50, 5);
        c.record(1, 7, 7);
        assert_eq!(c.get(0), (150, 15));
        assert_eq!(c.snapshot(), vec![(150, 15), (7, 7)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}
