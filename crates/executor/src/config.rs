//! One surface for every `SHARON_*` runtime environment knob.
//!
//! Historically each knob was parsed where it was consumed (core,
//! executor, streams), each with its own error style. [`RuntimeOptions`]
//! consolidates them: one `from_env()` call, one error type
//! ([`EnvError`]) naming the offending variable, one table documenting
//! the whole surface. The CLI and the test harness both go through it.
//!
//! | Variable            | Value                          | Effect |
//! |---------------------|--------------------------------|--------|
//! | `SHARON_SHARDS`     | shard count (≥ 1)              | run the sharded runtime with this many worker shards |
//! | `SHARON_PIPELINE`   | pipeline depth (`0` = in-line) | ingest→router job-ring depth ([`default_pipeline_depth`](crate::default_pipeline_depth)) |
//! | `SHARON_ROUTERS`    | router threads (≥ 1)           | routing-plane size ([`default_routers`](crate::default_routers)); `> 1` requires a pipelined ingest stage |
//! | `SHARON_SCAN`       | `scalar` \| `vector`           | stateless-scan implementation ([`ScanMode`]) |
//! | `SHARON_LATENESS`   | milliseconds                   | event-time mode with this allowed lateness |
//! | `SHARON_DISORDER`   | max displacement `K`           | test harness: scramble streams within `K` positions |
//! | `SHARON_CHECKPOINT` | `<dir>[:<interval-batches>]`   | periodic consistent checkpoints ([`CheckpointConfig`]) |
//! | `SHARON_FAULT`      | `drop@N` \| `panic@N:S` \| `abort@N` \| `reorder@N:K` | inject the given fault ([`FaultPlan`]) |
//!
//! Every knob is **fail-loud**: an unparsable value is an [`EnvError`],
//! never a silent fallback — a bench matrix typo must not record numbers
//! attributed to a configuration that never ran.

use crate::checkpoint::{parse_checkpoint_spec, CheckpointConfig, FaultPlan};
use crate::scan::ScanMode;
use crate::sharded::{ShardedOptions, DEFAULT_PIPELINE_DEPTH, DEFAULT_ROUTERS};
use std::fmt;

/// A `SHARON_*` environment variable held an unparsable value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The offending variable's name (e.g. `SHARON_SHARDS`).
    pub var: &'static str,
    /// What was wrong with its value.
    pub problem: String,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.var, self.problem)
    }
}

impl std::error::Error for EnvError {}

/// Every `SHARON_*` runtime knob, parsed in one place (see the
/// [module docs](self) for the full table).
///
/// `None` fields mean "knob unset — use the compiled-in default";
/// [`RuntimeOptions::default`] is the all-unset configuration.
#[derive(Debug, Clone, Default)]
pub struct RuntimeOptions {
    /// `SHARON_SHARDS`: worker shard count for the sharded runtime.
    pub shards: Option<usize>,
    /// `SHARON_PIPELINE`: ingest pipeline depth (`0` = in-line routing).
    pub pipeline_depth: Option<usize>,
    /// `SHARON_ROUTERS`: router threads in the routing plane (≥ 1; a
    /// plane of more than one router requires a pipelined ingest stage).
    pub routers: Option<usize>,
    /// `SHARON_SCAN`: stateless-scan implementation.
    pub scan: Option<ScanMode>,
    /// `SHARON_LATENESS`: event-time allowed lateness in milliseconds.
    pub lateness: Option<u64>,
    /// `SHARON_DISORDER`: maximum event displacement for the test
    /// harness's bounded-disorder scramble (`0` = in-order streams).
    pub disorder: u32,
    /// `SHARON_CHECKPOINT`: periodic-checkpoint store and interval.
    pub checkpoint: Option<CheckpointConfig>,
    /// `SHARON_FAULT`: fault to inject mid-stream.
    pub fault: Option<FaultPlan>,
}

/// Read one optional env var through `parse`, wrapping failures in an
/// [`EnvError`] naming the variable.
fn knob<T>(
    var: &'static str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Result<Option<T>, EnvError> {
    match std::env::var(var) {
        Ok(raw) => parse(&raw)
            .map(Some)
            .map_err(|problem| EnvError { var, problem }),
        Err(_) => Ok(None),
    }
}

impl RuntimeOptions {
    /// Parse the complete `SHARON_*` knob surface from the environment.
    ///
    /// Unset variables leave their field at the default; a set-but-
    /// unparsable variable is an [`EnvError`] naming it, and so is an
    /// **inconsistent combination** (see
    /// [`RuntimeOptions::validated`]) — a bad matrix entry must fail
    /// the run, not silently run a clamped configuration.
    pub fn from_env() -> Result<Self, EnvError> {
        RuntimeOptions {
            shards: knob("SHARON_SHARDS", |s| {
                s.parse()
                    .map_err(|e| format!("{s:?} is not a shard count: {e}"))
            })?,
            pipeline_depth: knob("SHARON_PIPELINE", |s| {
                s.parse().map_err(|e| {
                    format!("{s:?} is not a pipeline depth (0 = in-line routing): {e}")
                })
            })?,
            routers: knob("SHARON_ROUTERS", parse_routers)?,
            scan: knob("SHARON_SCAN", |s| s.parse())?,
            lateness: knob("SHARON_LATENESS", |s| {
                s.parse()
                    .map_err(|e| format!("{s:?} is not a lateness in milliseconds: {e}"))
            })?,
            disorder: knob("SHARON_DISORDER", |s| {
                s.parse()
                    .map_err(|e| format!("{s:?} is not a displacement bound: {e}"))
            })?
            .unwrap_or(0),
            checkpoint: knob("SHARON_CHECKPOINT", parse_checkpoint_spec)?,
            fault: knob("SHARON_FAULT", |s| s.parse())?,
        }
        .validated()
    }

    /// Reject inconsistent knob combinations loudly instead of silently
    /// clamping: a multi-router plane (`SHARON_ROUTERS > 1`) with
    /// in-line routing (`SHARON_PIPELINE=0`) has no router threads to
    /// spread scopes over — running one router anyway would record
    /// numbers attributed to a plane that never existed. `routers = 1`
    /// with any depth (including `0`) stays valid: one router *is*
    /// today's pipeline.
    pub fn validated(self) -> Result<Self, EnvError> {
        if let Some(routers) = self.routers {
            if routers > 1 && self.pipeline_depth == Some(0) {
                return Err(EnvError {
                    var: "SHARON_ROUTERS",
                    problem: format!(
                        "{routers} router threads need a pipelined ingest stage, \
                         but SHARON_PIPELINE=0 selects in-line routing \
                         (set SHARON_PIPELINE >= 1 or SHARON_ROUTERS=1)"
                    ),
                });
            }
        }
        Ok(self)
    }

    /// Lower these options onto a [`ShardedOptions`] for the sharded
    /// runtime (batch size, split tuning, and spill stay at their
    /// defaults — they have no env knobs).
    pub fn sharded_options(&self) -> ShardedOptions {
        ShardedOptions {
            pipeline_depth: self.pipeline_depth.unwrap_or(DEFAULT_PIPELINE_DEPTH),
            routers: self.routers.unwrap_or(DEFAULT_ROUTERS),
            checkpoint: self.checkpoint.clone(),
            fault: self.fault,
            lateness: self.lateness,
            ..ShardedOptions::default()
        }
    }
}

/// Parse a `SHARON_ROUTERS` value: a router-thread count of at least 1
/// (`0` is rejected — a routing plane with no routers routes nothing,
/// and clamping it up would silently run a configuration the matrix
/// never asked for).
fn parse_routers(s: &str) -> Result<usize, String> {
    let n: usize = s
        .parse()
        .map_err(|e| format!("{s:?} is not a router-thread count: {e}"))?;
    if n == 0 {
        return Err(format!(
            "{s:?}: a routing plane needs at least one router (use 1 for the classic pipeline)"
        ));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    // No env mutation here — tests run multi-threaded in one process, so
    // these exercise the parsers through the same closures `from_env`
    // uses, via the `knob` helper with a forced value.
    fn parse<T>(
        var: &'static str,
        raw: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<T, EnvError> {
        parse(raw).map_err(|problem| EnvError { var, problem })
    }

    #[test]
    fn scan_mode_round_trips() {
        assert_eq!(
            parse("SHARON_SCAN", "scalar", str::parse::<ScanMode>).unwrap(),
            ScanMode::Scalar
        );
        assert_eq!(
            parse("SHARON_SCAN", "vector", str::parse::<ScanMode>).unwrap(),
            ScanMode::Vector
        );
        let err = parse::<ScanMode>("SHARON_SCAN", "simd", |s| s.parse()).unwrap_err();
        assert_eq!(err.var, "SHARON_SCAN");
        assert!(err.to_string().contains("simd"), "{err}");
    }

    #[test]
    fn checkpoint_and_fault_specs_parse() {
        let ck = parse("SHARON_CHECKPOINT", "/tmp/ck:8", parse_checkpoint_spec).unwrap();
        assert_eq!(ck.interval_batches, 8);
        let fault = parse::<FaultPlan>("SHARON_FAULT", "drop@3", |s| s.parse()).unwrap();
        assert_eq!(fault, FaultPlan::Drop { batch: 3 });
        assert!(parse::<FaultPlan>("SHARON_FAULT", "sigsegv", |s| s.parse()).is_err());
    }

    #[test]
    fn defaults_are_all_unset() {
        let opts = RuntimeOptions::default();
        assert!(opts.shards.is_none());
        assert!(opts.routers.is_none());
        assert!(opts.scan.is_none());
        assert_eq!(opts.disorder, 0);
        let sharded = opts.sharded_options();
        assert!(sharded.checkpoint.is_none());
        assert!(sharded.fault.is_none());
        assert!(sharded.lateness.is_none());
        assert_eq!(sharded.routers, DEFAULT_ROUTERS);
    }

    #[test]
    fn routers_knob_parses_and_rejects_zero() {
        assert_eq!(parse("SHARON_ROUTERS", "1", parse_routers).unwrap(), 1);
        assert_eq!(parse("SHARON_ROUTERS", "4", parse_routers).unwrap(), 4);
        let err = parse("SHARON_ROUTERS", "0", parse_routers).unwrap_err();
        assert_eq!(err.var, "SHARON_ROUTERS");
        assert!(err.to_string().contains("at least one router"), "{err}");
        assert!(parse("SHARON_ROUTERS", "many", parse_routers).is_err());
    }

    #[test]
    fn multi_router_inline_combo_is_rejected_loudly() {
        // routers > 1 with in-line routing: inconsistent, fail the run
        let opts = RuntimeOptions {
            routers: Some(2),
            pipeline_depth: Some(0),
            ..RuntimeOptions::default()
        };
        let err = opts.validated().unwrap_err();
        assert_eq!(err.var, "SHARON_ROUTERS");
        assert!(err.to_string().contains("SHARON_PIPELINE=0"), "{err}");

        // one router *is* the classic pipeline: valid at any depth,
        // including in-line (the CI matrix crosses ROUTERS=1 × PIPELINE=0)
        let opts = RuntimeOptions {
            routers: Some(1),
            pipeline_depth: Some(0),
            ..RuntimeOptions::default()
        };
        assert_eq!(opts.validated().unwrap().routers, Some(1));

        // routers > 1 with a pipelined stage (explicit or defaulted) is valid
        let opts = RuntimeOptions {
            routers: Some(4),
            pipeline_depth: Some(2),
            ..RuntimeOptions::default()
        };
        assert_eq!(opts.validated().unwrap().sharded_options().routers, 4);
        let opts = RuntimeOptions {
            routers: Some(4),
            pipeline_depth: None,
            ..RuntimeOptions::default()
        };
        assert!(opts.validated().is_ok());
    }
}
