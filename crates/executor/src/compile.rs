//! Compilation of a workload + sharing plan into executable form.
//!
//! The runtime executor "computes the aggregation results for each shared
//! pattern and then combines these shared aggregations to obtain the final
//! results for each query" (Section 2.2). Compilation turns the declarative
//! artifacts into flat dispatch tables:
//!
//! * queries are grouped into **partitions** by their sharing signature
//!   (window, predicates, grouping, aggregate) — assumption (2) of the
//!   paper, §7.2 extension: each partition runs its own engine;
//! * each query's pattern is decomposed into its private/shared **segment
//!   chain** ([`SharingPlan::decompose`]);
//! * each segment of length ≥ 2 gets a [`crate::runner::SegmentRunner`]
//!   slot — one per plan candidate (shared once across its queries), one
//!   per private segment;
//! * a per-event-type **route table** lists every runner position and every
//!   stateless length-1 segment the type participates in.

use crate::agg::OutputKind;
use crate::router::SplitSpec;
use crate::scan::ScanKernel;
use sharon_query::{
    clause_passes, AggFunc, CmpOp, Query, QueryId, SegmentKind, SharingPlan, Workload,
};
use sharon_types::{AttrId, Catalog, EventTypeId, FxHashMap, GroupKey, Value, WindowSpec};
use std::fmt;

/// Errors raised while compiling a workload and plan.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The plan is invalid for the workload (Definition 7).
    PlanInvalid(String),
    /// A plan candidate groups queries with different predicates, grouping,
    /// windows, or aggregates — sharing requires identical clauses
    /// (assumption (2)).
    CandidateSpansPartitions {
        /// Display form of the offending pattern.
        pattern: String,
    },
    /// A `GROUP BY` attribute is missing from the schema of a pattern type.
    GroupAttrMissing {
        /// The event type lacking the attribute.
        ty: String,
        /// The attribute name.
        attr: String,
    },
    /// The aggregate's target attribute is missing from the target type's
    /// schema.
    AggAttrMissing {
        /// The event type lacking the attribute.
        ty: String,
        /// The attribute name.
        attr: String,
    },
    /// A `WHERE` predicate references an attribute missing from the
    /// constrained type's schema.
    PredicateAttrMissing {
        /// The event type lacking the attribute.
        ty: String,
        /// The attribute name.
        attr: String,
    },
    /// The workload is empty.
    EmptyWorkload,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PlanInvalid(e) => write!(f, "invalid sharing plan: {e}"),
            CompileError::CandidateSpansPartitions { pattern } => write!(
                f,
                "candidate {pattern} groups queries with incompatible predicates/grouping/window/aggregate"
            ),
            CompileError::GroupAttrMissing { ty, attr } => {
                write!(f, "GROUP BY attribute `{attr}` missing from type {ty}")
            }
            CompileError::AggAttrMissing { ty, attr } => {
                write!(f, "aggregate attribute `{attr}` missing from type {ty}")
            }
            CompileError::PredicateAttrMissing { ty, attr } => {
                write!(f, "predicate attribute `{attr}` missing from type {ty}")
            }
            CompileError::EmptyWorkload => write!(f, "workload has no queries"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled per-query description.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The original workload id.
    pub id: QueryId,
    /// Number of chain stages (segments).
    pub n_stages: usize,
    /// How the final cell maps to the query's output.
    pub output: OutputKind,
}

/// A runner slot: one online aggregation state per pattern segment of
/// length ≥ 2.
#[derive(Debug, Clone)]
pub struct RunnerSpec {
    /// Segment length.
    pub len: usize,
    /// `(query index, stage)` pairs that must capture a chain snapshot
    /// when this runner records a new START event (stages > 0 only).
    pub start_subs: Vec<(usize, usize)>,
    /// `(query index, stage)` pairs folding this runner's completions.
    pub completion_subs: Vec<(usize, usize)>,
    /// True if this runner realizes a shared plan candidate (for
    /// statistics).
    pub shared: bool,
}

/// All roles an event type plays within one partition.
#[derive(Debug, Clone, Default)]
pub struct Routes {
    /// `(runner, 0-based position)` — sorted by runner, then *descending*
    /// position so an event never extends state it just created (relevant
    /// for repeated types, §7.3).
    pub runner_roles: Vec<(usize, usize)>,
    /// `(query index, stage)` for stateless length-1 segments.
    pub unit_roles: Vec<(usize, usize)>,
}

/// One compiled engine partition (queries with identical sharing
/// signatures).
#[derive(Debug, Clone)]
pub struct CompiledPartition {
    /// The partition's window clause.
    pub window: WindowSpec,
    /// Compiled queries (partition-local indexes).
    pub queries: Vec<CompiledQuery>,
    /// Runner slots.
    pub runners: Vec<RunnerSpec>,
    /// Per event type id (dense): routes, `None` for unused types.
    pub routes: Vec<Option<Box<Routes>>>,
    /// Per event type id: resolved `GROUP BY` attribute ids.
    pub group_attrs: Vec<Box<[AttrId]>>,
    /// Per event type id: compiled predicates `(attr, op, literal)`.
    pub predicates: Vec<Vec<(AttrId, CmpOp, Value)>>,
    /// Aggregate contribution source: target type and attribute
    /// (`None` for pure counting).
    pub contrib_target: Option<(EventTypeId, Option<AttrId>)>,
    /// True if every query in the partition is `COUNT`-like (enables the
    /// [`crate::agg::CountCell`] kernel).
    pub count_only: bool,
}

impl CompiledPartition {
    /// True if `ty` routes into this partition at all (the first check of
    /// the stateless event prefix).
    #[inline]
    pub fn routed(&self, ty: EventTypeId) -> bool {
        matches!(self.routes.get(ty.index()), Some(Some(_)))
    }

    /// True if `attrs` pass this partition's predicates on `ty` (a missing
    /// attribute fails). Must only be called for routed types.
    ///
    /// This is the single definition of predicate semantics shared by the
    /// per-event path, the columnar pre-pass, and the sharded batch
    /// router — which must agree exactly, or routed rows would diverge
    /// from what the engines would have dropped.
    #[inline]
    pub fn predicates_pass(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        self.predicates[ty.index()]
            .iter()
            .all(|(attr, op, lit)| clause_passes(*op, attrs.get(attr.index()), lit))
    }

    /// Compile this partition's stateless prefix — routing, predicates,
    /// groupability — into a vectorized [`ScanKernel`] evaluating whole
    /// batches into u64 selection bitmaps. Selects exactly the rows the
    /// scalar [`CompiledPartition::routed`] / `predicates_pass` /
    /// `groupable` chain would.
    pub fn scan_kernel(&self) -> ScanKernel {
        let routed = self.routes.iter().map(Option::is_some).collect();
        ScanKernel::new(routed, &self.group_attrs, &self.predicates)
    }

    /// True if every `GROUP BY` attribute of `ty` is present in `attrs`
    /// (events missing one are ungroupable and dropped). Must only be
    /// called for routed types. Shared by the same three paths as
    /// [`CompiledPartition::predicates_pass`].
    #[inline]
    pub fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        self.group_attrs[ty.index()]
            .iter()
            .all(|a| attrs.get(a.index()).is_some())
    }

    /// Build the group key of a routed row into `key` (reusing the `vals`
    /// scratch buffer, so no allocation in steady state), returning `false`
    /// if a grouping attribute is missing (ungroupable event). With no
    /// `GROUP BY`, writes [`GroupKey::Global`]. Must only be called for
    /// routed types.
    ///
    /// The single definition of key construction shared by the per-event
    /// path, the columnar pre-pass, and the sharded batch router — shard
    /// assignment hashes exactly the key an engine would build, so the
    /// three paths cannot drift apart.
    #[inline]
    pub fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool {
        let gattrs = &self.group_attrs[ty.index()];
        if gattrs.is_empty() {
            *key = GroupKey::Global;
            return true;
        }
        vals.clear();
        for a in gattrs.iter() {
            match attrs.get(a.index()) {
                Some(v) => vals.push(v.clone()),
                None => return false,
            }
        }
        key.assign_from_slice(vals);
        true
    }

    /// Classify this partition's routed types for hot-group splitting (see
    /// [`crate::router::SplitSpec`]).
    ///
    /// A type is **final-only** when every role it plays writes *only* the
    /// final per-window accumulators and never mutates shared evaluation
    /// state: END of a segment whose completions all fold into a last
    /// stage, or a stateless unit segment that is a query's last stage.
    /// Rows of such types can be round-robined across the shards of a
    /// split group, because their processing reads runner/chain state but
    /// writes nothing later rows depend on. Every other routed type
    /// (STARTs, mids, intermediate-stage ENDs, chain-writing units) must be
    /// *broadcast* to all shards of a split group so the replicated state
    /// trajectories stay identical.
    pub fn split_spec(&self) -> SplitSpec {
        let mut final_only = vec![false; self.routes.len()];
        for (ti, routes) in self.routes.iter().enumerate() {
            let Some(r) = routes else { continue };
            let runners_final = r.runner_roles.iter().all(|&(ri, pos)| {
                pos + 1 == self.runners[ri].len
                    && self.runners[ri]
                        .completion_subs
                        .iter()
                        .all(|&(q, stage)| stage + 1 == self.queries[q].n_stages)
            });
            let units_final = r
                .unit_roles
                .iter()
                .all(|&(q, stage)| stage + 1 == self.queries[q].n_stages);
            final_only[ti] = runners_final && units_final;
        }
        SplitSpec {
            final_only,
            warmup_ms: self.window.within.millis(),
        }
    }
}

fn output_kind(q: &Query) -> OutputKind {
    match &q.agg {
        AggFunc::CountStar => OutputKind::Count,
        AggFunc::Count(t) => OutputKind::CountTimes(q.pattern.positions_of(*t).len() as u32),
        AggFunc::Sum(..) => OutputKind::Sum,
        AggFunc::Min(..) => OutputKind::Min,
        AggFunc::Max(..) => OutputKind::Max,
        AggFunc::Avg(t, _) => OutputKind::Avg(q.pattern.positions_of(*t).len() as u32),
    }
}

/// Split `workload` into sharing-signature partitions and compile each.
///
/// Returns the compiled partitions together with, for each, the set of
/// workload query ids it serves.
pub fn compile(
    catalog: &Catalog,
    workload: &Workload,
    plan: &SharingPlan,
) -> Result<Vec<CompiledPartition>, CompileError> {
    if workload.is_empty() {
        return Err(CompileError::EmptyWorkload);
    }
    plan.validate(workload)
        .map_err(|e| CompileError::PlanInvalid(e.to_string()))?;

    // partition queries by sharing signature, preserving id order
    let mut partitions: Vec<(Vec<&Query>, sharon_query::query::SharingSignature)> = Vec::new();
    for q in workload.queries() {
        let sig = q.sharing_signature();
        match partitions.iter_mut().find(|(_, s)| *s == sig) {
            Some((qs, _)) => qs.push(q),
            None => partitions.push((vec![q], sig)),
        }
    }

    // every candidate must live inside one partition
    for cand in &plan.candidates {
        let holds = |qs: &[&Query]| cand.queries.iter().all(|id| qs.iter().any(|q| q.id == *id));
        if !partitions.iter().any(|(qs, _)| holds(qs)) {
            return Err(CompileError::CandidateSpansPartitions {
                pattern: cand.pattern.display(catalog).to_string(),
            });
        }
    }

    partitions
        .into_iter()
        .map(|(queries, _)| compile_partition(catalog, &queries, plan))
        .collect()
}

fn compile_partition(
    catalog: &Catalog,
    queries: &[&Query],
    plan: &SharingPlan,
) -> Result<CompiledPartition, CompileError> {
    let window = queries[0].window;
    let count_only = queries.iter().all(|q| q.agg.is_count_like());

    // resolve aggregate target (identical across the partition by signature,
    // except COUNT(*) vs COUNT(E) which both use the count kernel)
    let mut contrib_target = None;
    for q in queries {
        if let (Some(t), attr) = (q.agg.target_type(), q.agg.target_attr()) {
            let attr_id = match attr {
                Some(name) => Some(catalog.schema(t).attr(name).ok_or_else(|| {
                    CompileError::AggAttrMissing {
                        ty: catalog.name(t).to_string(),
                        attr: name.to_string(),
                    }
                })?),
                None => None,
            };
            contrib_target = Some((t, attr_id));
        }
    }

    let max_ty = queries
        .iter()
        .flat_map(|q| q.pattern.types())
        .map(|t| t.index())
        .max()
        .unwrap_or(0);

    // resolve GROUP BY attributes for every pattern type
    let group_by = &queries[0].group_by;
    let mut group_attrs: Vec<Box<[AttrId]>> = vec![Box::new([]); max_ty + 1];
    let mut predicates: Vec<Vec<(AttrId, CmpOp, Value)>> = vec![Vec::new(); max_ty + 1];
    for q in queries {
        for &t in q.pattern.types() {
            if group_attrs[t.index()].len() != group_by.len() {
                let schema = catalog.schema(t);
                let ids: Vec<AttrId> = group_by
                    .iter()
                    .map(|name| {
                        schema
                            .attr(name)
                            .ok_or_else(|| CompileError::GroupAttrMissing {
                                ty: catalog.name(t).to_string(),
                                attr: name.clone(),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                group_attrs[t.index()] = ids.into_boxed_slice();
            }
        }
    }
    for p in &queries[0].predicates {
        if p.ty.index() <= max_ty {
            let attr = catalog.schema(p.ty).attr(&p.attr).ok_or_else(|| {
                CompileError::PredicateAttrMissing {
                    ty: catalog.name(p.ty).to_string(),
                    attr: p.attr.clone(),
                }
            })?;
            predicates[p.ty.index()].push((attr, p.op, p.value.clone()));
        }
    }

    // build runners and routes from segment decompositions
    let mut runners: Vec<RunnerSpec> = Vec::new();
    let mut shared_runner: FxHashMap<usize, usize> = FxHashMap::default(); // candidate idx -> runner idx
    let mut routes: Vec<Option<Box<Routes>>> = (0..=max_ty).map(|_| None).collect();
    let mut compiled_queries = Vec::with_capacity(queries.len());

    for (qi, q) in queries.iter().enumerate() {
        let segments = plan
            .decompose(q)
            .map_err(|e| CompileError::PlanInvalid(e.to_string()))?;
        let n_stages = segments.len();
        for (stage, seg) in segments.iter().enumerate() {
            if seg.pattern.len() == 1 {
                let t = seg.pattern.start_type();
                routes[t.index()]
                    .get_or_insert_with(Default::default)
                    .unit_roles
                    .push((qi, stage));
                continue;
            }
            let runner_idx = match seg.kind {
                SegmentKind::Shared(ci) => match shared_runner.get(&ci) {
                    Some(&r) => {
                        runners[r].completion_subs.push((qi, stage));
                        if stage > 0 {
                            runners[r].start_subs.push((qi, stage));
                        }
                        continue; // routes already registered for this runner
                    }
                    None => {
                        let r = runners.len();
                        shared_runner.insert(ci, r);
                        runners.push(RunnerSpec {
                            len: seg.pattern.len(),
                            start_subs: if stage > 0 {
                                vec![(qi, stage)]
                            } else {
                                Vec::new()
                            },
                            completion_subs: vec![(qi, stage)],
                            shared: true,
                        });
                        r
                    }
                },
                SegmentKind::Private => {
                    let r = runners.len();
                    runners.push(RunnerSpec {
                        len: seg.pattern.len(),
                        start_subs: if stage > 0 {
                            vec![(qi, stage)]
                        } else {
                            Vec::new()
                        },
                        completion_subs: vec![(qi, stage)],
                        shared: false,
                    });
                    r
                }
            };
            for (pos, &t) in seg.pattern.types().iter().enumerate() {
                routes[t.index()]
                    .get_or_insert_with(Default::default)
                    .runner_roles
                    .push((runner_idx, pos));
            }
        }
        compiled_queries.push(CompiledQuery {
            id: q.id,
            n_stages,
            output: output_kind(q),
        });
    }

    // order roles: per runner, descending position
    for r in routes.iter_mut().flatten() {
        r.runner_roles
            .sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    }

    Ok(CompiledPartition {
        window,
        queries: compiled_queries,
        runners,
        routes,
        group_attrs,
        predicates,
        contrib_target,
        count_only,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharon_query::{parse_workload, Pattern, PlanCandidate};

    fn setup() -> (Catalog, Workload) {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(*) PATTERN SEQ(A, B, D) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(*) PATTERN SEQ(E) WITHIN 10 s SLIDE 1 s",
            ],
        )
        .unwrap();
        (c, w)
    }

    #[test]
    fn non_shared_compiles_one_runner_per_query() {
        let (c, w) = setup();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        assert_eq!(parts.len(), 1);
        let p = &parts[0];
        assert_eq!(p.queries.len(), 3);
        // q1, q2 each get a private 3-type runner; q3 is a unit segment
        assert_eq!(p.runners.len(), 2);
        assert!(p.runners.iter().all(|r| !r.shared));
        let a = c.lookup("A").unwrap();
        let roles = p.routes[a.index()].as_ref().unwrap();
        assert_eq!(roles.runner_roles.len(), 2, "A starts both runners");
        let e = c.lookup("E").unwrap();
        let unit = p.routes[e.index()].as_ref().unwrap();
        assert_eq!(unit.unit_roles, vec![(2, 0)]);
        assert!(p.count_only);
    }

    #[test]
    fn shared_candidate_creates_one_runner_with_two_subscribers() {
        let (mut c, w) = setup();
        let ab = Pattern::from_names(&mut c, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        let parts = compile(&c, &w, &plan).unwrap();
        let p = &parts[0];
        // one shared (A,B) runner; suffixes (C) and (D) are unit segments
        assert_eq!(p.runners.len(), 1);
        assert!(p.runners[0].shared);
        assert_eq!(p.runners[0].completion_subs, vec![(0, 0), (1, 0)]);
        assert!(
            p.runners[0].start_subs.is_empty(),
            "stage 0 needs no snapshots"
        );
        let cty = c.lookup("C").unwrap();
        assert_eq!(
            p.routes[cty.index()].as_ref().unwrap().unit_roles,
            vec![(0, 1)]
        );
    }

    #[test]
    fn shared_mid_candidate_registers_start_subscriptions() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(X, A, B) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(*) PATTERN SEQ(Y, A, B) WITHIN 10 s SLIDE 1 s",
            ],
        )
        .unwrap();
        let ab = Pattern::from_names(&mut c, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        let p = &compile(&c, &w, &plan).unwrap()[0];
        assert_eq!(p.runners.len(), 1);
        // both queries use the shared runner at stage 1 => both need snaps
        let mut subs = p.runners[0].start_subs.clone();
        subs.sort_unstable();
        assert_eq!(subs, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn different_windows_split_partitions() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 20 s SLIDE 1 s",
            ],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn candidate_spanning_partitions_rejected() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(*) PATTERN SEQ(A, B, C) WITHIN 20 s SLIDE 1 s",
            ],
        )
        .unwrap();
        let ab = Pattern::from_names(&mut c, ["A", "B"]);
        let plan = SharingPlan::new([PlanCandidate::new(ab, [QueryId(0), QueryId(1)])]);
        let err = compile(&c, &w, &plan).unwrap_err();
        assert!(
            matches!(err, CompileError::CandidateSpansPartitions { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_group_attr_rejected() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY vehicle WITHIN 10 s SLIDE 1 s"],
        )
        .unwrap();
        // types A, B have empty schemas -> `vehicle` cannot resolve
        let err = compile(&c, &w, &SharingPlan::non_shared()).unwrap_err();
        assert!(
            matches!(err, CompileError::GroupAttrMissing { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_agg_attr_rejected() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            ["RETURN SUM(A.price) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 1 s"],
        )
        .unwrap();
        let err = compile(&c, &w, &SharingPlan::non_shared()).unwrap_err();
        assert!(matches!(err, CompileError::AggAttrMissing { .. }), "{err}");
    }

    #[test]
    fn empty_workload_rejected() {
        let c = Catalog::new();
        let err = compile(&c, &Workload::new(), &SharingPlan::non_shared()).unwrap_err();
        assert_eq!(err, CompileError::EmptyWorkload);
    }

    #[test]
    fn output_kinds() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(B) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(Z) PATTERN SEQ(A, B) WITHIN 10 s SLIDE 1 s",
            ],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        // COUNT(B): k=1; COUNT(Z): Z not in pattern, k=0
        let kinds: Vec<OutputKind> = parts
            .iter()
            .flat_map(|p| p.queries.iter().map(|q| q.output))
            .collect();
        assert!(kinds.contains(&OutputKind::CountTimes(1)));
        assert!(kinds.contains(&OutputKind::CountTimes(0)));
    }

    #[test]
    fn repeated_type_positions_sorted_descending() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B, A, C) WITHIN 10 s SLIDE 1 s",
                "RETURN COUNT(*) PATTERN SEQ(A, B, A, D) WITHIN 10 s SLIDE 1 s",
            ],
        )
        .unwrap();
        let p = &compile(&c, &w, &SharingPlan::non_shared()).unwrap()[0];
        let a = c.lookup("A").unwrap();
        let roles = &p.routes[a.index()].as_ref().unwrap().runner_roles;
        // per runner: position 2 before position 0
        assert_eq!(roles, &vec![(0, 2), (0, 0), (1, 2), (1, 0)]);
    }
}
