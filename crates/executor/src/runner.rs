//! Segment runners: online aggregation of one pattern segment.
//!
//! This is the kernel of the Non-Shared method (Section 3.2, borrowed from
//! A-Seq): "it maintains a count for each prefix of a pattern. The count of
//! a prefix of length `j` is incrementally computed based on its previous
//! value and the new value of the count of the prefix of length `j − 1`",
//! and "we maintain the aggregates per each matched START event" so that
//! expired START events can be discarded without recomputation
//! (Figure 6(b)).
//!
//! A [`SegmentRunner`] aggregates one contiguous pattern segment — a whole
//! query pattern in the Non-Shared method, or a prefix/shared/suffix piece
//! in the Shared method. A runner for a *shared* candidate is maintained
//! once and consulted by every query in `Q_p` (Section 3.3, step 1).
//!
//! Strict sequence semantics: an event never extends state written by
//! another event with the same timestamp. Per-cell pending buffers (the
//! same scheme as [`crate::winvec::WinVec`]) enforce this.

use crate::agg::{Aggregate, Contribution};
use sharon_types::Timestamp;
use std::collections::VecDeque;

/// One aggregate with same-timestamp isolation.
#[derive(Debug, Clone, Copy)]
struct Cell<A> {
    committed: A,
    pending: A,
    pending_time: Timestamp,
}

impl<A: Aggregate> Cell<A> {
    fn zero() -> Self {
        Cell {
            committed: A::ZERO,
            pending: A::ZERO,
            pending_time: Timestamp::ZERO,
        }
    }

    fn with_pending(value: A, at: Timestamp) -> Self {
        Cell {
            committed: A::ZERO,
            pending: value,
            pending_time: at,
        }
    }

    #[inline]
    fn settle(&mut self, now: Timestamp) {
        if self.pending_time < now && !self.pending.is_zero() {
            self.committed.merge(&self.pending);
            self.pending = A::ZERO;
        }
    }

    #[inline]
    fn read(&mut self, now: Timestamp) -> A {
        self.settle(now);
        self.committed
    }

    #[inline]
    fn add(&mut self, now: Timestamp, delta: &A) {
        self.settle(now);
        self.pending_time = now;
        self.pending.merge(delta);
    }
}

/// Aggregates for one live START event: `cells[j]` is the aggregate of all
/// sequences of the prefix `(E₁ … E_{j+1})` that begin at this START event.
/// The final position `E_l` is not stored — completions are consumed
/// immediately by the window accumulators or the chain combiner.
#[derive(Debug, Clone)]
struct StartEntry<A> {
    time: Timestamp,
    cells: Box<[Cell<A>]>,
}

/// Online aggregation state for one pattern segment of length ≥ 2.
///
/// (Length-1 segments need no state at all: each matching event is
/// simultaneously START and END, handled inline by the engine.)
///
/// START-entry cell arrays are **pooled**: expiration returns each dead
/// entry's box to a free list and [`SegmentRunner::on_start`] reuses it,
/// so the steady-state multi-type-segment path performs no per-event
/// allocation (the free list is bounded by the peak number of live START
/// events, which sliding-window expiration itself bounds).
#[derive(Debug, Clone)]
pub struct SegmentRunner<A> {
    len: usize,
    starts: VecDeque<StartEntry<A>>,
    /// Recycled cell arrays of expired START entries.
    free: Vec<Box<[Cell<A>]>>,
}

impl<A: Aggregate> SegmentRunner<A> {
    /// A runner for a segment of `len` event types (`len ≥ 2`).
    pub fn new(len: usize) -> Self {
        assert!(len >= 2, "length-1 segments are stateless");
        SegmentRunner {
            len,
            starts: VecDeque::new(),
            free: Vec::new(),
        }
    }

    /// The segment length.
    pub fn segment_len(&self) -> usize {
        self.len
    }

    /// Number of live START events.
    pub fn live_starts(&self) -> usize {
        self.starts.len()
    }

    /// The timestamp of the live START event at `idx` (front = oldest).
    pub fn start_time(&self, idx: usize) -> Timestamp {
        self.starts[idx].time
    }

    /// Drop START events with `time <= cutoff` (they can no longer fall in
    /// a window together with the current event — Section 3.2, "only the
    /// counts of not-expired START events are updated"). Returns how many
    /// entries were dropped so that chain stages can discard the aligned
    /// snapshots.
    pub fn expire(&mut self, cutoff: Timestamp) -> usize {
        let mut dropped = 0;
        while let Some(front) = self.starts.front() {
            if front.time <= cutoff {
                let entry = self.starts.pop_front().expect("front checked");
                self.free.push(entry.cells);
                dropped += 1;
            } else {
                break;
            }
        }
        dropped
    }

    /// A START-type event arrived: create a new live START entry whose
    /// unit aggregate becomes visible to strictly later events. The cell
    /// array comes from the expiration free list when one is available.
    pub fn on_start(&mut self, time: Timestamp, c: Contribution) {
        debug_assert!(
            self.starts.back().is_none_or(|b| b.time <= time),
            "events must arrive in timestamp order"
        );
        let mut cells = match self.free.pop() {
            Some(mut cells) => {
                cells.fill(Cell::zero());
                cells
            }
            None => vec![Cell::zero(); self.len - 1].into_boxed_slice(),
        };
        cells[0] = Cell::with_pending(A::unit(c), time);
        self.starts.push_back(StartEntry { time, cells });
    }

    /// A MID-type event arrived at 0-based pattern position `pos`
    /// (`1 ≤ pos ≤ len − 2`): for every live START event strictly older
    /// than the event, extend the length-`pos` prefix aggregate into the
    /// length-`pos + 1` one.
    pub fn on_mid(&mut self, pos: usize, time: Timestamp, c: Contribution) {
        debug_assert!(pos >= 1 && pos < self.len - 1, "mid position out of range");
        for entry in self.starts.iter_mut() {
            if entry.time >= time {
                break;
            }
            let prev = entry.cells[pos - 1].read(time);
            if prev.is_zero() {
                continue;
            }
            let delta = prev.extend(c);
            entry.cells[pos].add(time, &delta);
        }
    }

    /// An END-type event arrived: report, per live START event, the
    /// aggregate of the *newly completed* sequences (those ending at this
    /// event). The callback receives `(start_index, start_time, delta)`.
    pub fn on_end<F: FnMut(usize, Timestamp, A)>(
        &mut self,
        time: Timestamp,
        c: Contribution,
        mut on_completion: F,
    ) {
        let last = self.len - 2;
        for (idx, entry) in self.starts.iter_mut().enumerate() {
            if entry.time >= time {
                break;
            }
            let prev = entry.cells[last].read(time);
            if prev.is_zero() {
                continue;
            }
            on_completion(idx, entry.time, prev.extend(c));
        }
    }

    /// Rough count of aggregate cells held (for memory reporting).
    pub fn cell_count(&self) -> usize {
        self.starts.len() * (self.len - 1)
    }

    /// Serialize the runner: segment length and every live START entry
    /// with its cells (committed + pending, preserving the strict `<`
    /// same-timestamp isolation). The expiration free list is a pure
    /// allocation cache and is not persisted.
    pub fn save_state(&self, w: &mut crate::checkpoint::StateWriter) {
        w.usize(self.len);
        w.seq_len(self.starts.len());
        for entry in &self.starts {
            w.time(entry.time);
            w.seq_len(entry.cells.len());
            for cell in entry.cells.iter() {
                cell.committed.save(w);
                cell.pending.save(w);
                w.time(cell.pending_time);
            }
        }
    }

    /// Decode a runner written by [`SegmentRunner::save_state`].
    pub fn load_state(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Self, crate::checkpoint::StateError> {
        let len = r.usize()?;
        if len < 2 {
            return Err(crate::checkpoint::StateError::Corrupt("segment length"));
        }
        let n = r.seq_len()?;
        let mut starts = VecDeque::with_capacity(n);
        for _ in 0..n {
            let time = r.time()?;
            let n_cells = r.seq_len()?;
            if n_cells != len - 1 {
                return Err(crate::checkpoint::StateError::Corrupt("cell array length"));
            }
            let mut cells = Vec::with_capacity(n_cells);
            for _ in 0..n_cells {
                cells.push(Cell {
                    committed: A::load(r)?,
                    pending: A::load(r)?,
                    pending_time: r.time()?,
                });
            }
            starts.push_back(StartEntry {
                time,
                cells: cells.into_boxed_slice(),
            });
        }
        Ok(SegmentRunner {
            len,
            starts,
            free: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::CountCell;

    const NONE: Contribution = Contribution::NONE;

    fn completions(runner: &mut SegmentRunner<CountCell>, t: u64) -> Vec<(u64, u128)> {
        let mut out = Vec::new();
        runner.on_end(Timestamp(t), NONE, |_, st, d| out.push((st.millis(), d.0)));
        out
    }

    /// Figure 6(a): pattern (A,B) over a1, b2, a3, b4 — count(A,B) = 3.
    #[test]
    fn online_sequence_count_example_1() {
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(2);
        r.on_start(Timestamp(1), NONE); // a1
        assert_eq!(completions(&mut r, 2), vec![(1, 1)]); // b2: (a1,b2)
        r.on_start(Timestamp(3), NONE); // a3
        let b4 = completions(&mut r, 4);
        assert_eq!(b4, vec![(1, 1), (3, 1)], "b4 forms (a1,b4) and (a3,b4)");
        // total across b2 and b4 = 3, the paper's count(A,B)
        assert_eq!(1 + b4.iter().map(|(_, d)| d).sum::<u128>(), 3);
    }

    /// Figure 6(b): window length 4; when b5 arrives, a1 (time 1) is
    /// expired and only a2's count updates.
    #[test]
    fn expiration_example_2() {
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(2);
        r.on_start(Timestamp(1), NONE); // a1
        r.on_start(Timestamp(2), NONE); // a2
                                        // b5 arrives: cutoff = 5 - 4 = 1, so a1 expires
        let dropped = r.expire(Timestamp(1));
        assert_eq!(dropped, 1);
        assert_eq!(r.live_starts(), 1);
        assert_eq!(completions(&mut r, 5), vec![(2, 1)]);
    }

    #[test]
    fn three_type_pattern_with_mid_events() {
        // pattern (A, B, C): a1 b2 b3 c4 -> sequences (a1,b2,c4), (a1,b3,c4)
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(3);
        r.on_start(Timestamp(1), NONE);
        r.on_mid(1, Timestamp(2), NONE);
        r.on_mid(1, Timestamp(3), NONE);
        assert_eq!(completions(&mut r, 4), vec![(1, 2)]);
        // a second c5 completes the same two again
        assert_eq!(completions(&mut r, 5), vec![(1, 2)]);
    }

    #[test]
    fn same_timestamp_events_do_not_chain() {
        // pattern (A, B): a at t=5, b at t=5 -> no sequence (strict <)
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(2);
        r.on_start(Timestamp(5), NONE);
        assert_eq!(completions(&mut r, 5), vec![]);
        // but a later b works
        assert_eq!(completions(&mut r, 6), vec![(5, 1)]);
    }

    #[test]
    fn same_timestamp_mid_chain_is_blocked() {
        // pattern (A, B, C): a1, b5, c5 -> c5 must not see b5's update
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(3);
        r.on_start(Timestamp(1), NONE);
        r.on_mid(1, Timestamp(5), NONE);
        assert_eq!(completions(&mut r, 5), vec![]);
        // c6 does see it
        assert_eq!(completions(&mut r, 6), vec![(1, 1)]);
    }

    #[test]
    fn multiple_starts_accumulate_prefix_counts() {
        // pattern (A, B, C): a1 a2 b3 c4 -> (a1,b3,c4), (a2,b3,c4)
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(3);
        r.on_start(Timestamp(1), NONE);
        r.on_start(Timestamp(2), NONE);
        r.on_mid(1, Timestamp(3), NONE);
        assert_eq!(completions(&mut r, 4), vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn zero_prefixes_produce_no_completions() {
        // pattern (A, B, C) with no B yet: C produces nothing
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(3);
        r.on_start(Timestamp(1), NONE);
        assert_eq!(completions(&mut r, 2), vec![]);
    }

    #[test]
    fn expire_keeps_later_starts() {
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(2);
        for t in 1..=5 {
            r.on_start(Timestamp(t), NONE);
        }
        assert_eq!(r.expire(Timestamp(3)), 3);
        assert_eq!(r.live_starts(), 2);
        assert_eq!(r.start_time(0), Timestamp(4));
        assert_eq!(r.expire(Timestamp(3)), 0, "idempotent");
    }

    #[test]
    fn cell_count_reports_state_size() {
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(4);
        assert_eq!(r.cell_count(), 0);
        r.on_start(Timestamp(1), NONE);
        r.on_start(Timestamp(2), NONE);
        assert_eq!(r.cell_count(), 6);
        assert_eq!(r.segment_len(), 4);
    }

    #[test]
    #[should_panic(expected = "length-1 segments are stateless")]
    fn length_one_rejected() {
        let _ = SegmentRunner::<CountCell>::new(1);
    }

    #[test]
    fn state_round_trips_preserving_same_time_isolation() {
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(3);
        r.on_start(Timestamp(1), NONE);
        r.on_mid(1, Timestamp(2), NONE);
        r.on_start(Timestamp(2), NONE); // pending at t=2
        let mut w = crate::checkpoint::StateWriter::new();
        r.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut rd = crate::checkpoint::StateReader::new(&bytes);
        let mut got: SegmentRunner<CountCell> = SegmentRunner::load_state(&mut rd).unwrap();
        assert!(rd.is_exhausted());
        assert_eq!(got.segment_len(), 3);
        assert_eq!(got.live_starts(), 2);
        // t=2's START and mid-update stay invisible at t=2, visible at t=3
        assert_eq!(completions(&mut got, 2), vec![]);
        assert_eq!(completions(&mut got, 3), vec![(1, 1)]);
    }

    #[test]
    fn expired_entries_are_pooled_and_reset_on_reuse() {
        // the recycled cell array must behave exactly like a fresh one
        let mut r: SegmentRunner<CountCell> = SegmentRunner::new(3);
        r.on_start(Timestamp(1), NONE);
        r.on_mid(1, Timestamp(2), NONE); // dirty the second cell
        assert_eq!(r.expire(Timestamp(1)), 1);
        assert_eq!(r.free.len(), 1, "expired entry returned to the pool");
        r.on_start(Timestamp(3), NONE); // reuses the pooled array
        assert!(r.free.is_empty(), "pooled entry was taken");
        // a C now must see no completion: the dirty mid-cell was reset
        assert_eq!(completions(&mut r, 4), vec![]);
        r.on_mid(1, Timestamp(5), NONE);
        assert_eq!(completions(&mut r, 6), vec![(3, 1)]);
    }
}
