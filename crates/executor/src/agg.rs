//! Incremental aggregate cells.
//!
//! The online executors never materialize event sequences; they maintain,
//! per pattern prefix and per live START event, a small *aggregate cell*
//! describing the set of sequences matched so far (Section 3.2). Cells
//! support the three operations the Sharon executor needs:
//!
//! * `merge` — disjoint union of two sequence sets (e.g. "previously formed
//!   sequences are kept", Example 1);
//! * `extend` — append one event to every sequence in the set (the prefix
//!   recurrence `count(A,B) += count(A)`);
//! * `cross` — concatenate every sequence of one set with every sequence of
//!   another (the count *combination* step of the Shared method, Example 3:
//!   `count(A,B,c3,D) = count(A,B) × count(c3,D)`).
//!
//! [`CountCell`] is the specialized kernel for `COUNT(*)`/`COUNT(E)`
//! (exactly A-Seq's counts); [`StatsCell`] additionally carries sum/min/max
//! so one cell type serves `SUM`, `MIN`, `MAX`, and `AVG`.

use crate::checkpoint::{StateError, StateReader, StateWriter};
use serde::{Deserialize, Serialize};
use sharon_query::aggregate::AggValue;

/// Per-event input to a cell update: whether the event is of the
/// aggregate's target type and, if so, the numeric attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Contribution {
    /// True if the event is of the aggregate's target type (always false
    /// for `COUNT(*)`, which needs no per-event values).
    pub relevant: bool,
    /// The target attribute's value (meaningful only if `relevant`).
    pub value: f64,
}

impl Contribution {
    /// The contribution of an event that the aggregate does not read.
    pub const NONE: Contribution = Contribution {
        relevant: false,
        value: 0.0,
    };

    /// The contribution of a target-type event carrying `value`.
    pub fn of(value: f64) -> Self {
        Contribution {
            relevant: true,
            value,
        }
    }
}

/// How a cell's fields map to the query's output value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputKind {
    /// `COUNT(*)`: the sequence count.
    Count,
    /// `COUNT(E)` where `E` occurs `k` times in the pattern: `k × count`.
    CountTimes(u32),
    /// `SUM(E.attr)`.
    Sum,
    /// `MIN(E.attr)`.
    Min,
    /// `MAX(E.attr)`.
    Max,
    /// `AVG(E.attr)` where `E` occurs `k` times: `sum / (k × count)`.
    Avg(u32),
}

/// An incrementally maintainable aggregate over a set of event sequences.
///
/// Laws (checked by property tests):
/// * `merge` is commutative and associative with identity [`Aggregate::ZERO`];
/// * `extend` distributes over `merge`;
/// * `cross` is associative, has `ZERO` as annihilator, and distributes
///   over `merge` on both sides.
pub trait Aggregate: Copy + Clone + PartialEq + std::fmt::Debug + Send + 'static {
    /// The aggregate of the empty sequence set.
    const ZERO: Self;

    /// True if `sub_assign` is exact (counts and sums are; min/max are
    /// not). Enables the executor's difference-array fast path for
    /// range updates.
    const SUBTRACTABLE: bool = false;

    /// Remove `other`'s contribution (only meaningful when
    /// [`Aggregate::SUBTRACTABLE`]).
    fn sub_assign(&mut self, _other: &Self) {
        panic!(
            "{} does not support subtraction: the difference-array fast \
             path is gated on Aggregate::SUBTRACTABLE",
            std::any::type_name::<Self>()
        )
    }

    /// The aggregate of the single one-event sequence `[e]`.
    fn unit(c: Contribution) -> Self;

    /// True if the set is empty (no matched sequences).
    fn is_zero(&self) -> bool;

    /// Disjoint union.
    fn merge(&mut self, other: &Self);

    /// Append one event (with contribution `c`) to every sequence.
    fn extend(&self, c: Contribution) -> Self;

    /// Concatenate every sequence of `self` with every sequence of `other`.
    fn cross(&self, other: &Self) -> Self;

    /// Project the final output value.
    fn output(&self, kind: OutputKind) -> AggValue;

    /// Box the cell into a kernel-erased [`PartialAgg`] — the sub-aggregate
    /// form the sharded runtime's hot-group merge step combines across
    /// shards.
    fn to_partial(&self) -> PartialAgg;

    /// Serialize the cell into a checkpoint segment.
    fn save(&self, w: &mut StateWriter);

    /// Decode a cell previously written by [`Aggregate::save`].
    fn load(r: &mut StateReader<'_>) -> Result<Self, StateError>;
}

/// A kernel-erased per-window **sub-aggregate** of one split (hot) group.
///
/// When the sharded runtime splits a skewed group across shards, each shard
/// accumulates only part of that group's per-window aggregate; the parts
/// are shipped in this form and combined by [`PartialAgg::merge`] at the
/// final merge step. The merge is exact for every aggregate kind the
/// system supports: `COUNT` and `SUM` add, `MIN`/`MAX` take the extremum,
/// and `AVG` merges via its carried `count + sum` (a [`StatsCell`]), so no
/// average-of-averages error can occur — the final value is only projected
/// *after* the merge, by [`PartialAgg::output`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartialAgg {
    /// A `COUNT`-kernel sub-aggregate.
    Count(CountCell),
    /// A stats-kernel sub-aggregate (`SUM`/`MIN`/`MAX`/`AVG` carry
    /// count + sum + min + max).
    Stats(StatsCell),
}

impl PartialAgg {
    /// Combine another shard's sub-aggregate of the same
    /// `(query, group, window)` into this one. Panics on kernel mismatch,
    /// which would mean two shards compiled the same partition differently.
    pub fn merge(&mut self, other: &PartialAgg) {
        match (self, other) {
            (PartialAgg::Count(a), PartialAgg::Count(b)) => a.merge(b),
            (PartialAgg::Stats(a), PartialAgg::Stats(b)) => a.merge(b),
            _ => panic!("sub-aggregate kernel mismatch across shards"),
        }
    }

    /// Project the merged value (only meaningful after all shards'
    /// sub-aggregates were merged).
    pub fn output(&self, kind: OutputKind) -> AggValue {
        match self {
            PartialAgg::Count(c) => c.output(kind),
            PartialAgg::Stats(s) => s.output(kind),
        }
    }

    /// Serialize into a checkpoint segment (tag + cell).
    pub fn save(&self, w: &mut StateWriter) {
        match self {
            PartialAgg::Count(c) => {
                w.u8(0);
                c.save(w);
            }
            PartialAgg::Stats(s) => {
                w.u8(1);
                s.save(w);
            }
        }
    }

    /// Decode a sub-aggregate written by [`PartialAgg::save`].
    pub fn load(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        match r.u8()? {
            0 => Ok(PartialAgg::Count(CountCell::load(r)?)),
            1 => Ok(PartialAgg::Stats(StatsCell::load(r)?)),
            _ => Err(StateError::Corrupt("partial aggregate tag")),
        }
    }
}

impl OutputKind {
    /// Serialize into a checkpoint segment (tag + multiplier).
    pub fn save(&self, w: &mut StateWriter) {
        match self {
            OutputKind::Count => w.u8(0),
            OutputKind::CountTimes(k) => {
                w.u8(1);
                w.u32(*k);
            }
            OutputKind::Sum => w.u8(2),
            OutputKind::Min => w.u8(3),
            OutputKind::Max => w.u8(4),
            OutputKind::Avg(k) => {
                w.u8(5);
                w.u32(*k);
            }
        }
    }

    /// Decode an output kind written by [`OutputKind::save`].
    pub fn load(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.u8()? {
            0 => OutputKind::Count,
            1 => OutputKind::CountTimes(r.u32()?),
            2 => OutputKind::Sum,
            3 => OutputKind::Min,
            4 => OutputKind::Max,
            5 => OutputKind::Avg(r.u32()?),
            _ => return Err(StateError::Corrupt("output kind tag")),
        })
    }
}

/// The count-only kernel (A-Seq's counts). Saturating at `u128::MAX`,
/// which is unreachable for any window the benchmarks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CountCell(pub u128);

impl Aggregate for CountCell {
    const ZERO: CountCell = CountCell(0);
    const SUBTRACTABLE: bool = true;

    #[inline]
    fn sub_assign(&mut self, other: &Self) {
        self.0 = self.0.saturating_sub(other.0);
    }

    #[inline]
    fn unit(_c: Contribution) -> Self {
        CountCell(1)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn merge(&mut self, other: &Self) {
        self.0 = self.0.saturating_add(other.0);
    }

    #[inline]
    fn extend(&self, _c: Contribution) -> Self {
        *self
    }

    #[inline]
    fn cross(&self, other: &Self) -> Self {
        CountCell(self.0.saturating_mul(other.0))
    }

    fn output(&self, kind: OutputKind) -> AggValue {
        match kind {
            OutputKind::Count => AggValue::Count(self.0),
            OutputKind::CountTimes(k) => AggValue::Count(self.0.saturating_mul(k as u128)),
            _ => panic!("CountCell cannot produce {kind:?}; use StatsCell"),
        }
    }

    #[inline]
    fn to_partial(&self) -> PartialAgg {
        PartialAgg::Count(*self)
    }

    fn save(&self, w: &mut StateWriter) {
        w.u128(self.0);
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(CountCell(r.u128()?))
    }
}

/// The full kernel: count plus sum/min/max of the target attribute over
/// all sequences in the set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatsCell {
    /// Number of sequences in the set.
    pub count: u128,
    /// Sum of target-attribute values over all events in all sequences.
    pub sum: f64,
    /// Minimum target-attribute value (`+∞` when no target event).
    pub min: f64,
    /// Maximum target-attribute value (`-∞` when no target event).
    pub max: f64,
}

impl Aggregate for StatsCell {
    const ZERO: StatsCell = StatsCell {
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    fn unit(c: Contribution) -> Self {
        if c.relevant {
            StatsCell {
                count: 1,
                sum: c.value,
                min: c.value,
                max: c.value,
            }
        } else {
            StatsCell {
                count: 1,
                ..Self::ZERO
            }
        }
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.count == 0
    }

    fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn extend(&self, c: Contribution) -> Self {
        if self.count == 0 {
            return Self::ZERO;
        }
        if c.relevant {
            StatsCell {
                count: self.count,
                sum: self.sum + c.value * self.count as f64,
                min: self.min.min(c.value),
                max: self.max.max(c.value),
            }
        } else {
            *self
        }
    }

    fn cross(&self, other: &Self) -> Self {
        if self.count == 0 || other.count == 0 {
            return Self::ZERO;
        }
        StatsCell {
            count: self.count.saturating_mul(other.count),
            sum: self.sum * other.count as f64 + other.sum * self.count as f64,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    fn output(&self, kind: OutputKind) -> AggValue {
        match kind {
            OutputKind::Count => AggValue::Count(self.count),
            OutputKind::CountTimes(k) => AggValue::Count(self.count.saturating_mul(k as u128)),
            OutputKind::Sum => AggValue::Number((self.count > 0).then_some(self.sum)),
            OutputKind::Min => {
                AggValue::Number((self.count > 0 && self.min.is_finite()).then_some(self.min))
            }
            OutputKind::Max => {
                AggValue::Number((self.count > 0 && self.max.is_finite()).then_some(self.max))
            }
            OutputKind::Avg(k) => AggValue::Number(if self.count > 0 && k > 0 {
                Some(self.sum / (self.count as f64 * k as f64))
            } else {
                None
            }),
        }
    }

    #[inline]
    fn to_partial(&self) -> PartialAgg {
        PartialAgg::Stats(*self)
    }

    fn save(&self, w: &mut StateWriter) {
        w.u128(self.count);
        w.f64(self.sum);
        w.f64(self.min);
        w.f64(self.max);
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(StatsCell {
            count: r.u128()?,
            sum: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_cell_models_example_1() {
        // Figure 6(a): count(A,B) after a1, b2, a3, b4 is 3
        let mut count_a = CountCell::ZERO; // count(A)
        let mut count_ab = CountCell::ZERO; // count(A,B)
                                            // a1 arrives
        count_a.merge(&CountCell::unit(Contribution::NONE));
        // b2 arrives: count(A,B) += count(A)
        count_ab.merge(&count_a.extend(Contribution::NONE));
        assert_eq!(count_ab.0, 1);
        // a3 arrives
        count_a.merge(&CountCell::unit(Contribution::NONE));
        // b4 arrives
        count_ab.merge(&count_a.extend(Contribution::NONE));
        assert_eq!(count_ab.0, 3, "paper: count(A,B) updated to 3");
    }

    #[test]
    fn count_cross_models_example_3() {
        // count(A,B,c3,D) = count(A,B) * count(c3,D) = 1 * 2 = 2
        assert_eq!(CountCell(1).cross(&CountCell(2)).0, 2);
        // count(A,B,c7,D) = 5 * 1 = 5; summed: 7
        let mut total = CountCell(1).cross(&CountCell(2));
        total.merge(&CountCell(5).cross(&CountCell(1)));
        assert_eq!(total.0, 7, "paper: count(A,B,C,D) = 7");
    }

    #[test]
    fn count_subtraction() {
        let (c_sub, s_sub) = (CountCell::SUBTRACTABLE, StatsCell::SUBTRACTABLE);
        assert!(c_sub && !s_sub);
        let mut c = CountCell(5);
        c.sub_assign(&CountCell(2));
        assert_eq!(c, CountCell(3));
    }

    #[test]
    #[should_panic(expected = "does not support subtraction")]
    fn stats_subtraction_panics() {
        let mut s = StatsCell::ZERO;
        s.sub_assign(&StatsCell::ZERO);
    }

    #[test]
    fn count_saturates() {
        let big = CountCell(u128::MAX);
        let mut x = big;
        x.merge(&CountCell(1));
        assert_eq!(x.0, u128::MAX);
        assert_eq!(big.cross(&CountCell(2)).0, u128::MAX);
        assert_eq!(
            big.output(OutputKind::CountTimes(3)),
            AggValue::Count(u128::MAX)
        );
    }

    #[test]
    fn stats_unit_and_extend() {
        let s = StatsCell::unit(Contribution::of(5.0));
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);

        // extend by an irrelevant event: values unchanged
        let s2 = s.extend(Contribution::NONE);
        assert_eq!(s2, s);

        // extend by a relevant event
        let s3 = s.extend(Contribution::of(3.0));
        assert_eq!(s3.count, 1);
        assert_eq!(s3.sum, 8.0);
        assert_eq!(s3.min, 3.0);
        assert_eq!(s3.max, 5.0);
    }

    #[test]
    fn extend_of_zero_is_zero() {
        assert!(StatsCell::ZERO.extend(Contribution::of(9.0)).is_zero());
        assert!(CountCell::ZERO.extend(Contribution::NONE).is_zero());
    }

    #[test]
    fn stats_extend_scales_sum_by_count() {
        // two sequences, sums 1 and 2 => set sum 3
        let mut set = StatsCell::unit(Contribution::of(1.0));
        set.merge(&StatsCell::unit(Contribution::of(2.0)));
        // extend both by a relevant event of value 10: sum = 3 + 2*10 = 23
        let e = set.extend(Contribution::of(10.0));
        assert_eq!(e.count, 2);
        assert_eq!(e.sum, 23.0);
        assert_eq!(e.min, 1.0);
        assert_eq!(e.max, 10.0);
    }

    #[test]
    fn stats_cross() {
        let mut left = StatsCell::unit(Contribution::of(1.0));
        left.merge(&StatsCell::unit(Contribution::of(2.0))); // 2 seqs, sum 3
        let right = StatsCell::unit(Contribution::of(10.0)); // 1 seq, sum 10
        let c = left.cross(&right);
        // 2 combined sequences; each right value appears `left.count` times
        // and vice versa: sum = 3*1 + 10*2 = 23
        assert_eq!(c.count, 2);
        assert_eq!(c.sum, 23.0);
        assert_eq!(c.min, 1.0);
        assert_eq!(c.max, 10.0);

        assert!(left.cross(&StatsCell::ZERO).is_zero());
        assert!(StatsCell::ZERO.cross(&right).is_zero());
    }

    #[test]
    fn outputs() {
        let mut s = StatsCell::unit(Contribution::of(4.0));
        s.merge(&StatsCell::unit(Contribution::of(6.0)));
        assert_eq!(s.output(OutputKind::Count), AggValue::Count(2));
        assert_eq!(s.output(OutputKind::CountTimes(2)), AggValue::Count(4));
        assert_eq!(s.output(OutputKind::Sum), AggValue::Number(Some(10.0)));
        assert_eq!(s.output(OutputKind::Min), AggValue::Number(Some(4.0)));
        assert_eq!(s.output(OutputKind::Max), AggValue::Number(Some(6.0)));
        assert_eq!(s.output(OutputKind::Avg(1)), AggValue::Number(Some(5.0)));
        assert_eq!(
            StatsCell::ZERO.output(OutputKind::Sum),
            AggValue::Number(None)
        );
        assert_eq!(
            StatsCell::ZERO.output(OutputKind::Avg(1)),
            AggValue::Number(None)
        );
        // count>0 but no relevant events: MIN/MAX are null
        let bare = StatsCell::unit(Contribution::NONE);
        assert_eq!(bare.output(OutputKind::Min), AggValue::Number(None));
        assert_eq!(bare.output(OutputKind::Max), AggValue::Number(None));
        assert_eq!(CountCell(5).output(OutputKind::Count), AggValue::Count(5));
    }

    #[test]
    #[should_panic(expected = "CountCell cannot produce")]
    fn count_cell_rejects_numeric_outputs() {
        CountCell(1).output(OutputKind::Sum);
    }

    #[test]
    fn partial_merge_per_kind() {
        // COUNT adds
        let mut p = CountCell(3).to_partial();
        p.merge(&CountCell(4).to_partial());
        assert_eq!(p.output(OutputKind::Count), AggValue::Count(7));

        // SUM adds; MIN/MAX take extrema; AVG merges via count+sum — the
        // sub-aggregate form makes avg-of-avgs impossible
        let mut a = StatsCell::unit(Contribution::of(4.0)); // 1 seq, sum 4
        a.merge(&StatsCell::unit(Contribution::of(8.0))); // 2 seqs, sum 12
        let b = StatsCell::unit(Contribution::of(1.0)); // 1 seq, sum 1
        let mut p = a.to_partial();
        p.merge(&b.to_partial());
        assert_eq!(p.output(OutputKind::Sum), AggValue::Number(Some(13.0)));
        assert_eq!(p.output(OutputKind::Min), AggValue::Number(Some(1.0)));
        assert_eq!(p.output(OutputKind::Max), AggValue::Number(Some(8.0)));
        // avg = 13 / 3, NOT (6 + 1) / 2
        assert_eq!(
            p.output(OutputKind::Avg(1)),
            AggValue::Number(Some(13.0 / 3.0))
        );
    }

    #[test]
    #[should_panic(expected = "kernel mismatch")]
    fn partial_merge_rejects_kernel_mismatch() {
        let mut p = CountCell(1).to_partial();
        p.merge(&StatsCell::ZERO.to_partial());
    }

    #[test]
    fn cells_and_kinds_round_trip_through_codec() {
        let stats = StatsCell {
            count: u128::MAX / 7,
            sum: -1.25,
            min: f64::NEG_INFINITY,
            max: f64::INFINITY,
        };
        let kinds = [
            OutputKind::Count,
            OutputKind::CountTimes(3),
            OutputKind::Sum,
            OutputKind::Min,
            OutputKind::Max,
            OutputKind::Avg(2),
        ];
        let mut w = StateWriter::new();
        CountCell(17).save(&mut w);
        stats.save(&mut w);
        CountCell(4).to_partial().save(&mut w);
        stats.to_partial().save(&mut w);
        for k in &kinds {
            k.save(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(CountCell::load(&mut r).unwrap(), CountCell(17));
        assert_eq!(StatsCell::load(&mut r).unwrap(), stats);
        assert_eq!(PartialAgg::load(&mut r).unwrap(), CountCell(4).to_partial());
        assert_eq!(PartialAgg::load(&mut r).unwrap(), stats.to_partial());
        for k in &kinds {
            assert_eq!(&OutputKind::load(&mut r).unwrap(), k);
        }
        assert!(r.is_exhausted());
    }
}
