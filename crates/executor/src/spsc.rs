//! Bounded single-producer/single-consumer ring buffers.
//!
//! The sharded runtime fans routed batches out over one queue per worker:
//! exactly one producer (the ingest thread) and one consumer (the shard
//! worker) per queue. That restriction admits the classic Lamport ring —
//! a fixed slot array with monotonically increasing head/tail counters,
//! where each side writes only its own counter — so a transfer is two
//! atomic loads and one release store, with no locks, no per-send
//! allocation, and no cross-queue contention (unlike
//! `std::sync::mpsc::sync_channel`, whose shared internal queue state both
//! sides mutate).
//!
//! Blocking uses bounded spinning that decays to `yield_now` and then to a
//! short sleep: batch-granular traffic (thousands of events per transfer)
//! makes wait latency irrelevant, while sleeping avoids burning a core the
//! peer may need — on a single-CPU host a spinning producer would stall
//! the very worker it is waiting for.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer reads (monotonic; slot = `head % cap`).
    head: AtomicUsize,
    /// Next slot the producer writes (monotonic; slot = `tail % cap`).
    tail: AtomicUsize,
    /// Set when either endpoint is dropped.
    closed: AtomicBool,
}

// SAFETY: the ring is shared between exactly one producer and one consumer
// thread. Slot access is synchronized by the head/tail counters: the
// producer only writes slots in `[head + cap, tail]`-free space it
// observed via an Acquire load of `head`, and publishes them with a
// Release store of `tail` (and vice versa for the consumer), so no slot is
// ever accessed concurrently.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // both endpoints are gone (Arc): drop any unconsumed items
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = self.slots[i % self.slots.len()].get();
            // SAFETY: slots in [head, tail) hold initialized, unconsumed
            // values, and no other thread exists at Drop time.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// Spin → yield → sleep backoff for the blocking paths.
#[derive(Default)]
struct Backoff(u32);

impl Backoff {
    fn wait(&mut self) {
        if self.0 < 8 {
            std::hint::spin_loop();
        } else if self.0 < 24 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
        self.0 = self.0.saturating_add(1);
    }
}

/// The producing endpoint of a [`ring`]. Dropping it closes the queue;
/// the consumer drains remaining items, then sees end-of-stream.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

/// The consuming endpoint of a [`ring`]. Dropping it closes the queue;
/// subsequent sends fail fast.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
}

/// Create a bounded SPSC ring of `capacity` slots.
pub fn ring<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "ring needs at least one slot");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Sender {
            ring: Arc::clone(&ring),
        },
        Receiver { ring },
    )
}

impl<T: Send> Sender<T> {
    /// Block until a slot frees up, then enqueue `value`. Fails (returning
    /// the value) only if the receiver is gone.
    ///
    /// Takes `&mut self`: exclusive access is what makes this endpoint
    /// single-producer — the borrow checker rules out concurrent `send`s
    /// on a shared handle, which the lock-free slot writes rely on.
    pub fn send(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let cap = ring.slots.len();
        let tail = ring.tail.load(Ordering::Relaxed); // producer-owned
        let mut backoff = Backoff::default();
        loop {
            if ring.closed.load(Ordering::Acquire) {
                return Err(value);
            }
            let head = ring.head.load(Ordering::Acquire);
            if tail - head < cap {
                // SAFETY: `tail - head < cap` means slot `tail % cap` was
                // consumed (or never written); only this thread writes it
                // until the Release store below publishes it.
                unsafe { (*ring.slots[tail % cap].get()).write(value) };
                ring.tail.store(tail + 1, Ordering::Release);
                return Ok(());
            }
            backoff.wait();
        }
    }

    /// Non-blocking send: enqueue `value` if a slot is free, otherwise
    /// return it immediately (also when the receiver is gone). Used by the
    /// recycling return rings, where dropping the value is an acceptable
    /// fallback and blocking never is.
    pub fn try_send(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let cap = ring.slots.len();
        let tail = ring.tail.load(Ordering::Relaxed); // producer-owned
        if ring.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let head = ring.head.load(Ordering::Acquire);
        if tail - head < cap {
            // SAFETY: same argument as `send` — the slot is free and only
            // this thread writes it until the Release store publishes it.
            unsafe { (*ring.slots[tail % cap].get()).write(value) };
            ring.tail.store(tail + 1, Ordering::Release);
            Ok(())
        } else {
            Err(value)
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Send> Receiver<T> {
    /// Block until an item arrives and dequeue it, or return `None` once
    /// the sender is gone and the ring has drained.
    ///
    /// Takes `&mut self` for the same reason as [`Sender::send`]: the
    /// exclusive borrow enforces the single-consumer invariant.
    pub fn recv(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let cap = ring.slots.len();
        let head = ring.head.load(Ordering::Relaxed); // consumer-owned
        let mut backoff = Backoff::default();
        loop {
            let tail = ring.tail.load(Ordering::Acquire);
            if head < tail {
                // SAFETY: the Acquire load of `tail` makes the producer's
                // write of slot `head % cap` visible; only this thread
                // reads it until the Release store below frees it.
                let value = unsafe { (*ring.slots[head % cap].get()).assume_init_read() };
                ring.head.store(head + 1, Ordering::Release);
                return Some(value);
            }
            if ring.closed.load(Ordering::Acquire) {
                // closed and (re-checked) empty: end of stream
                if ring.tail.load(Ordering::Acquire) == head {
                    return None;
                }
                continue;
            }
            backoff.wait();
        }
    }

    /// Drain every ready item into `pool`, dropping items once the pool
    /// holds `cap` entries. The recycling path of the routing side: one
    /// call per dispatched batch empties a worker's return ring without
    /// ever blocking, and the cap keeps a slow consumer from turning the
    /// pool into an unbounded cache.
    pub fn drain_into(&mut self, pool: &mut Vec<T>, cap: usize) {
        while let Some(item) = self.try_recv() {
            if pool.len() < cap {
                pool.push(item);
            }
        }
    }

    /// Non-blocking receive: dequeue an item if one is ready, `None`
    /// otherwise (including when the ring is closed). Used to drain the
    /// recycling return rings opportunistically on the ingest thread.
    pub fn try_recv(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let cap = ring.slots.len();
        let head = ring.head.load(Ordering::Relaxed); // consumer-owned
        let tail = ring.tail.load(Ordering::Acquire);
        if head < tail {
            // SAFETY: same argument as `recv`.
            let value = unsafe { (*ring.slots[head % cap].get()).assume_init_read() };
            ring.head.store(head + 1, Ordering::Release);
            Some(value)
        } else {
            None
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (mut tx, mut rx) = ring::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Some(1));
        tx.send(3).unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn cross_thread_with_backpressure() {
        let (mut tx, mut rx) = ring::<u64>(3);
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        let mut expected = 0;
        while let Some(v) = rx.recv() {
            assert_eq!(v, expected, "FIFO order");
            expected += 1;
        }
        assert_eq!(expected, n);
        producer.join().unwrap();
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (mut tx, rx) = ring::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn sender_drop_lets_consumer_drain() {
        let (mut tx, mut rx) = ring::<u8>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_try_recv_never_block() {
        let (mut tx, mut rx) = ring::<u8>(2);
        assert_eq!(rx.try_recv(), None, "empty ring");
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(3), "full ring returns the value");
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
        drop(rx);
        assert_eq!(tx.try_send(9), Err(9), "closed ring fails fast");
    }

    #[test]
    fn drain_into_respects_the_pool_cap() {
        let (mut tx, mut rx) = ring::<u8>(4);
        for v in 0..4 {
            tx.send(v).unwrap();
        }
        let mut pool = vec![9u8];
        rx.drain_into(&mut pool, 3);
        // ring fully drained, but only filled to the cap (excess dropped)
        assert_eq!(pool, vec![9, 0, 1]);
        assert_eq!(rx.try_recv(), None, "drain empties the ring regardless");
    }

    #[test]
    fn blocked_send_fails_when_receiver_closes_mid_wait() {
        // the panic-containment path: a routing side blocked on a full
        // ring whose worker died must get an error, not a hang
        let (mut tx, rx) = ring::<u8>(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        // give the sender time to enter its blocking wait on the full ring
        std::thread::sleep(Duration::from_millis(20));
        drop(rx); // close while full
        assert_eq!(
            sender.join().unwrap(),
            Err(2),
            "a send blocked on a full ring must fail when the receiver goes away"
        );
    }

    #[test]
    fn close_while_full_drains_in_fifo_order() {
        // closing a *full* ring must not disturb the unconsumed prefix:
        // the consumer drains every queued item in order, then sees a
        // stable end-of-stream
        let (mut tx, mut rx) = ring::<u8>(3);
        for v in [10, 20, 30] {
            tx.send(v).unwrap();
        }
        assert_eq!(tx.try_send(40), Err(40), "ring is full");
        drop(tx);
        assert_eq!(rx.recv(), Some(10));
        assert_eq!(rx.recv(), Some(20));
        assert_eq!(rx.recv(), Some(30));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), None, "end-of-stream is stable");
    }

    #[test]
    fn unconsumed_items_are_dropped_not_leaked() {
        use std::sync::Arc as StdArc;
        let marker: StdArc<()> = StdArc::new(());
        let (mut tx, rx) = ring::<StdArc<()>>(4);
        tx.send(StdArc::clone(&marker)).unwrap();
        tx.send(StdArc::clone(&marker)).unwrap();
        assert_eq!(StdArc::strong_count(&marker), 3);
        drop(tx);
        drop(rx);
        assert_eq!(StdArc::strong_count(&marker), 1, "ring drop frees items");
    }
}
