//! The sharded parallel runtime.
//!
//! `GROUP BY` partitions are independent by construction — "a result is
//! returned per group and per window" (Definition 2) and no engine state is
//! ever shared across groups — and compiled partitions (sharing-signature
//! classes, §7.2) never interact either. The Sharon executor is therefore
//! embarrassingly parallel along two axes, and [`ShardedExecutor`] exploits
//! both:
//!
//! * **group axis** — every worker shard owns, for each compiled
//!   partition, the disjoint slice of groups whose key hash lands on its
//!   index (see [`crate::engine::ShardSlice`]);
//! * **partition axis** — the global (no `GROUP BY`) runtime of partition
//!   `p` is assigned to worker `p mod N`, spreading independent partition
//!   engines over the shards.
//!
//! Each worker runs the ordinary sequential [`Engine`] over its slice, so
//! sharding is a pure work partition: shard results are disjoint and merge
//! exactly. [`ShardedExecutor::finish`] merges them in deterministic shard
//! order; determinism tests assert `semantically_eq` with the sequential
//! engine for every shard count.
//!
//! Events are ingested into a columnar [`EventBatch`] and **routed once**:
//! the ingest thread runs the stateless prefix of the event path — routing,
//! predicate evaluation, group-key hashing — a single time per event (see
//! [`BatchRouter`]) and ships each worker the [`Arc`]-shared batch plus the
//! row-index lists it owns. Workers call [`Engine::process_routed`] and
//! never evaluate predicates or extract keys for rows they do not own.
//! Transfers ride bounded SPSC ring buffers ([`crate::spsc`]) — one per
//! worker, no shared channel state — giving backpressure against slow
//! shards without cross-thread contention.
//!
//! [`Engine`]: crate::engine::Engine

use crate::compile::{compile, CompileError};
use crate::engine::{EngineKind, ShardSlice};
use crate::results::ExecutorResults;
use crate::router::{BatchRouter, RoutedRows};
use crate::spsc;
use sharon_query::{SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventBatch, EventStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default number of events buffered before a batch is routed and fanned
/// out.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// Bounded depth of each worker's ring buffer (backpressure).
const RING_DEPTH: usize = 4;

/// One routed batch in flight to one worker: the shared columnar batch
/// plus this worker's per-partition row lists.
struct RoutedBatch {
    batch: Arc<EventBatch>,
    rows: RoutedRows,
}

/// What each worker reports back when its ring closes.
struct ShardReport {
    results: ExecutorResults,
    events_matched: u64,
    cell_count: usize,
}

struct ShardWorker {
    sender: spsc::Sender<RoutedBatch>,
    handle: JoinHandle<ShardReport>,
    /// Events this shard has matched so far, published after every batch
    /// so [`ShardedExecutor::events_matched`] can report live progress.
    matched: Arc<AtomicU64>,
}

/// A parallel executor that hash-partitions work across `N` worker shards.
///
/// Construction compiles the workload exactly like [`crate::Executor`];
/// each worker owns one [`ShardSlice`] of every compiled partition.
/// Events are accepted one at a time, in row-form batches, or in columnar
/// batches; the ingest side routes each buffered batch once and fans the
/// per-shard row lists out over SPSC rings. [`ShardedExecutor::finish`]
/// drains the pipeline and merges the disjoint shard results.
pub struct ShardedExecutor {
    workers: Vec<ShardWorker>,
    buffer: EventBatch,
    router: BatchRouter,
    batch_size: usize,
    n_shards: usize,
    /// Incremented by `flush` as batches are fanned out; see
    /// [`ShardedExecutor::events_sent`].
    events_sent: u64,
}

impl ShardedExecutor {
    /// Compile `workload` under `plan` and spawn `n_shards` worker threads.
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::with_batch_size(catalog, workload, plan, n_shards, DEFAULT_BATCH_SIZE)
    }

    /// The Non-Shared (A-Seq) sharded executor.
    pub fn non_shared(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::new(catalog, workload, &SharingPlan::non_shared(), n_shards)
    }

    /// [`ShardedExecutor::new`] with an explicit flush threshold.
    pub fn with_batch_size(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
    ) -> Result<Self, CompileError> {
        assert!(n_shards >= 1, "need at least one shard");
        let batch_size = batch_size.max(1);
        let parts = compile(catalog, workload, plan)?;

        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let engines: Vec<EngineKind> = parts
                .iter()
                .enumerate()
                .map(|(pi, part)| {
                    let slice = ShardSlice {
                        index: shard as u32,
                        of: n_shards as u32,
                        owns_global: pi % n_shards == shard,
                    };
                    EngineKind::for_partition(part.clone(), Some(slice))
                })
                .collect();
            let (sender, receiver) = spsc::ring::<RoutedBatch>(RING_DEPTH);
            let matched = Arc::new(AtomicU64::new(0));
            let matched_pub = Arc::clone(&matched);
            let handle = std::thread::Builder::new()
                .name(format!("sharon-shard-{shard}"))
                .spawn(move || {
                    let mut engines = engines;
                    let mut receiver = receiver;
                    while let Some(routed) = receiver.recv() {
                        for (engine, rows) in engines.iter_mut().zip(&routed.rows.per_part) {
                            if !rows.is_empty() {
                                engine.process_routed(&routed.batch, rows);
                            }
                        }
                        matched_pub.store(
                            engines.iter().map(EngineKind::events_matched).sum(),
                            Ordering::Relaxed,
                        );
                    }
                    let events_matched = engines.iter().map(EngineKind::events_matched).sum();
                    let cell_count = engines
                        .iter()
                        .map(|e| match e {
                            EngineKind::Count(en) => en.cell_count(),
                            EngineKind::Stats(en) => en.cell_count(),
                        })
                        .sum();
                    let mut results = ExecutorResults::new();
                    for engine in engines {
                        results.merge(engine.finish());
                    }
                    ShardReport {
                        results,
                        events_matched,
                        cell_count,
                    }
                })
                .expect("spawn shard worker thread");
            workers.push(ShardWorker {
                sender,
                handle,
                matched,
            });
        }

        Ok(ShardedExecutor {
            workers,
            buffer: EventBatch::with_capacity(batch_size, 2),
            router: BatchRouter::new(parts, n_shards),
            batch_size,
            n_shards,
            events_sent: 0,
        })
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Events fanned out to the workers so far (excluding the unflushed
    /// buffer).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Events that passed routing, predicates, grouping, and shard
    /// ownership, summed over shards. Workers publish after each batch,
    /// so this trails ingestion by at most the in-flight batches (it is
    /// exact after [`ShardedExecutor::finish_with_stats`], which reports
    /// the final count).
    pub fn events_matched(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.matched.load(Ordering::Relaxed))
            .sum()
    }

    /// Enqueue one event (flushed when the batch threshold is reached).
    pub fn process(&mut self, e: &Event) {
        self.buffer.push_event(e);
        if self.buffer.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Enqueue a time-ordered batch of row-form events.
    pub fn process_batch(&mut self, events: &[Event]) {
        for e in events {
            self.buffer.push_event(e);
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
    }

    /// Enqueue a time-ordered columnar batch (any size; it is re-chunked
    /// to the flush threshold internally). Copies the rows into the
    /// internal buffer; callers that already own an [`Arc`]-shared batch
    /// should prefer the zero-copy [`ShardedExecutor::process_shared`].
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        let mut lo = 0;
        while lo < batch.len() {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            let hi = (lo + free).min(batch.len());
            self.buffer.extend_from_range(batch, lo, hi);
            lo = hi;
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
    }

    /// Zero-copy ingestion of an [`Arc`]-shared columnar batch: routes
    /// consecutive row ranges of `batch` directly (one flush-threshold
    /// chunk at a time, preserving pipelining) and ships workers the
    /// shared batch plus absolute row indexes — the batch is never copied.
    ///
    /// Events must be time-ordered relative to everything already
    /// ingested; any buffered rows are flushed first to preserve order.
    pub fn process_shared(&mut self, batch: &Arc<EventBatch>) {
        self.flush();
        let mut lo = 0;
        while lo < batch.len() {
            let hi = (lo + self.batch_size).min(batch.len());
            self.dispatch_range(batch, lo, hi);
            lo = hi;
        }
    }

    /// Drain a stream through the executor.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        loop {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            if stream.next_batch_columnar(free, &mut self.buffer) == 0 {
                break;
            }
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
        self
    }

    /// Route the buffered batch once and fan the per-shard row lists out.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::replace(
            &mut self.buffer,
            EventBatch::with_capacity(self.batch_size, 2),
        ));
        let len = batch.len();
        self.dispatch_range(&batch, 0, len);
    }

    /// Route rows `lo..hi` of `batch` once and send each worker the
    /// shared batch plus its owned row-index lists.
    fn dispatch_range(&mut self, batch: &Arc<EventBatch>, lo: usize, hi: usize) {
        self.events_sent += (hi - lo) as u64;
        let routed = self.router.route_range(batch, lo, hi);
        for (worker, rows) in self.workers.iter_mut().zip(routed) {
            // a worker with no owned rows is not woken at all
            if rows.is_empty() {
                continue;
            }
            let ok = worker
                .sender
                .send(RoutedBatch {
                    batch: Arc::clone(batch),
                    rows,
                })
                .is_ok();
            assert!(ok, "shard worker terminated early");
        }
    }

    /// Flush remaining events, stop the workers, and merge their results
    /// in deterministic shard order. Shard result sets are disjoint (each
    /// group is owned by exactly one shard), so the merge is exact.
    pub fn finish(self) -> ExecutorResults {
        self.finish_with_stats().0
    }

    /// [`ShardedExecutor::finish`] plus runtime statistics:
    /// `(results, events_matched, peak cell count)`.
    pub fn finish_with_stats(mut self) -> (ExecutorResults, u64, usize) {
        self.flush();
        let workers = std::mem::take(&mut self.workers);
        // close every ring before joining so all shards drain in parallel
        let handles: Vec<JoinHandle<ShardReport>> = workers
            .into_iter()
            .map(|ShardWorker { sender, handle, .. }| {
                drop(sender);
                handle
            })
            .collect();
        let mut results = ExecutorResults::new();
        let mut matched = 0u64;
        let mut cells = 0usize;
        for handle in handles {
            let report = handle.join().expect("shard worker panicked");
            results.merge(report.results);
            matched += report.events_matched;
            cells += report.cell_count;
        }
        (results, matched, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use sharon_query::{parse_workload, QueryId};
    use sharon_types::{GroupKey, Schema, Timestamp, Value};

    fn grouped_workload() -> (Catalog, Workload) {
        let mut c = Catalog::new();
        c.register_with_schema("A", Schema::new(["g", "v"]));
        c.register_with_schema("B", Schema::new(["g", "v"]));
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN SUM(B.v) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        (c, w)
    }

    fn stream(c: &Catalog, n: u64, groups: i64) -> Vec<Event> {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        // consecutive (A, B) pairs share a group, so matches exist for any
        // group cardinality; pairs from different groups interleave freely
        (0..n)
            .map(|i| {
                let ty = if i % 2 == 0 { a } else { b };
                Event::with_attrs(
                    ty,
                    Timestamp(i),
                    vec![
                        Value::Int((i / 2) as i64 % groups),
                        Value::Int((i % 7) as i64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn matches_sequential_across_shard_counts() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 4000, 37);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();
        assert!(!want.is_empty());

        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedExecutor::non_shared(&c, &w, shards).unwrap();
            for chunk in events.chunks(97) {
                sharded.process_batch(chunk);
            }
            let (got, matched, _cells) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "{shards} shards diverge from sequential"
            );
            assert_eq!(matched, want_matched, "{shards} shards: matched count");
        }
    }

    #[test]
    fn columnar_ingestion_matches_row_form() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 3000, 19);
        let batch = EventBatch::from_events(&events);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        // one oversized columnar push: re-chunked internally
        let mut sharded = ShardedExecutor::non_shared(&c, &w, 3).unwrap();
        sharded.process_columnar(&batch);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));

        // the zero-copy shared-batch path agrees too (mixed with a few
        // buffered row-form events first, to cover the order-preserving
        // pre-flush)
        let (head, tail) = events.split_at(100);
        let shared = Arc::new(EventBatch::from_events(tail));
        let mut sharded = ShardedExecutor::non_shared(&c, &w, 3).unwrap();
        sharded.process_batch(head);
        sharded.process_shared(&shared);
        let (got, matched, _) = sharded.finish_with_stats();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(matched > 0);
    }

    #[test]
    fn global_partitions_are_owned_once() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 20 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events: Vec<Event> = (0..100)
            .map(|i| Event::new(if i % 2 == 0 { a } else { b }, Timestamp(i)))
            .collect();

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let mut sharded = ShardedExecutor::non_shared(&c, &w, 4).unwrap();
        sharded.process_batch(&events);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(got.total_count(QueryId(0)) > 0);
        assert_eq!(
            got.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some(),
            want.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some()
        );
    }

    #[test]
    fn per_event_ingestion_flushes_on_threshold() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 500, 5);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        let mut sharded = ShardedExecutor::with_batch_size(&c, &w, &plan, 2, 64).unwrap();
        for e in &events {
            sharded.process(e);
        }
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }
}
