//! The sharded parallel runtime with a **pipelined ingest stage**.
//!
//! `GROUP BY` partitions are independent by construction — "a result is
//! returned per group and per window" (Definition 2) and no engine state is
//! ever shared across groups — and compiled partitions (sharing-signature
//! classes, §7.2) never interact either. Every strategy in the system is
//! therefore embarrassingly parallel along two axes, and
//! [`ShardedExecutor`] exploits both:
//!
//! * **group axis** — every worker shard owns, for each routing scope,
//!   the disjoint slice of groups whose key hash lands on its index (see
//!   [`crate::engine::ShardSlice`]);
//! * **scope axis** — the global (no `GROUP BY`) rows of scope `p` are
//!   assigned to worker `p mod N`, spreading independent scopes over the
//!   shards.
//!
//! The runtime is generic over *what* the workers run: each worker hosts
//! one [`ShardProcessor`] — a vector of online [`Engine`]s for the
//! Sharon/Greedy/A-Seq strategies, or a whole two-step baseline
//! (Flink-like, SPASS-like) for the figure-13 comparisons — so sharding is
//! a pure work partition for *any* strategy: shard results are disjoint
//! and merge exactly. [`ShardedExecutor::finish`] merges them in
//! deterministic shard order; determinism tests assert `semantically_eq`
//! with the sequential path for every shard count and every strategy.
//!
//! Events are ingested into a columnar [`EventBatch`] and **routed once**:
//! the routing side runs the stateless prefix of the event path — routing,
//! predicate evaluation, group-key hashing — a single time per event (see
//! [`crate::router::BatchRouter`]) and ships each worker the [`Arc`]-shared
//! batch plus the row-index lists it owns. Workers consume their routed
//! rows and never evaluate predicates or extract keys for rows they do not
//! own. Transfers ride bounded SPSC ring buffers ([`crate::spsc`]) — one
//! per worker, no shared channel state — giving backpressure against slow
//! shards without cross-thread contention.
//!
//! # Pipelined ingest
//!
//! Routing is the serial stage of the runtime: with in-line routing the
//! ingest thread routes batch `k + 1` only after every worker accepted
//! batch `k`, so per Amdahl the routing core caps shard scaling on
//! query-heavy workloads. With a **pipeline depth ≥ 1** (the default,
//! [`DEFAULT_PIPELINE_DEPTH`]), a dedicated *router thread* owns the
//! [`RouteBatch`] and the worker rings, and the ingest thread hands it
//! filled batches over one more bounded SPSC ring (capacity = the
//! pipeline depth, so the ring itself is the backpressure): the router
//! routes batch `k + 1` while the shard workers execute batch `k` and the
//! ingest thread buffers batch `k + 2`. Depth `0` selects the legacy
//! in-line mode (routing on the ingest thread); both modes are exercised
//! by the equivalence suites and produce identical results. The
//! `SHARON_PIPELINE` environment variable picks the default depth (see
//! [`default_pipeline_depth`]).
//!
//! Every hand-off buffer is **recycled**: each worker returns its consumed
//! row-index lists through a return ring drained by the routing side, and
//! batch bodies — kept in [`Arc`]s end to end, including the fill buffer —
//! return to an ingest-side pool once their `Arc` count drains, so the
//! pipelined steady state performs no batch-, list-, or `Arc`-granular
//! allocation.
//!
//! Shutdown is ordered: [`ShardedExecutor::finish`] closes the
//! ingest→router ring *first* — the ring's close-then-drain semantics are
//! the poison/flush message, so the router thread routes every in-flight
//! job before returning — and only then closes the worker rings, so every
//! [`ShardReport`] covers the complete stream.
//!
//! [`Engine`]: crate::engine::Engine

use crate::compile::{compile, CompileError};
use crate::engine::{EngineKind, ShardSlice};
use crate::partial::PartialResults;
use crate::processor::BatchProcessor;
use crate::results::ExecutorResults;
use crate::router::{BatchRouter, RouteBatch, RoutedRows, SplitConfig};
use crate::spsc;
use sharon_query::{SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventBatch, EventStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default number of events buffered before a batch is routed and fanned
/// out.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// Bounded depth of each worker's ring buffer (backpressure).
const RING_DEPTH: usize = 4;

/// Default ingest→router pipeline depth: double-buffered hand-off (the
/// router routes one batch while the ingest thread fills the next).
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// The pipeline depth to use when none is given explicitly: the
/// `SHARON_PIPELINE` environment variable if set (`0` = legacy in-line
/// routing on the ingest thread), [`DEFAULT_PIPELINE_DEPTH`] otherwise.
///
/// An unparsable `SHARON_PIPELINE` panics rather than silently running
/// the default mode — a bench matrix typo must not record numbers
/// attributed to a routing mode that never ran.
pub fn default_pipeline_depth() -> usize {
    match std::env::var("SHARON_PIPELINE") {
        Ok(s) => s
            .parse()
            .expect("SHARON_PIPELINE must be a pipeline depth (0 = in-line routing)"),
        Err(_) => DEFAULT_PIPELINE_DEPTH,
    }
}

/// One routed batch in flight to one worker: the shared columnar batch
/// plus this worker's per-scope row lists.
struct RoutedBatch {
    batch: Arc<EventBatch>,
    rows: RoutedRows,
}

/// One filled batch range in flight from the ingest thread to the router
/// thread (absolute rows `lo..hi` of the shared batch).
struct RouteJob {
    batch: Arc<EventBatch>,
    lo: usize,
    hi: usize,
}

/// What each worker reports back when its ring closes.
#[derive(Debug, Default)]
pub struct ShardReport {
    /// This shard's (disjoint) slice of the results.
    pub results: ExecutorResults,
    /// Per-window sub-aggregates of split (hot) groups — this shard's
    /// share only; [`ShardedExecutor::finish`] merges them across shards
    /// (see [`PartialResults`]). Empty for strategies that never split.
    pub partials: PartialResults,
    /// Events this shard matched, exact at drain time.
    pub events_matched: u64,
    /// Final state-size proxy (live cells / buffered events / matches).
    pub state_size: usize,
}

/// The stateful half of a shardable strategy, as run by one worker thread:
/// consumes pre-routed row lists of shared batches and reports its slice
/// of the results when the ring closes.
///
/// The routing side (a [`RouteBatch`] built from the same stateless
/// filters the processor applies) guarantees every listed row routes into
/// its scope, passes its predicates, and belongs to a group this shard
/// owns — the processor never re-evaluates that prefix.
pub trait ShardProcessor: Send {
    /// Process the pre-routed rows of `batch`, in row order per scope.
    /// Implementations hosting split groups must apply
    /// [`RoutedRows::splits`] notices before the rows and interleave
    /// [`RoutedRows::state_rows`] replicas in row order; processors that
    /// never split (the two-step baselines) receive empty notice and
    /// replica lists and can ignore both.
    fn process_routed(&mut self, batch: &EventBatch, rows: &RoutedRows);

    /// Events matched so far (published to the ingest side after every
    /// batch); zero for strategies that do not track it.
    fn events_matched(&self) -> u64 {
        0
    }

    /// Flush remaining windows and report this shard's results. Split
    /// groups' per-window sub-aggregates travel in
    /// [`ShardReport::partials`] (the drain half of the drain/merge
    /// contract); the default-empty field keeps non-splitting processors
    /// unchanged.
    fn finish(self: Box<Self>) -> ShardReport;
}

/// The online strategies' shard worker: one [`EngineKind`] per compiled
/// partition, each restricted to this shard's [`ShardSlice`].
struct EngineShard {
    engines: Vec<EngineKind>,
}

impl ShardProcessor for EngineShard {
    fn process_routed(&mut self, batch: &EventBatch, rows: &RoutedRows) {
        // apply split notices before any of the batch's rows, so the
        // owner's window closes switch to sub-aggregates in time
        for (scope, key) in &rows.splits {
            self.engines[*scope as usize].mark_split(key);
        }
        for (pi, engine) in self.engines.iter_mut().enumerate() {
            let full = &rows.per_part[pi];
            let state = &rows.state_rows[pi];
            if !full.is_empty() || !state.is_empty() {
                engine.process_routed_split(batch, full, state);
            }
        }
    }

    fn events_matched(&self) -> u64 {
        self.engines.iter().map(EngineKind::events_matched).sum()
    }

    fn finish(self: Box<Self>) -> ShardReport {
        let events_matched = self.engines.iter().map(EngineKind::events_matched).sum();
        let state_size = self
            .engines
            .iter()
            .map(|e| match e {
                EngineKind::Count(en) => en.cell_count(),
                EngineKind::Stats(en) => en.cell_count(),
            })
            .sum();
        let mut results = ExecutorResults::new();
        let mut partials = PartialResults::new();
        for engine in self.engines {
            let (r, p) = engine.finish_parts();
            results.merge(r);
            partials.absorb(p);
        }
        ShardReport {
            results,
            partials,
            events_matched,
            state_size,
        }
    }
}

/// The routing side's endpoints of one worker: the routed-batch ring in,
/// the recycled row lists out.
struct WorkerChannel {
    sender: spsc::Sender<RoutedBatch>,
    returns: spsc::Receiver<RoutedRows>,
}

/// The ingest side's handle on one worker thread.
struct WorkerHandle {
    handle: JoinHandle<ShardReport>,
    /// Events this shard has matched so far, published after every batch
    /// so [`ShardedExecutor::events_matched`] can report live progress.
    matched: Arc<AtomicU64>,
}

/// The complete routing stage: the router, the worker rings, and the
/// recycling pools. Runs on the ingest thread (in-line mode) or is moved
/// wholesale onto the dedicated router thread (pipelined mode); dropping
/// it closes every worker ring.
struct Fanout {
    router: Box<dyn RouteBatch>,
    channels: Vec<WorkerChannel>,
    /// Recycled row lists (refilled from the workers' return rings).
    rows_pool: Vec<RoutedRows>,
    /// Reused output slots of `route_range_into`.
    route_scratch: Vec<RoutedRows>,
}

impl Fanout {
    /// Route rows `lo..hi` of `batch` once and send each worker the
    /// shared batch plus its owned row-index lists.
    ///
    /// NOTE: `tests/alloc_regression.rs` (the pipelined steady-state
    /// test) mirrors this recycling protocol step by step on one thread
    /// to pin it at zero allocations deterministically — keep the two in
    /// sync when changing the pool/scratch handling here.
    fn dispatch(&mut self, batch: &Arc<EventBatch>, lo: usize, hi: usize) {
        let n_shards = self.channels.len();
        // drain the return rings: consumed row lists become routing slots
        let rows_cap = n_shards * (RING_DEPTH + 2);
        for ch in &mut self.channels {
            ch.returns.drain_into(&mut self.rows_pool, rows_cap);
        }
        let mut out = std::mem::take(&mut self.route_scratch);
        while out.len() < n_shards {
            out.push(self.rows_pool.pop().unwrap_or_default());
        }
        self.router.route_range_into(batch, lo, hi, &mut out);
        for (ch, rows) in self.channels.iter_mut().zip(out.drain(..)) {
            // a worker with no owned rows is not woken at all
            if rows.is_empty() {
                if self.rows_pool.len() < rows_cap {
                    self.rows_pool.push(rows);
                }
                continue;
            }
            let ok = ch
                .sender
                .send(RoutedBatch {
                    batch: Arc::clone(batch),
                    rows,
                })
                .is_ok();
            assert!(ok, "shard worker terminated early");
        }
        self.route_scratch = out;
    }
}

/// The ingest thread's handle on the dedicated router thread.
struct RouterThread {
    jobs: spsc::Sender<RouteJob>,
    /// Returns the [`Fanout`] at end-of-stream so `finish` controls when
    /// the worker rings close (after all in-flight jobs routed).
    handle: JoinHandle<Fanout>,
    /// Split-group count published by the router thread after each batch
    /// (trails ingestion by at most the in-flight pipeline jobs).
    split_groups: Arc<AtomicUsize>,
}

/// Where routing runs: on the ingest thread (depth 0) or on a dedicated
/// router thread behind a bounded job ring (depth ≥ 1).
enum IngestStage {
    Inline(Fanout),
    Pipelined(RouterThread),
}

/// A parallel executor that hash-partitions work across `N` worker shards.
///
/// [`ShardedExecutor::new`] compiles a workload into online engine shards
/// exactly like [`crate::Executor`]; [`ShardedExecutor::from_parts`]
/// hosts *any* [`ShardProcessor`] + [`RouteBatch`] pair, which is how the
/// two-step baselines run sharded. Events are accepted one at a time, in
/// row-form batches, or in columnar batches; the routing side routes each
/// buffered batch once and fans the per-shard row lists out over SPSC
/// rings — on the ingest thread or overlapped on a dedicated router
/// thread, depending on the pipeline depth (see the module docs).
/// [`ShardedExecutor::finish`] drains the pipeline and merges the
/// disjoint shard results.
pub struct ShardedExecutor {
    /// `None` only after `finish`/`Drop` tore the stage down.
    stage: Option<IngestStage>,
    workers: Vec<WorkerHandle>,
    /// The fill buffer. Kept in an [`Arc`] (uniquely owned between
    /// flushes) so a flush moves it into the pipeline without re-wrapping
    /// — the steady state never allocates an `Arc` block.
    buffer: Arc<EventBatch>,
    batch_size: usize,
    n_shards: usize,
    pipeline_depth: usize,
    /// Incremented by `flush` as batches are fanned out; see
    /// [`ShardedExecutor::events_sent`].
    events_sent: u64,
    /// In-flight batch bodies; entries whose `Arc` count drains back to 1
    /// are cleared and reused by the next flush.
    batch_pool: Vec<Arc<EventBatch>>,
    /// Set when the executor is dropped without `finish`: the router
    /// thread and the workers discard queued batches instead of draining
    /// them (a capped/aborted bench run must not keep burning CPU on
    /// detached threads).
    cancel: Arc<AtomicBool>,
}

impl ShardedExecutor {
    /// Compile `workload` under `plan` and spawn `n_shards` worker threads
    /// running the online engines.
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::with_batch_size(catalog, workload, plan, n_shards, DEFAULT_BATCH_SIZE)
    }

    /// The Non-Shared (A-Seq) sharded executor.
    pub fn non_shared(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::new(catalog, workload, &SharingPlan::non_shared(), n_shards)
    }

    /// [`ShardedExecutor::new`] with an explicit flush threshold.
    pub fn with_batch_size(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
    ) -> Result<Self, CompileError> {
        Self::with_split_config(
            catalog,
            workload,
            plan,
            n_shards,
            batch_size,
            SplitConfig::default(),
        )
    }

    /// [`ShardedExecutor::with_batch_size`] with explicit hot-group
    /// splitting tuning (see [`SplitConfig`]; tests use
    /// [`SplitConfig::eager`] to exercise the split path on small
    /// streams, benchmarks [`SplitConfig::disabled`] to measure the
    /// pinned baseline).
    pub fn with_split_config(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
        split: SplitConfig,
    ) -> Result<Self, CompileError> {
        Self::with_pipeline_depth(
            catalog,
            workload,
            plan,
            n_shards,
            batch_size,
            split,
            default_pipeline_depth(),
        )
    }

    /// The full-knob online constructor:
    /// [`ShardedExecutor::with_split_config`] plus an explicit ingest
    /// pipeline depth (`0` = in-line routing on the ingest thread,
    /// `n ≥ 1` = a dedicated router thread behind an `n`-deep job ring;
    /// see the module docs).
    pub fn with_pipeline_depth(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
        split: SplitConfig,
        pipeline_depth: usize,
    ) -> Result<Self, CompileError> {
        assert!(n_shards >= 1, "need at least one shard");
        let parts = compile(catalog, workload, plan)?;
        let shards = (0..n_shards)
            .map(|shard| {
                let engines: Vec<EngineKind> = parts
                    .iter()
                    .enumerate()
                    .map(|(pi, part)| {
                        let slice = ShardSlice {
                            index: shard as u32,
                            of: n_shards as u32,
                            owns_global: pi % n_shards == shard,
                        };
                        EngineKind::for_partition(part.clone(), Some(slice))
                    })
                    .collect();
                Box::new(EngineShard { engines }) as Box<dyn ShardProcessor>
            })
            .collect();
        let router = Box::new(BatchRouter::with_split(parts, n_shards, split));
        Ok(Self::from_parts_with(
            router,
            shards,
            batch_size,
            pipeline_depth,
        ))
    }

    /// Build the runtime from an explicit router + one processor per
    /// shard — the generic entry point that lets the sharded runtime host
    /// any strategy (the two-step baselines use it). The router's shard
    /// assignment must agree with how the processors partition their
    /// group state; both sides deriving from the same [`crate::RowFilter`]
    /// scopes guarantees that. The ingest pipeline depth defaults to
    /// [`default_pipeline_depth`].
    pub fn from_parts(
        router: Box<dyn RouteBatch>,
        shards: Vec<Box<dyn ShardProcessor>>,
        batch_size: usize,
    ) -> Self {
        Self::from_parts_with(router, shards, batch_size, default_pipeline_depth())
    }

    /// [`ShardedExecutor::from_parts`] with an explicit ingest pipeline
    /// depth (`0` = in-line routing).
    pub fn from_parts_with(
        router: Box<dyn RouteBatch>,
        shards: Vec<Box<dyn ShardProcessor>>,
        batch_size: usize,
        pipeline_depth: usize,
    ) -> Self {
        let n_shards = shards.len();
        assert!(n_shards >= 1, "need at least one shard");
        assert_eq!(
            router.n_shards(),
            n_shards,
            "router and processor shard counts must agree"
        );
        let batch_size = batch_size.max(1);
        let cancel = Arc::new(AtomicBool::new(false));

        let mut channels = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for (shard, processor) in shards.into_iter().enumerate() {
            let (sender, receiver) = spsc::ring::<RoutedBatch>(RING_DEPTH);
            // the return ring is sized so a worker's try_send can only hit
            // a full ring if the routing side stopped draining it
            let (mut return_tx, returns) = spsc::ring::<RoutedRows>(RING_DEPTH + 2);
            let matched = Arc::new(AtomicU64::new(0));
            let matched_pub = Arc::clone(&matched);
            let cancelled = Arc::clone(&cancel);
            let handle = std::thread::Builder::new()
                .name(format!("sharon-shard-{shard}"))
                .spawn(move || {
                    let mut processor = processor;
                    let mut receiver = receiver;
                    while let Some(RoutedBatch { batch, mut rows }) = receiver.recv() {
                        if cancelled.load(Ordering::Relaxed) {
                            continue; // aborted: drain without processing
                        }
                        processor.process_routed(&batch, &rows);
                        matched_pub.store(processor.events_matched(), Ordering::Relaxed);
                        drop(batch); // release the body before recycling rows
                        rows.clear();
                        // recycle the row lists; dropping them is fine if
                        // the return ring is (transiently) full
                        let _ = return_tx.try_send(rows);
                    }
                    processor.finish()
                })
                .expect("spawn shard worker thread");
            channels.push(WorkerChannel { sender, returns });
            workers.push(WorkerHandle { handle, matched });
        }

        let fanout = Fanout {
            router,
            channels,
            rows_pool: Vec::new(),
            route_scratch: Vec::new(),
        };
        let stage = if pipeline_depth == 0 {
            IngestStage::Inline(fanout)
        } else {
            let (jobs, mut job_rx) = spsc::ring::<RouteJob>(pipeline_depth);
            let split_groups = Arc::new(AtomicUsize::new(0));
            let splits_pub = Arc::clone(&split_groups);
            let cancelled = Arc::clone(&cancel);
            let handle = std::thread::Builder::new()
                .name("sharon-router".into())
                .spawn(move || {
                    let mut fanout = fanout;
                    while let Some(RouteJob { batch, lo, hi }) = job_rx.recv() {
                        if cancelled.load(Ordering::Relaxed) {
                            continue; // aborted: drain jobs without routing
                        }
                        fanout.dispatch(&batch, lo, hi);
                        splits_pub.store(fanout.router.split_groups(), Ordering::Relaxed);
                    }
                    // end of stream: hand the fan-out back so `finish`
                    // closes the worker rings only after every queued job
                    // was routed
                    fanout
                })
                .expect("spawn router thread");
            IngestStage::Pipelined(RouterThread {
                jobs,
                handle,
                split_groups,
            })
        };

        ShardedExecutor {
            stage: Some(stage),
            workers,
            buffer: Arc::new(EventBatch::with_capacity(batch_size, 2)),
            batch_size,
            n_shards,
            pipeline_depth,
            events_sent: 0,
            batch_pool: Vec::new(),
            cancel,
        }
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The ingest pipeline depth this runtime was built with (`0` =
    /// in-line routing).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Events fanned out to the routing stage so far (excluding the
    /// unflushed buffer).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Events that passed routing, predicates, grouping, and shard
    /// ownership, summed over shards. Workers publish after each batch,
    /// so this trails ingestion by at most the in-flight batches (it is
    /// exact after [`ShardedExecutor::finish_with_stats`], which reports
    /// the final count).
    pub fn events_matched(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.matched.load(Ordering::Relaxed))
            .sum()
    }

    /// The fill buffer (uniquely owned between flushes).
    fn buf(&mut self) -> &mut EventBatch {
        Arc::get_mut(&mut self.buffer).expect("fill buffer is uniquely owned between flushes")
    }

    /// Enqueue one event (flushed when the batch threshold is reached).
    pub fn process(&mut self, e: &Event) {
        self.buf().push_event(e);
        if self.buffer.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Enqueue a time-ordered batch of row-form events.
    pub fn process_batch(&mut self, events: &[Event]) {
        for e in events {
            self.buf().push_event(e);
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
    }

    /// Enqueue a time-ordered columnar batch (any size; it is re-chunked
    /// to the flush threshold internally). Copies the rows into the
    /// internal buffer; callers that already own an [`Arc`]-shared batch
    /// should prefer the zero-copy [`ShardedExecutor::process_shared`].
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        let mut lo = 0;
        while lo < batch.len() {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            let hi = (lo + free).min(batch.len());
            self.buf().extend_from_range(batch, lo, hi);
            lo = hi;
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
    }

    /// Zero-copy ingestion of an [`Arc`]-shared columnar batch: routes
    /// consecutive row ranges of `batch` directly (one flush-threshold
    /// chunk at a time, preserving pipelining) and ships workers the
    /// shared batch plus absolute row indexes — the batch is never copied.
    ///
    /// Events must be time-ordered relative to everything already
    /// ingested; any buffered rows are flushed first to preserve order.
    pub fn process_shared(&mut self, batch: &Arc<EventBatch>) {
        self.flush();
        let mut lo = 0;
        while lo < batch.len() {
            let hi = (lo + self.batch_size).min(batch.len());
            self.dispatch_range(batch, lo, hi);
            lo = hi;
        }
    }

    /// Drain a stream through the executor.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        loop {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            if stream.next_batch_columnar(free, self.buf()) == 0 {
                break;
            }
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
        self
    }

    /// A cleared batch body for the next fill: a drained in-flight batch
    /// when one is available (its `Arc` count fell back to 1), a fresh
    /// allocation otherwise.
    fn take_spare_batch(&mut self) -> Arc<EventBatch> {
        for i in 0..self.batch_pool.len() {
            if Arc::strong_count(&self.batch_pool[i]) == 1 {
                let mut arc = self.batch_pool.swap_remove(i);
                Arc::get_mut(&mut arc).expect("strong count was 1").clear();
                return arc;
            }
        }
        Arc::new(EventBatch::with_capacity(self.batch_size, 2))
    }

    /// Hand the buffered batch to the routing stage (in-line: route and
    /// fan out now; pipelined: enqueue for the router thread).
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let spare = self.take_spare_batch();
        let batch = std::mem::replace(&mut self.buffer, spare);
        let len = batch.len();
        self.dispatch_range(&batch, 0, len);
        // keep the body in the pool for reuse once its consumers drop it;
        // the cap covers the worker rings plus the router pipeline so a
        // slow shard cannot make the pool grow without bound
        if self.batch_pool.len() < 2 * RING_DEPTH + self.pipeline_depth {
            self.batch_pool.push(batch);
        }
    }

    /// Send rows `lo..hi` of `batch` through the routing stage.
    fn dispatch_range(&mut self, batch: &Arc<EventBatch>, lo: usize, hi: usize) {
        self.events_sent += (hi - lo) as u64;
        match self.stage.as_mut().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.dispatch(batch, lo, hi),
            IngestStage::Pipelined(rt) => {
                // blocks when `pipeline_depth` jobs are already in flight —
                // the pipeline's backpressure
                let ok = rt
                    .jobs
                    .send(RouteJob {
                        batch: Arc::clone(batch),
                        lo,
                        hi,
                    })
                    .is_ok();
                assert!(ok, "router thread terminated early");
            }
        }
    }

    /// Flush remaining events, stop the workers, and merge their results
    /// in deterministic shard order. Shard result sets are disjoint (each
    /// non-split group is owned by exactly one shard), so that merge is
    /// exact; split (hot) groups report per-window **sub-aggregates**
    /// instead, which the merge step combines with the aggregate-kind
    /// merge before projecting final values (see
    /// [`crate::PartialResults`]).
    pub fn finish(self) -> ExecutorResults {
        self.finish_with_stats().0
    }

    /// [`ShardedExecutor::finish`] plus runtime statistics:
    /// `(results, events_matched, summed state-size proxy)`.
    pub fn finish_with_stats(mut self) -> (ExecutorResults, u64, usize) {
        self.flush();
        // teardown order is the flush contract: close the ingest→router
        // ring FIRST (close-then-drain is the poison message — the router
        // thread routes every queued job before returning its fan-out),
        // and only THEN drop the fan-out, closing the worker rings — so
        // no routed batch is lost and every ShardReport is complete
        match self.stage.take().expect("finish runs once") {
            IngestStage::Inline(fanout) => drop(fanout),
            IngestStage::Pipelined(rt) => {
                drop(rt.jobs);
                let fanout = rt.handle.join().expect("router thread panicked");
                drop(fanout);
            }
        }
        // all rings are closed: join the shards in deterministic order
        let workers = std::mem::take(&mut self.workers);
        let mut results = ExecutorResults::new();
        let mut partials = PartialResults::new();
        let mut matched = 0u64;
        let mut state = 0usize;
        for worker in workers {
            let report = worker.handle.join().expect("shard worker panicked");
            results.merge(report.results);
            partials.absorb(report.partials);
            matched += report.events_matched;
            state += report.state_size;
        }
        // the merge step: combine split groups' sub-aggregates across
        // shards, then project them into the final result set
        partials.finalize_into(&mut results);
        (results, matched, state)
    }

    /// Number of groups the router has split across shards so far. In
    /// pipelined mode this is the router thread's last published count,
    /// which trails ingestion by at most the in-flight pipeline jobs.
    pub fn split_groups(&self) -> usize {
        match self.stage.as_ref().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.router.split_groups(),
            IngestStage::Pipelined(rt) => rt.split_groups.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ShardedExecutor {
    /// Dropping without [`ShardedExecutor::finish`] *aborts* the run: the
    /// router thread and the workers are told to discard queued batches
    /// (they only complete the item currently in flight) and are joined,
    /// so an abandoned executor — e.g. a capped bench run reporting DNF —
    /// never leaves detached threads grinding through polynomial two-step
    /// work behind the next measurement.
    fn drop(&mut self) {
        let Some(stage) = self.stage.take() else {
            return; // finished normally: threads already joined
        };
        self.cancel.store(true, Ordering::Relaxed);
        match stage {
            IngestStage::Inline(fanout) => drop(fanout),
            IngestStage::Pipelined(rt) => {
                drop(rt.jobs); // close the job ring
                               // joining returns the fan-out, whose drop closes the
                               // worker rings
                let _ = rt.handle.join();
            }
        }
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.handle.join();
        }
    }
}

impl BatchProcessor for ShardedExecutor {
    fn process_event(&mut self, e: &Event) {
        self.process(e);
    }

    fn process_events(&mut self, events: &[Event]) {
        self.process_batch(events);
    }

    fn process_columnar(&mut self, batch: &EventBatch) {
        ShardedExecutor::process_columnar(self, batch);
    }

    fn events_matched(&self) -> u64 {
        ShardedExecutor::events_matched(self)
    }

    /// Zero: the state lives on the worker threads (the exact total is
    /// reported by [`ShardedExecutor::finish_with_stats`]).
    fn state_size(&self) -> usize {
        0
    }

    fn finish(self: Box<Self>) -> (ExecutorResults, u64) {
        let (results, matched, _state) = (*self).finish_with_stats();
        (results, matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use sharon_query::{parse_workload, QueryId};
    use sharon_types::{GroupKey, Schema, Timestamp, Value};

    fn grouped_workload() -> (Catalog, Workload) {
        let mut c = Catalog::new();
        c.register_with_schema("A", Schema::new(["g", "v"]));
        c.register_with_schema("B", Schema::new(["g", "v"]));
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN SUM(B.v) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        (c, w)
    }

    fn stream(c: &Catalog, n: u64, groups: i64) -> Vec<Event> {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        // consecutive (A, B) pairs share a group, so matches exist for any
        // group cardinality; pairs from different groups interleave freely
        (0..n)
            .map(|i| {
                let ty = if i % 2 == 0 { a } else { b };
                Event::with_attrs(
                    ty,
                    Timestamp(i),
                    vec![
                        Value::Int((i / 2) as i64 % groups),
                        Value::Int((i % 7) as i64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn matches_sequential_across_shard_counts() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 4000, 37);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();
        assert!(!want.is_empty());

        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedExecutor::non_shared(&c, &w, shards).unwrap();
            for chunk in events.chunks(97) {
                sharded.process_batch(chunk);
            }
            let (got, matched, _state) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "{shards} shards diverge from sequential"
            );
            assert_eq!(matched, want_matched, "{shards} shards: matched count");
        }
    }

    #[test]
    fn pipelined_and_inline_routing_agree() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 5000, 23);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        for depth in [0usize, 1, 2, 4] {
            let mut sharded = ShardedExecutor::with_pipeline_depth(
                &c,
                &w,
                &plan,
                3,
                128,
                SplitConfig::default(),
                depth,
            )
            .unwrap();
            assert_eq!(sharded.pipeline_depth(), depth);
            sharded.process_batch(&events);
            let (got, matched, _) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "pipeline depth {depth} diverges from sequential"
            );
            assert_eq!(matched, want_matched, "depth {depth}: matched count");
        }
    }

    #[test]
    fn columnar_ingestion_matches_row_form() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 3000, 19);
        let batch = EventBatch::from_events(&events);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        // one oversized columnar push: re-chunked internally
        let mut sharded = ShardedExecutor::non_shared(&c, &w, 3).unwrap();
        sharded.process_columnar(&batch);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));

        // the zero-copy shared-batch path agrees too (mixed with a few
        // buffered row-form events first, to cover the order-preserving
        // pre-flush)
        let (head, tail) = events.split_at(100);
        let shared = Arc::new(EventBatch::from_events(tail));
        let mut sharded = ShardedExecutor::non_shared(&c, &w, 3).unwrap();
        sharded.process_batch(head);
        sharded.process_shared(&shared);
        let (got, matched, _) = sharded.finish_with_stats();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(matched > 0);
    }

    #[test]
    fn global_partitions_are_owned_once() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 20 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events: Vec<Event> = (0..100)
            .map(|i| Event::new(if i % 2 == 0 { a } else { b }, Timestamp(i)))
            .collect();

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let mut sharded = ShardedExecutor::non_shared(&c, &w, 4).unwrap();
        sharded.process_batch(&events);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(got.total_count(QueryId(0)) > 0);
        assert_eq!(
            got.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some(),
            want.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some()
        );
    }

    #[test]
    fn per_event_ingestion_flushes_on_threshold() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 500, 5);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        let mut sharded = ShardedExecutor::with_batch_size(&c, &w, &plan, 2, 64).unwrap();
        for e in &events {
            sharded.process(e);
        }
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }

    #[test]
    fn drop_without_finish_aborts_and_joins_workers() {
        // dropping mid-stream must not hang and must not leave router or
        // worker threads draining queued work (the bench DNF path) — in
        // both routing modes
        let (c, w) = grouped_workload();
        let events = stream(&c, 2000, 11);
        let plan = SharingPlan::non_shared();
        for depth in [0usize, 2] {
            let mut sharded = ShardedExecutor::with_pipeline_depth(
                &c,
                &w,
                &plan,
                3,
                64,
                SplitConfig::default(),
                depth,
            )
            .unwrap();
            sharded.process_batch(&events);
            drop(sharded); // joins; a deadlock here fails the test by timeout
        }
    }

    #[test]
    fn flush_recycles_batch_bodies_and_row_lists() {
        // many small flushes: after the pipeline warms up, batch bodies
        // and row lists circulate through the pools instead of being
        // reallocated (asserted indirectly: results stay exact and the
        // pools are non-empty mid-run)
        let (c, w) = grouped_workload();
        let events = stream(&c, 3000, 7);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        let mut sharded = ShardedExecutor::with_batch_size(&c, &w, &plan, 2, 32).unwrap();
        sharded.process_batch(&events);
        assert!(
            !sharded.batch_pool.is_empty(),
            "flushed batch bodies are pooled for reuse"
        );
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }

    #[test]
    fn env_override_picks_the_default_depth() {
        // no env manipulation (tests run in parallel): just pin the
        // compiled-in default and the explicit-constructor contract
        assert_eq!(DEFAULT_PIPELINE_DEPTH, 2);
        let (c, w) = grouped_workload();
        let sharded = ShardedExecutor::non_shared(&c, &w, 2).unwrap();
        assert_eq!(sharded.pipeline_depth(), default_pipeline_depth());
    }
}
