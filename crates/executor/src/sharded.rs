//! The sharded parallel runtime with a **pipelined ingest stage** and a
//! **durability tier** (consistent checkpoints, crash-exact resume, fault
//! injection).
//!
//! `GROUP BY` partitions are independent by construction — "a result is
//! returned per group and per window" (Definition 2) and no engine state is
//! ever shared across groups — and compiled partitions (sharing-signature
//! classes, §7.2) never interact either. Every strategy in the system is
//! therefore embarrassingly parallel along two axes, and
//! [`ShardedExecutor`] exploits both:
//!
//! * **group axis** — every worker shard owns, for each routing scope,
//!   the disjoint slice of groups whose key hash lands on its index (see
//!   [`crate::engine::ShardSlice`]);
//! * **scope axis** — the global (no `GROUP BY`) rows of scope `p` are
//!   assigned to worker `p mod N`, spreading independent scopes over the
//!   shards.
//!
//! The runtime is generic over *what* the workers run: each worker hosts
//! one [`ShardProcessor`] — a vector of online [`Engine`]s for the
//! Sharon/Greedy/A-Seq strategies, or a whole two-step baseline
//! (Flink-like, SPASS-like) for the figure-13 comparisons — so sharding is
//! a pure work partition for *any* strategy: shard results are disjoint
//! and merge exactly. [`ShardedExecutor::finish`] merges them in
//! deterministic shard order; determinism tests assert `semantically_eq`
//! with the sequential path for every shard count and every strategy.
//!
//! Events are ingested into a columnar [`EventBatch`] and **routed once**:
//! the routing side runs the stateless prefix of the event path — routing,
//! predicate evaluation, group-key hashing — a single time per event (see
//! [`crate::router::BatchRouter`]) and ships each worker the [`Arc`]-shared
//! batch plus the row-index lists it owns. Workers consume their routed
//! rows and never evaluate predicates or extract keys for rows they do not
//! own. Transfers ride bounded SPSC ring buffers ([`crate::spsc`]) — one
//! per worker, no shared channel state — giving backpressure against slow
//! shards without cross-thread contention.
//!
//! # Pipelined ingest
//!
//! Routing is the serial stage of the runtime: with in-line routing the
//! ingest thread routes batch `k + 1` only after every worker accepted
//! batch `k`, so per Amdahl the routing core caps shard scaling on
//! query-heavy workloads. With a **pipeline depth ≥ 1** (the default,
//! [`DEFAULT_PIPELINE_DEPTH`]), a dedicated *router thread* owns the
//! [`RouteBatch`] and the worker rings, and the ingest thread hands it
//! filled batches over one more bounded SPSC ring (capacity = the
//! pipeline depth, so the ring itself is the backpressure): the router
//! routes batch `k + 1` while the shard workers execute batch `k` and the
//! ingest thread buffers batch `k + 2`. Depth `0` selects the legacy
//! in-line mode (routing on the ingest thread); both modes are exercised
//! by the equivalence suites and produce identical results. The
//! `SHARON_PIPELINE` environment variable picks the default depth (see
//! [`default_pipeline_depth`]).
//!
//! # The routing plane
//!
//! At high shard counts and many *distinct* scopes the one router thread
//! becomes the new serial stage. Scopes are independent by construction
//! (per-scope selection bitmaps, per-scope row-index lists), so routing
//! parallelizes cleanly along the scope axis: with `R > 1` routers
//! ([`ShardedOptions::routers`], the `SHARON_ROUTERS` knob, see
//! [`default_routers`]) the compiled scopes are partitioned across `R`
//! router threads by a **cost estimate** (clause count × routed-type
//! density, see [`crate::router::split_router_plane`]) — not naive
//! round-robin — and each router owns its own [`RouteBatch`] state
//! (hotness counters, split set, watermark frontier) plus its own
//! per-worker SPSC rings. The ingest stage fans every filled
//! [`Arc<EventBatch>`] range to *all* routers over per-router job rings;
//! each [`RoutedRows`] chunk carries the ingest **batch sequence number**
//! ([`RoutedRows::seq`]), and every worker reads its `R` lanes in
//! lockstep — one chunk per lane per batch (multi-router planes send
//! empty chunks too, precisely so the lanes never skew) — merging them
//! with [`prepare_step`] so the applied union is indistinguishable from
//! a single router's chunk: split notices first, rows in lane order, the
//! watermark advanced exactly once with the **min over the per-router
//! frontiers**, unsplit hand-backs last. Results are bit-identical to
//! `R = 1`. Checkpoint barriers fan out to every router and the manifest
//! carries `R` router-state segments; resume rebuilds the identical
//! scope assignment (the cost partition is a pure function of the
//! compiled scopes). A multi-router plane requires a pipelined ingest
//! stage (`pipeline_depth ≥ 1`) — there is nothing to parallelize
//! in-line on the ingest thread.
//!
//! Every hand-off buffer is **recycled**: each worker returns its consumed
//! row-index lists through a return ring drained by the routing side, and
//! batch bodies — kept in [`Arc`]s end to end, including the fill buffer —
//! return to an ingest-side pool once their `Arc` count drains, so the
//! pipelined steady state performs no batch-, list-, or `Arc`-granular
//! allocation. With checkpointing disabled the durability hooks reduce to
//! two integer checks per batch — the zero-allocation steady state is
//! unchanged (pinned by `tests/alloc_regression.rs`).
//!
//! # Durability
//!
//! With a [`CheckpointConfig`] (see [`ShardedOptions::checkpoint`], or the
//! `SHARON_CHECKPOINT` knob via [`ShardedOptions::from_env`]) the runtime
//! takes a **consistent checkpoint** every `interval_batches` ingested
//! batches: a [`CheckpointBarrier`] message flows through the *same*
//! rings as the data — ingest→router job ring first, then every worker
//! ring — so each shard deposits its serialized engine state after
//! exactly the batches routed before the barrier. No pause, no global
//! lock: the barrier rides the pipeline. The router deposits its own
//! split-tracker state, and the ingest thread writes the segments plus a
//! checksummed manifest through [`CheckpointStore`] (segments first,
//! manifest renamed into place last, so a torn checkpoint is never
//! *latest*). [`ShardedExecutor::resume`] rebuilds the runtime from the
//! latest complete checkpoint and returns the stream offset to replay
//! from — results after replay are identical to an uninterrupted run.
//!
//! Failures are **contained and loud**: a worker or router panic flips
//! the shared cancel flag (so every other thread drains instead of
//! grinding on), and [`ShardedExecutor::finish`] fails fast with an error
//! naming the dead thread instead of silently merging partial results.
//! [`FaultPlan`] (the `SHARON_FAULT` knob) injects exactly these failures
//! — dropped runs, worker panics, process aborts — at chosen batch
//! indices, which is how the recovery suites earn their confidence.
//!
//! Shutdown is ordered: [`ShardedExecutor::finish`] closes the
//! ingest→router ring *first* — the ring's close-then-drain semantics are
//! the poison/flush message, so the router thread routes every in-flight
//! job before returning — and only then closes the worker rings, so every
//! [`ShardReport`] covers the complete stream.
//!
//! [`Engine`]: crate::engine::Engine

use crate::checkpoint::{
    BarrierRef, CheckpointBarrier, CheckpointConfig, CheckpointError, CheckpointStore, FaultPlan,
    StateError, StateReader, StateWriter,
};
use crate::compile::{compile, CompileError, CompiledPartition};
use crate::engine::{EngineKind, ShardSlice};
use crate::partial::PartialResults;
use crate::processor::BatchProcessor;
use crate::results::ExecutorResults;
use crate::router::{split_router_plane, RouteBatch, RoutedRows, SplitConfig};
use crate::scan::ScanCounters;
use crate::spill::SpillConfig;
use crate::spsc;
use sharon_query::{SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventBatch, EventStream, Timestamp};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default number of events buffered before a batch is routed and fanned
/// out.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// Bounded depth of each worker's ring buffer (backpressure).
const RING_DEPTH: usize = 4;

/// Default ingest→router pipeline depth: double-buffered hand-off (the
/// router routes one batch while the ingest thread fills the next).
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// The pipeline depth to use when none is given explicitly: the
/// `SHARON_PIPELINE` environment variable if set (`0` = legacy in-line
/// routing on the ingest thread), [`DEFAULT_PIPELINE_DEPTH`] otherwise.
///
/// An unparsable `SHARON_PIPELINE` panics rather than silently running
/// the default mode — a bench matrix typo must not record numbers
/// attributed to a routing mode that never ran.
pub fn default_pipeline_depth() -> usize {
    match std::env::var("SHARON_PIPELINE") {
        Ok(s) => s
            .parse()
            .expect("SHARON_PIPELINE must be a pipeline depth (0 = in-line routing)"),
        Err(_) => DEFAULT_PIPELINE_DEPTH,
    }
}

/// Default number of router threads in the routing plane: one — the
/// classic single-router pipeline.
pub const DEFAULT_ROUTERS: usize = 1;

/// The router-thread count to use when none is given explicitly: the
/// `SHARON_ROUTERS` environment variable if set, [`DEFAULT_ROUTERS`]
/// otherwise.
///
/// An unparsable or zero `SHARON_ROUTERS` panics rather than silently
/// running a different plane — same fatal-parse policy as
/// `SHARON_PIPELINE` (a bench matrix typo must not record numbers
/// attributed to a routing plane that never ran).
pub fn default_routers() -> usize {
    match std::env::var("SHARON_ROUTERS") {
        Ok(s) => {
            let n: usize = s
                .parse()
                .expect("SHARON_ROUTERS must be a router-thread count (>= 1)");
            assert!(
                n >= 1,
                "SHARON_ROUTERS must be >= 1 (a plane needs a router)"
            );
            n
        }
        Err(_) => DEFAULT_ROUTERS,
    }
}

/// One routed batch in flight to one worker: the shared columnar batch
/// plus this worker's per-scope row lists.
struct RoutedBatch {
    batch: Arc<EventBatch>,
    rows: RoutedRows,
}

/// One filled batch range in flight from the ingest thread to a router
/// thread (absolute rows `lo..hi` of the shared batch). `seq` is the
/// ingest batch sequence number, stamped onto every [`RoutedRows`] chunk
/// so workers can merge the plane's ring streams deterministically.
struct RouteJob {
    batch: Arc<EventBatch>,
    lo: usize,
    hi: usize,
    seq: u64,
}

/// What a worker ring carries: routed data, or a checkpoint barrier that
/// must be answered *in stream order* (after every batch sent before it —
/// that ordering is the whole consistency argument).
enum WorkerMsg {
    Batch(RoutedBatch),
    Barrier(BarrierRef),
    /// A result-harvest barrier: deposit the results emitted so far
    /// (serialized) into the barrier, leaving window state untouched.
    /// Same in-band ordering contract as `Barrier`.
    Harvest(BarrierRef),
}

/// What the ingest→router job rings carry (same in-band ordering; the
/// ingest thread sends every message to **every** router's ring, so all
/// lanes of a worker observe the same message sequence).
enum RouterMsg {
    Route(RouteJob),
    Barrier(BarrierRef),
    Harvest(BarrierRef),
    /// A synchronized state probe: the router deposits its live
    /// split-group count into its slot without touching the worker rings
    /// (backs [`ShardedExecutor::split_snapshot`]).
    Sync(Arc<SplitProbe>),
}

/// A synchronized probe of the routing plane's split-group counts: every
/// router thread deposits its count in its own slot, in-band behind all
/// previously queued jobs, and the ingest thread sums once all slots are
/// filled.
struct SplitProbe {
    slots: Mutex<Vec<Option<usize>>>,
    filled: Condvar,
}

impl SplitProbe {
    fn new(n_routers: usize) -> Self {
        SplitProbe {
            slots: Mutex::new(vec![None; n_routers]),
            filled: Condvar::new(),
        }
    }

    /// Deposit router `index`'s live count.
    fn fill(&self, index: usize, count: usize) {
        let mut slots = self.slots.lock().unwrap();
        slots[index] = Some(count);
        self.filled.notify_all();
    }

    /// Sum the deposited counts once every router answered. A cancelled
    /// run returns the sum of whatever was deposited — a dead router
    /// will never answer, and a probe must not hang a failing run.
    fn wait_sum(&self, cancel: &AtomicBool) -> usize {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if slots.iter().all(Option::is_some) {
                return slots.iter().map(|s| s.unwrap_or(0)).sum();
            }
            if cancel.load(Ordering::Relaxed) {
                return slots.iter().flatten().sum();
            }
            let (guard, _timeout) = self
                .filled
                .wait_timeout(slots, std::time::Duration::from_millis(20))
                .unwrap();
            slots = guard;
        }
    }
}

/// Live work tallies of one router thread, shared with the ingest side
/// (see [`ShardedExecutor::router_stats`]).
#[derive(Default)]
struct RouterCounters {
    batches_routed: AtomicU64,
    stall_waits: AtomicU64,
    scope_scans: AtomicU64,
}

/// A snapshot of one router thread's work tallies (see
/// [`ShardedExecutor::router_stats`]). The many-distinct-scope bench
/// asserts the plane is balanced by comparing `scope_scans` across
/// routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Batches this router routed. Every router routes every batch, so
    /// the counts agree across the plane once ingestion is flushed.
    pub batches_routed: u64,
    /// Times this router found a worker ring full and blocked until the
    /// worker drained it.
    pub stall_waits: u64,
    /// Scope scans performed: this router's *local* scope count × its
    /// routed batches — the per-router share of the plane-wide
    /// [`sharon_metrics::router_scope_scans`] dedup invariant.
    pub scope_scans: u64,
}

/// Armed at the top of every runtime thread: if the thread unwinds, flip
/// the shared cancel flag so the rest of the runtime drains instead of
/// blocking on (or burning CPU for) a peer that will never answer.
struct CancelOnPanic(Arc<AtomicBool>);

impl Drop for CancelOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// What each worker reports back when its ring closes.
#[derive(Debug, Default)]
pub struct ShardReport {
    /// This shard's (disjoint) slice of the results.
    pub results: ExecutorResults,
    /// Per-window sub-aggregates of split (hot) groups — this shard's
    /// share only; [`ShardedExecutor::finish`] merges them across shards
    /// (see [`PartialResults`]). Empty for strategies that never split.
    pub partials: PartialResults,
    /// Events this shard matched, exact at drain time.
    pub events_matched: u64,
    /// Final state-size proxy (live cells / buffered events / matches).
    pub state_size: usize,
}

/// The stateful half of a shardable strategy, as run by one worker thread:
/// consumes pre-routed row lists of shared batches and reports its slice
/// of the results when the ring closes.
///
/// The routing side (a [`RouteBatch`] built from the same stateless
/// filters the processor applies) guarantees every listed row routes into
/// its scope, passes its predicates, and belongs to a group this shard
/// owns — the processor never re-evaluates that prefix.
pub trait ShardProcessor: Send {
    /// Process the pre-routed rows of `batch`, in row order per scope.
    /// Implementations hosting split groups must apply
    /// [`RoutedRows::splits`] notices before the rows, interleave
    /// [`RoutedRows::state_rows`] replicas in row order, and apply
    /// [`RoutedRows::unsplits`] hand-backs after the rows; processors that
    /// never split (the two-step baselines) receive empty notice and
    /// replica lists and can ignore all three.
    fn process_routed(&mut self, batch: &EventBatch, rows: &RoutedRows);

    /// Events matched so far (published to the ingest side after every
    /// batch); zero for strategies that do not track it.
    fn events_matched(&self) -> u64 {
        0
    }

    /// Serialize this shard's complete engine state for a checkpoint
    /// barrier, or `None` if the strategy does not support checkpointing
    /// (the default — the barrier then fails with a clear
    /// [`CheckpointError::Mismatch`] instead of writing a lying manifest).
    fn save_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Restore state written by [`ShardProcessor::save_state`]. The
    /// default rejects, matching the default `save_state`.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let _ = bytes;
        Err(StateError::Corrupt(
            "shard processor does not support state restore",
        ))
    }

    /// Serialize and *remove* the results emitted so far (an
    /// [`ExecutorResults`] image written with
    /// [`ExecutorResults::save_state`]), leaving open-window state in
    /// place — the epoch drain behind the session layer's
    /// `drain_results`. `None` (the default) means the strategy cannot
    /// harvest mid-stream; the harvest barrier then fails instead of
    /// returning an empty result set that lies.
    fn take_results(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Flush remaining windows and report this shard's results. Split
    /// groups' per-window sub-aggregates travel in
    /// [`ShardReport::partials`] (the drain half of the drain/merge
    /// contract); the default-empty field keeps non-splitting processors
    /// unchanged.
    fn finish(self: Box<Self>) -> ShardReport;
}

/// The online strategies' shard worker: one [`EngineKind`] per compiled
/// partition, each restricted to this shard's [`ShardSlice`].
struct EngineShard {
    engines: Vec<EngineKind>,
}

impl ShardProcessor for EngineShard {
    fn process_routed(&mut self, batch: &EventBatch, rows: &RoutedRows) {
        // apply split notices before any of the batch's rows, so the
        // owner's window closes switch to sub-aggregates in time
        for (scope, key) in &rows.splits {
            self.engines[*scope as usize].mark_split(key);
        }
        for (pi, engine) in self.engines.iter_mut().enumerate() {
            let full = &rows.per_part[pi];
            let state = &rows.state_rows[pi];
            if !full.is_empty() || !state.is_empty() {
                engine.process_routed_split(batch, full, state);
            }
        }
        // event-time mode: the router stamped every chunk with the merged
        // cross-shard frontier, so each engine's watermark advances here —
        // after the chunk's rows were admitted, before the hand-backs (a
        // no-op for arrival-time runs, where no gate is configured)
        for engine in &mut self.engines {
            engine.advance_watermark(rows.frontier);
        }
        // cool-down hand-backs apply after the rows: the batch was still
        // routed split, the next one no longer is
        for (scope, key) in &rows.unsplits {
            self.engines[*scope as usize].mark_unsplit(key);
        }
    }

    fn events_matched(&self) -> u64 {
        self.engines.iter().map(EngineKind::events_matched).sum()
    }

    fn save_state(&mut self) -> Option<Vec<u8>> {
        let mut w = StateWriter::new();
        w.seq_len(self.engines.len());
        for engine in &mut self.engines {
            engine.save_state(&mut w);
        }
        Some(w.into_bytes())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        if r.seq_len()? != self.engines.len() {
            return Err(StateError::Corrupt("engine count per shard"));
        }
        for engine in &mut self.engines {
            engine.load_state(&mut r)?;
        }
        if !r.is_exhausted() {
            return Err(StateError::Corrupt("trailing engine state bytes"));
        }
        Ok(())
    }

    fn take_results(&mut self) -> Option<Vec<u8>> {
        let mut out = ExecutorResults::new();
        for engine in &mut self.engines {
            out.merge(engine.take_results());
        }
        let mut w = StateWriter::new();
        out.save_state(&mut w);
        Some(w.into_bytes())
    }

    fn finish(mut self: Box<Self>) -> ShardReport {
        // drain the event-time gates first: buffered rows still count
        // toward the matched and state-size stats read below
        for engine in &mut self.engines {
            engine.flush_pending();
        }
        let events_matched = self.engines.iter().map(EngineKind::events_matched).sum();
        let state_size = self
            .engines
            .iter()
            .map(|e| match e {
                EngineKind::Count(en) => en.cell_count(),
                EngineKind::Stats(en) => en.cell_count(),
            })
            .sum();
        let mut results = ExecutorResults::new();
        let mut partials = PartialResults::new();
        for engine in self.engines {
            let (r, p) = engine.finish_parts();
            results.merge(r);
            partials.absorb(p);
        }
        ShardReport {
            results,
            partials,
            events_matched,
            state_size,
        }
    }
}

/// The routing side's endpoints of one worker lane: the routed-batch
/// ring in, the recycled row lists out.
struct WorkerChannel {
    sender: spsc::Sender<WorkerMsg>,
    returns: spsc::Receiver<RoutedRows>,
}

/// The worker side's endpoints of one router's lane: the routed-batch
/// ring out of that router, and the return ring its consumed row lists
/// recycle through. A worker holds one lane per router, in router
/// order, and reads them in lockstep (one message per lane per step).
struct WorkerLane {
    rx: spsc::Receiver<WorkerMsg>,
    ret: spsc::Sender<RoutedRows>,
}

/// The ingest side's handle on one worker thread.
struct WorkerHandle {
    handle: JoinHandle<ShardReport>,
    /// Events this shard has matched so far, published after every batch
    /// so [`ShardedExecutor::events_matched`] can report live progress.
    matched: Arc<AtomicU64>,
}

/// One router's complete routing stage: its [`RouteBatch`] (owning a
/// disjoint subset of the compiled scopes), its own worker rings (one
/// lane per worker), and its recycling pools. Runs on the ingest thread
/// (in-line mode, single-router planes only) or is moved wholesale onto
/// a dedicated router thread (pipelined mode); dropping it closes this
/// router's lane of every worker.
struct Fanout {
    router: Box<dyn RouteBatch>,
    /// This router's index within the routing plane — its lane order at
    /// the workers and its slot in checkpoint barriers.
    router_index: usize,
    /// `true` in a multi-router plane: every worker receives one chunk
    /// per batch — even an empty one — so the per-worker lanes stay in
    /// lockstep for the sequence-number merge. A single router keeps the
    /// classic skip-empty fast path (bit-identical to the pre-plane
    /// runtime).
    always_send: bool,
    channels: Vec<WorkerChannel>,
    /// Recycled row lists (refilled from the workers' return rings).
    rows_pool: Vec<RoutedRows>,
    /// Reused output slots of `route_range_into`.
    route_scratch: Vec<RoutedRows>,
    /// Work tallies shared with the ingest side.
    counters: Arc<RouterCounters>,
}

impl Fanout {
    /// Route rows `lo..hi` of `batch` once against this router's scopes
    /// and send each worker the shared batch plus its owned row-index
    /// lists, stamped with the ingest sequence number `seq`. A worker
    /// whose ring closed early (its thread panicked) flips `cancel`
    /// instead of cascading the panic into the routing side — `finish`
    /// reports the dead shard.
    ///
    /// NOTE: `tests/alloc_regression.rs` (the pipelined steady-state
    /// test) mirrors this recycling protocol step by step on one thread
    /// to pin it at zero allocations deterministically — keep the two in
    /// sync when changing the pool/scratch handling here.
    fn dispatch(
        &mut self,
        batch: &Arc<EventBatch>,
        lo: usize,
        hi: usize,
        seq: u64,
        cancel: &AtomicBool,
    ) {
        let n_shards = self.channels.len();
        // drain the return rings: consumed row lists become routing slots
        let rows_cap = n_shards * (RING_DEPTH + 2);
        for ch in &mut self.channels {
            ch.returns.drain_into(&mut self.rows_pool, rows_cap);
        }
        let mut out = std::mem::take(&mut self.route_scratch);
        while out.len() < n_shards {
            out.push(self.rows_pool.pop().unwrap_or_default());
        }
        self.router.route_range_into(batch, lo, hi, &mut out);
        for (ch, mut rows) in self.channels.iter_mut().zip(out.drain(..)) {
            rows.seq = seq;
            // single-router mode: a worker with no owned rows is not
            // woken at all; in a plane every lane must see every batch
            // to stay in step
            if !self.always_send && rows.is_empty() {
                if self.rows_pool.len() < rows_cap {
                    self.rows_pool.push(rows);
                }
                continue;
            }
            let msg = WorkerMsg::Batch(RoutedBatch {
                batch: Arc::clone(batch),
                rows,
            });
            if let Err(msg) = ch.sender.try_send(msg) {
                // ring full (or closed): count the stall, then fall back
                // to the blocking send — that wait is the backpressure
                self.counters.stall_waits.fetch_add(1, Ordering::Relaxed);
                sharon_metrics::record_router_stall_waits(1);
                if ch.sender.send(msg).is_err() {
                    cancel.store(true, Ordering::Release);
                }
            }
        }
        self.route_scratch = out;
        self.counters.batches_routed.fetch_add(1, Ordering::Relaxed);
        self.counters
            .scope_scans
            .fetch_add(self.router.n_local_scopes() as u64, Ordering::Relaxed);
        sharon_metrics::record_router_batches_routed(1);
    }

    /// Inject a checkpoint barrier: serialize this router's own state,
    /// send the barrier down **every** worker lane (in-band, behind all
    /// previously routed batches), and deposit the router segment into
    /// this router's barrier slot. Dead rings flip `cancel` — the
    /// barrier wait then fails instead of hanging.
    fn send_barrier(&mut self, barrier: &BarrierRef, cancel: &AtomicBool) {
        let mut w = StateWriter::new();
        self.router.save_state(&mut w);
        for ch in &mut self.channels {
            if ch
                .sender
                .send(WorkerMsg::Barrier(Arc::clone(barrier)))
                .is_err()
            {
                cancel.store(true, Ordering::Release);
            }
        }
        barrier.fill_router(self.router_index, w.into_bytes());
    }

    /// Inject a result-harvest barrier: same in-band ordering as
    /// [`Fanout::send_barrier`], but workers deposit (and clear) their
    /// emitted results instead of their engine state. Routers have no
    /// results of their own, so their segments are empty.
    fn send_harvest(&mut self, barrier: &BarrierRef, cancel: &AtomicBool) {
        for ch in &mut self.channels {
            if ch
                .sender
                .send(WorkerMsg::Harvest(Arc::clone(barrier)))
                .is_err()
            {
                cancel.store(true, Ordering::Release);
            }
        }
        barrier.fill_router(self.router_index, Vec::new());
    }
}

/// Rewrite the `R` per-router chunks of one merged worker step (lane
/// order, all carrying the same batch and sequence number) so that
/// applying them one after another through
/// [`ShardProcessor::process_routed`] is indistinguishable from applying
/// their union as a single chunk — the heart of the deterministic
/// sequence-number merge:
///
/// * **split notices** migrate to the *first* non-empty chunk: in the
///   union, every notice applies before any of the batch's rows;
/// * **unsplit hand-backs** migrate to the *last* non-empty chunk: in
///   the union they apply after every row, and `mark_unsplit`'s deferral
///   decision depends on the watermark at notice time;
/// * the **watermark advances exactly once**: every non-last chunk's
///   frontier is zeroed (a no-op — the event-time gate's `advance` is a
///   monotone max) and the last non-empty chunk carries the **min over
///   the stamped per-router frontiers**, the only bound every router has
///   published for this batch.
///
/// Steps with fewer than two non-empty chunks are returned untouched, so
/// a single-router plane reproduces the classic path bit for bit.
/// Allocation-free except when notices actually migrate (split churn is
/// never the steady state). Public so the merge-determinism suites can
/// drive it directly against adversarial chunk layouts.
pub fn prepare_step(chunks: &mut [RoutedRows]) {
    let mut first = 0usize;
    let mut last = 0usize;
    let mut n_nonempty = 0usize;
    for (i, c) in chunks.iter().enumerate() {
        if !c.is_empty() {
            if n_nonempty == 0 {
                first = i;
            }
            last = i;
            n_nonempty += 1;
        }
    }
    if n_nonempty < 2 {
        return;
    }
    let mut merged = chunks[first].frontier;
    for c in &chunks[first + 1..=last] {
        if !c.is_empty() {
            merged = merged.min(c.frontier);
        }
    }
    for i in first..=last {
        if chunks[i].is_empty() {
            continue;
        }
        if i > first && !chunks[i].splits.is_empty() {
            let (head, tail) = chunks.split_at_mut(i);
            head[first].splits.append(&mut tail[0].splits);
        }
        if i < last && !chunks[i].unsplits.is_empty() {
            let (head, tail) = chunks.split_at_mut(last);
            tail[0].unsplits.append(&mut head[i].unsplits);
        }
        chunks[i].frontier = Timestamp::ZERO;
    }
    chunks[last].frontier = merged;
}

/// The ingest thread's handle on one dedicated router thread.
struct RouterThread {
    jobs: spsc::Sender<RouterMsg>,
    /// Returns the [`Fanout`] at end-of-stream so `finish` controls when
    /// this router's worker lanes close (after all in-flight jobs
    /// routed).
    handle: JoinHandle<Fanout>,
    /// Split-group count (this router's scopes only) published after
    /// each batch (trails ingestion by at most the in-flight pipeline
    /// jobs).
    split_groups: Arc<AtomicUsize>,
}

/// Where routing runs: on the ingest thread (depth 0, single-router
/// planes only) or on `R ≥ 1` dedicated router threads, each behind its
/// own bounded job ring (depth ≥ 1).
enum IngestStage {
    Inline(Fanout),
    Pipelined(Vec<RouterThread>),
}

/// Every tuning and durability knob of the sharded runtime in one place;
/// [`ShardedExecutor::with_options`] and [`ShardedExecutor::resume`] take
/// it whole. [`ShardedOptions::default`] reproduces the classic
/// constructors (no spill, no checkpoints, no faults);
/// [`ShardedOptions::from_env`] additionally honors the
/// `SHARON_CHECKPOINT` and `SHARON_FAULT` environment knobs.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Events buffered before a batch is routed ([`DEFAULT_BATCH_SIZE`]).
    pub batch_size: usize,
    /// Hot-group splitting tuning (see [`SplitConfig`]).
    pub split: SplitConfig,
    /// Ingest pipeline depth (`0` = in-line routing; defaults to
    /// [`default_pipeline_depth`]).
    pub pipeline_depth: usize,
    /// Router threads in the routing plane (`1` = the classic single
    /// router; defaults to [`default_routers`], which honours
    /// `SHARON_ROUTERS`). A plane of more than one router requires
    /// `pipeline_depth ≥ 1` — in-line routing has nothing to
    /// parallelize.
    pub routers: usize,
    /// When set, every engine pages cold groups out to a spill log under
    /// this configuration — bounded memory for huge `GROUP BY`
    /// cardinalities (see [`SpillConfig`]).
    pub spill: Option<SpillConfig>,
    /// When set, take a consistent checkpoint every
    /// `interval_batches` ingested batches into this store.
    pub checkpoint: Option<CheckpointConfig>,
    /// When set, inject the given fault mid-stream (recovery testing —
    /// see [`FaultPlan`]).
    pub fault: Option<FaultPlan>,
    /// When set, run the online engines in **event-time** mode with this
    /// allowed lateness (milliseconds): input may carry bounded disorder;
    /// each engine buffers rows behind the watermark derived from the
    /// router's merged cross-shard frontier ([`RoutedRows::frontier`])
    /// and drops-and-counts rows behind it. Exact whenever the lateness
    /// covers the stream's disorder bound. `None` (the default) keeps the
    /// historical arrival-order contract.
    pub lateness: Option<u64>,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            batch_size: DEFAULT_BATCH_SIZE,
            split: SplitConfig::default(),
            pipeline_depth: default_pipeline_depth(),
            routers: default_routers(),
            spill: None,
            checkpoint: None,
            fault: None,
            lateness: None,
        }
    }
}

impl ShardedOptions {
    /// The defaults plus the durability environment knobs:
    /// `SHARON_CHECKPOINT=<dir>[:<interval>]` enables periodic
    /// checkpoints, `SHARON_FAULT=<plan>` arms fault injection, and
    /// `SHARON_LATENESS=<ms>` enables event-time mode (all panic on
    /// unparsable values — a typo must not silently run a different
    /// configuration). Delegates to the consolidated
    /// [`RuntimeOptions::from_env`](crate::config::RuntimeOptions::from_env)
    /// surface.
    pub fn from_env() -> Self {
        crate::config::RuntimeOptions::from_env()
            .unwrap_or_else(|e| panic!("{e}"))
            .sharded_options()
    }
}

/// The ingest side's periodic-checkpoint state.
struct Checkpointer {
    store: CheckpointStore,
    interval_batches: u64,
}

/// Build the online engine shards for `parts`: one [`EngineKind`] per
/// compiled partition per shard, each restricted to its [`ShardSlice`],
/// with the spill tier armed when configured.
fn engine_shards(
    parts: &[CompiledPartition],
    n_shards: usize,
    spill: Option<&SpillConfig>,
    lateness: Option<u64>,
) -> Vec<Box<dyn ShardProcessor>> {
    (0..n_shards)
        .map(|shard| {
            let engines: Vec<EngineKind> = parts
                .iter()
                .enumerate()
                .map(|(pi, part)| {
                    let slice = ShardSlice {
                        index: shard as u32,
                        of: n_shards as u32,
                        owns_global: pi % n_shards == shard,
                    };
                    let mut engine = EngineKind::for_partition(part.clone(), Some(slice));
                    if let Some(cfg) = spill {
                        engine
                            .set_spill(cfg, &format!("{shard}-{pi}"))
                            .unwrap_or_else(|e| panic!("spill tier init failed: {e}"));
                    }
                    if let Some(ms) = lateness {
                        engine.set_lateness(ms);
                    }
                    engine
                })
                .collect();
            Box::new(EngineShard { engines }) as Box<dyn ShardProcessor>
        })
        .collect()
}

/// Build a copy of `batch` whose rows `lo..hi` carry an injected disorder
/// burst: consecutive blocks of `k + 1` rows are each permuted with a
/// seeded Fisher–Yates, so no row is displaced more than `k` positions —
/// the same bounded-disorder model as the stream generators. Deterministic
/// (the shuffle is seeded from the fault parameters), so kill-and-resume
/// runs replay the identical burst. Cold path: runs once per armed fault.
fn reorder_burst(batch: &EventBatch, lo: usize, hi: usize, k: u32) -> EventBatch {
    let mut events = batch.to_events();
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (((k as u64) << 32) | hi as u64);
    let mut next = move |bound: usize| {
        // xorshift64: plenty for a test-only shuffle, and dependency-free
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    let block = k as usize + 1;
    let mut start = lo;
    while start < hi {
        let end = hi.min(start + block);
        for i in (start + 1..end).rev() {
            let j = start + next(i - start + 1);
            events.swap(i, j);
        }
        start = end;
    }
    EventBatch::from_events(&events)
}

/// A parallel executor that hash-partitions work across `N` worker shards.
///
/// [`ShardedExecutor::new`] compiles a workload into online engine shards
/// exactly like [`crate::Executor`]; [`ShardedExecutor::from_parts`]
/// hosts *any* [`ShardProcessor`] + [`RouteBatch`] pair, which is how the
/// two-step baselines run sharded. Events are accepted one at a time, in
/// row-form batches, or in columnar batches; the routing side routes each
/// buffered batch once and fans the per-shard row lists out over SPSC
/// rings — on the ingest thread or overlapped on a dedicated router
/// thread, depending on the pipeline depth (see the module docs).
/// [`ShardedExecutor::finish`] drains the pipeline and merges the
/// disjoint shard results. [`ShardedExecutor::with_options`] adds the
/// durability tier — periodic checkpoints, spill-to-disk groups, fault
/// injection — and [`ShardedExecutor::resume`] restarts from the latest
/// complete checkpoint.
pub struct ShardedExecutor {
    /// `None` only after `finish`/`Drop` tore the stage down.
    stage: Option<IngestStage>,
    workers: Vec<WorkerHandle>,
    /// The fill buffer. Kept in an [`Arc`] (uniquely owned between
    /// flushes) so a flush moves it into the pipeline without re-wrapping
    /// — the steady state never allocates an `Arc` block.
    buffer: Arc<EventBatch>,
    batch_size: usize,
    n_shards: usize,
    pipeline_depth: usize,
    /// Incremented by `flush` as batches are fanned out; see
    /// [`ShardedExecutor::events_sent`].
    events_sent: u64,
    /// Batches fanned out so far — the clock of the periodic
    /// checkpointer and the fault plans.
    batches_sent: u64,
    /// Router threads in the routing plane (`1` = classic pipeline).
    n_routers: usize,
    /// In-flight batch bodies; entries whose `Arc` count drains back to 1
    /// are cleared and reused by the next flush.
    batch_pool: Vec<Arc<EventBatch>>,
    /// Set when the executor is dropped without `finish`, or when any
    /// runtime thread panics: the router thread and the workers discard
    /// queued batches instead of draining them (a capped/aborted bench
    /// run must not keep burning CPU on detached threads, and a
    /// half-dead runtime must fail fast rather than hang).
    cancel: Arc<AtomicBool>,
    /// Periodic-checkpoint state ([`ShardedOptions::checkpoint`]).
    checkpointer: Option<Checkpointer>,
    /// Armed fault injection ([`ShardedOptions::fault`]).
    fault: Option<FaultPlan>,
    /// Set once a `Drop`-fault fired: ingest stops and `finish` panics,
    /// simulating a crash with unflushed state.
    fault_tripped: Option<u64>,
    /// Each router's per-slot scan tallies, cloned out before the
    /// routers (possibly) moved onto their threads (empty when the
    /// routers do not track them). Routers fill disjoint slots, so the
    /// plane-wide view is the slot-wise sum.
    scan_counters: Vec<Arc<ScanCounters>>,
    /// Each router's live work tallies, in router order.
    router_counters: Vec<Arc<RouterCounters>>,
}

impl ShardedExecutor {
    /// Compile `workload` under `plan` and spawn `n_shards` worker threads
    /// running the online engines.
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::with_batch_size(catalog, workload, plan, n_shards, DEFAULT_BATCH_SIZE)
    }

    /// The Non-Shared (A-Seq) sharded executor.
    pub fn non_shared(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::new(catalog, workload, &SharingPlan::non_shared(), n_shards)
    }

    /// [`ShardedExecutor::new`] with an explicit flush threshold.
    pub fn with_batch_size(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
    ) -> Result<Self, CompileError> {
        Self::with_split_config(
            catalog,
            workload,
            plan,
            n_shards,
            batch_size,
            SplitConfig::default(),
        )
    }

    /// [`ShardedExecutor::with_batch_size`] with explicit hot-group
    /// splitting tuning (see [`SplitConfig`]; tests use
    /// [`SplitConfig::eager`] to exercise the split path on small
    /// streams, benchmarks [`SplitConfig::disabled`] to measure the
    /// pinned baseline).
    pub fn with_split_config(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
        split: SplitConfig,
    ) -> Result<Self, CompileError> {
        Self::with_pipeline_depth(
            catalog,
            workload,
            plan,
            n_shards,
            batch_size,
            split,
            default_pipeline_depth(),
        )
    }

    /// [`ShardedExecutor::with_split_config`] plus an explicit ingest
    /// pipeline depth (`0` = in-line routing on the ingest thread,
    /// `n ≥ 1` = a dedicated router thread behind an `n`-deep job ring;
    /// see the module docs).
    pub fn with_pipeline_depth(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
        split: SplitConfig,
        pipeline_depth: usize,
    ) -> Result<Self, CompileError> {
        Self::with_options(
            catalog,
            workload,
            plan,
            n_shards,
            ShardedOptions {
                batch_size,
                split,
                pipeline_depth,
                ..ShardedOptions::default()
            },
        )
    }

    /// The full-knob online constructor: compile `workload` under `plan`
    /// and spawn `n_shards` online engine shards configured by `options`
    /// (batching, splitting, pipelining, spill tier, checkpoints, fault
    /// injection).
    pub fn with_options(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        options: ShardedOptions,
    ) -> Result<Self, CompileError> {
        assert!(n_shards >= 1, "need at least one shard");
        let parts = compile(catalog, workload, plan)?;
        let shards = engine_shards(&parts, n_shards, options.spill.as_ref(), options.lateness);
        let routers = split_router_plane(parts, n_shards, options.split, options.routers);
        Ok(Self::build_with(routers, shards, options, 0))
    }

    /// Rebuild the runtime from the **latest complete checkpoint** in
    /// `options.checkpoint` (which must be set) and return it together
    /// with the stream offset to replay from: re-ingest every event from
    /// that offset on and the results are identical to an uninterrupted
    /// run. The compiled workload, shard count, and split configuration
    /// must match the checkpointing run — mismatches are reported, never
    /// guessed around.
    pub fn resume(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        options: ShardedOptions,
    ) -> Result<(Self, u64), CheckpointError> {
        let Some(cfg) = options.checkpoint.clone() else {
            return Err(CheckpointError::Mismatch(
                "resume requires a checkpoint directory".into(),
            ));
        };
        let store = CheckpointStore::open(&cfg.dir)?;
        let data = store.latest()?;
        if data.shards.len() != n_shards {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} shard segment(s), runtime has {n_shards} shard(s)",
                data.shards.len()
            )));
        }
        if data.routers.len() != options.routers {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} router segment(s), runtime has {} router(s)",
                data.routers.len(),
                options.routers
            )));
        }
        let parts = compile(catalog, workload, plan)
            .map_err(|e| CheckpointError::Mismatch(format!("workload does not compile: {e}")))?;
        let mut shards = engine_shards(&parts, n_shards, options.spill.as_ref(), options.lateness);
        // the cost partition is a pure function of the compiled scopes
        // and the router count, so this rebuilds the checkpointing run's
        // scope→router assignment exactly — segment `ri` restores the
        // same scope subset it was saved from
        let mut routers = split_router_plane(parts, n_shards, options.split, options.routers);
        for (ri, router) in routers.iter_mut().enumerate() {
            let mut r = StateReader::new(&data.routers[ri]);
            router.load_state(&mut r)?;
            if !r.is_exhausted() {
                return Err(CheckpointError::Corrupt(format!(
                    "trailing router {ri} state bytes"
                )));
            }
        }
        for (shard, processor) in shards.iter_mut().enumerate() {
            processor
                .load_state(&data.shards[shard])
                .map_err(|e| CheckpointError::Corrupt(format!("shard {shard} state: {e}")))?;
        }
        let offset = data.events_sent;
        Ok((Self::build_with(routers, shards, options, offset), offset))
    }

    /// Build the runtime from an explicit router + one processor per
    /// shard — the generic entry point that lets the sharded runtime host
    /// any strategy (the two-step baselines use it). The router's shard
    /// assignment must agree with how the processors partition their
    /// group state; both sides deriving from the same [`crate::RowFilter`]
    /// scopes guarantees that. The ingest pipeline depth defaults to
    /// [`default_pipeline_depth`].
    pub fn from_parts(
        router: Box<dyn RouteBatch>,
        shards: Vec<Box<dyn ShardProcessor>>,
        batch_size: usize,
    ) -> Self {
        Self::from_parts_with(router, shards, batch_size, default_pipeline_depth())
    }

    /// [`ShardedExecutor::from_parts`] with an explicit ingest pipeline
    /// depth (`0` = in-line routing).
    pub fn from_parts_with(
        router: Box<dyn RouteBatch>,
        shards: Vec<Box<dyn ShardProcessor>>,
        batch_size: usize,
        pipeline_depth: usize,
    ) -> Self {
        Self::from_parts_multi(vec![router], shards, batch_size, pipeline_depth)
    }

    /// [`ShardedExecutor::from_parts_with`] for a pre-built **routing
    /// plane**: one [`RouteBatch`] per router thread, each owning a
    /// disjoint subset of the plane-wide routing slots (see
    /// [`split_router_plane`]). The plane size is `routers.len()` — the
    /// [`ShardedOptions::routers`] knob is not consulted on this path,
    /// so a caller-built plane is never silently resized by the
    /// environment.
    pub fn from_parts_multi(
        routers: Vec<Box<dyn RouteBatch>>,
        shards: Vec<Box<dyn ShardProcessor>>,
        batch_size: usize,
        pipeline_depth: usize,
    ) -> Self {
        Self::build_with(
            routers,
            shards,
            ShardedOptions {
                batch_size,
                pipeline_depth,
                ..ShardedOptions::default()
            },
            0,
        )
    }

    /// Spawn the worker threads (and the router threads in pipelined
    /// mode) around the routing plane `routers` + `shards`. The plane
    /// size is `routers.len()` — [`ShardedOptions::routers`] is not
    /// consulted here, so pre-built planes are authoritative.
    /// `events_sent` seeds the ingest counter — zero for fresh runs, the
    /// checkpoint's replay offset for resumed ones.
    fn build_with(
        routers: Vec<Box<dyn RouteBatch>>,
        shards: Vec<Box<dyn ShardProcessor>>,
        options: ShardedOptions,
        events_sent: u64,
    ) -> Self {
        let n_shards = shards.len();
        let n_routers = routers.len();
        assert!(n_shards >= 1, "need at least one shard");
        assert!(n_routers >= 1, "a routing plane needs at least one router");
        let batch_size = options.batch_size.max(1);
        let pipeline_depth = options.pipeline_depth;
        assert!(
            n_routers == 1 || pipeline_depth >= 1,
            "a multi-router plane requires a pipelined ingest stage \
             (pipeline_depth >= 1; in-line routing has nothing to parallelize)"
        );
        for router in &routers {
            assert_eq!(
                router.n_shards(),
                n_shards,
                "router and processor shard counts must agree"
            );
        }
        let n_scopes = routers[0].n_scopes();
        for router in &routers {
            assert_eq!(
                router.n_scopes(),
                n_scopes,
                "every router of a plane must address the same plane-wide slot space"
            );
        }
        // cloned now: in pipelined mode the routers move onto their own
        // threads, but selectivity stays reportable through the shared
        // counters (summed slot-wise across the plane)
        let scan_counters: Vec<Arc<ScanCounters>> =
            routers.iter().filter_map(|r| r.scan_counters()).collect();
        let router_counters: Vec<Arc<RouterCounters>> = (0..n_routers)
            .map(|_| Arc::new(RouterCounters::default()))
            .collect();
        let cancel = Arc::new(AtomicBool::new(false));
        let checkpointer = options.checkpoint.as_ref().map(|cfg| Checkpointer {
            store: CheckpointStore::open(&cfg.dir)
                .unwrap_or_else(|e| panic!("checkpoint store {}: {e}", cfg.dir.display())),
            interval_batches: cfg.interval_batches.max(1),
        });

        // one lane (worker ring + return ring) per router per worker
        let mut worker_lanes: Vec<Vec<WorkerLane>> = (0..n_shards)
            .map(|_| Vec::with_capacity(n_routers))
            .collect();
        let mut fanouts = Vec::with_capacity(n_routers);
        for (ri, router) in routers.into_iter().enumerate() {
            let mut channels = Vec::with_capacity(n_shards);
            for lanes in worker_lanes.iter_mut() {
                let (sender, rx) = spsc::ring::<WorkerMsg>(RING_DEPTH);
                // the return ring is sized so a worker's try_send can
                // only hit a full ring if the routing side stopped
                // draining it
                let (ret, returns) = spsc::ring::<RoutedRows>(RING_DEPTH + 2);
                channels.push(WorkerChannel { sender, returns });
                lanes.push(WorkerLane { rx, ret });
            }
            fanouts.push(Fanout {
                router,
                router_index: ri,
                always_send: n_routers > 1,
                channels,
                rows_pool: Vec::new(),
                route_scratch: Vec::new(),
                counters: Arc::clone(&router_counters[ri]),
            });
        }

        let mut workers = Vec::with_capacity(n_shards);
        for ((shard, processor), lanes) in shards.into_iter().enumerate().zip(worker_lanes) {
            let matched = Arc::new(AtomicU64::new(0));
            let matched_pub = Arc::clone(&matched);
            let cancelled = Arc::clone(&cancel);
            let fault_at = match options.fault {
                Some(FaultPlan::PanicWorker { batch, shard: s }) if s == shard => Some(batch),
                _ => None,
            };
            let handle = std::thread::Builder::new()
                .name(format!("sharon-shard-{shard}"))
                .spawn(move || {
                    let _guard = CancelOnPanic(Arc::clone(&cancelled));
                    let mut processor = processor;
                    let mut lanes = lanes;
                    let mut processed: u64 = 0;
                    // hoisted step buffers: the merge loop allocates
                    // nothing in steady state
                    let mut step: Vec<WorkerMsg> = Vec::with_capacity(lanes.len());
                    let mut bodies: Vec<Arc<EventBatch>> = Vec::with_capacity(lanes.len());
                    let mut chunks: Vec<RoutedRows> = Vec::with_capacity(lanes.len());
                    'stream: loop {
                        // the sequence-number merge: one in-band message
                        // per lane, in router order — every router sends
                        // every worker the same message sequence (planes
                        // send empty chunks too), so step `k` of every
                        // lane refers to the same batch or barrier
                        step.clear();
                        for lane in &mut lanes {
                            match lane.rx.recv() {
                                Some(msg) => step.push(msg),
                                // lanes close together at teardown: any
                                // closed lane ends the stream
                                None => break 'stream,
                            }
                        }
                        let kind = std::mem::discriminant(&step[0]);
                        if step.iter().any(|m| std::mem::discriminant(m) != kind) {
                            // only reachable when a cancel tore the
                            // plane down mid-sequence — an orderly plane
                            // keeps every lane in lockstep
                            assert!(
                                cancelled.load(Ordering::Relaxed),
                                "router lanes desynchronized on shard {shard}"
                            );
                            break 'stream;
                        }
                        match &step[0] {
                            WorkerMsg::Batch(_) => {
                                bodies.clear();
                                chunks.clear();
                                for msg in step.drain(..) {
                                    if let WorkerMsg::Batch(rb) = msg {
                                        bodies.push(rb.batch);
                                        chunks.push(rb.rows);
                                    }
                                }
                                if cancelled.load(Ordering::Relaxed)
                                    || chunks.iter().all(RoutedRows::is_empty)
                                {
                                    // aborted — or no lane owns rows of
                                    // this batch (single routers skip
                                    // such sends entirely, so the step
                                    // is not counted here either)
                                    bodies.clear();
                                    for (lane, mut rows) in lanes.iter_mut().zip(chunks.drain(..)) {
                                        rows.clear();
                                        let _ = lane.ret.try_send(rows);
                                    }
                                    continue;
                                }
                                debug_assert!(
                                    chunks.iter().all(|c| c.seq == chunks[0].seq)
                                        && bodies.iter().all(|b| Arc::ptr_eq(b, &bodies[0])),
                                    "lanes merged chunks of different batches"
                                );
                                if fault_at == Some(processed) {
                                    panic!(
                                        "injected fault: worker shard {shard} \
                                         panicking at its batch {processed}"
                                    );
                                }
                                processed += 1;
                                prepare_step(&mut chunks);
                                for (body, rows) in bodies.iter().zip(&chunks) {
                                    if !rows.is_empty() {
                                        processor.process_routed(body, rows);
                                    }
                                }
                                matched_pub.store(processor.events_matched(), Ordering::Relaxed);
                                bodies.clear(); // release the body before recycling rows
                                for (lane, mut rows) in lanes.iter_mut().zip(chunks.drain(..)) {
                                    rows.clear();
                                    // recycle the row lists into their own
                                    // lane; dropping them is fine if the
                                    // return ring is (transiently) full
                                    let _ = lane.ret.try_send(rows);
                                }
                            }
                            WorkerMsg::Barrier(_) => {
                                // in-band: state covers exactly the batches
                                // routed before the barrier; every lane
                                // carries the same barrier, deposit once
                                let state = processor.save_state();
                                if let Some(WorkerMsg::Barrier(barrier)) = step.drain(..).next() {
                                    barrier.fill_shard(shard, state);
                                }
                            }
                            WorkerMsg::Harvest(_) => {
                                // in-band: results cover exactly the batches
                                // routed before the barrier; take once
                                let results = processor.take_results();
                                if let Some(WorkerMsg::Harvest(barrier)) = step.drain(..).next() {
                                    barrier.fill_shard(shard, results);
                                }
                            }
                        }
                    }
                    processor.finish()
                })
                .expect("spawn shard worker thread");
            workers.push(WorkerHandle { handle, matched });
        }

        let stage = if pipeline_depth == 0 {
            let fanout = fanouts.pop().expect("single-router plane in inline mode");
            IngestStage::Inline(fanout)
        } else {
            let threads = fanouts
                .into_iter()
                .enumerate()
                .map(|(ri, fanout)| {
                    let (jobs, mut job_rx) = spsc::ring::<RouterMsg>(pipeline_depth);
                    let split_groups = Arc::new(AtomicUsize::new(0));
                    let splits_pub = Arc::clone(&split_groups);
                    let cancelled = Arc::clone(&cancel);
                    let handle = std::thread::Builder::new()
                        .name(format!("sharon-router-{ri}"))
                        .spawn(move || {
                            let _guard = CancelOnPanic(Arc::clone(&cancelled));
                            let mut fanout = fanout;
                            while let Some(msg) = job_rx.recv() {
                                match msg {
                                    RouterMsg::Route(RouteJob { batch, lo, hi, seq }) => {
                                        if cancelled.load(Ordering::Relaxed) {
                                            continue; // aborted: drain jobs without routing
                                        }
                                        fanout.dispatch(&batch, lo, hi, seq, &cancelled);
                                        splits_pub
                                            .store(fanout.router.split_groups(), Ordering::Relaxed);
                                    }
                                    RouterMsg::Barrier(barrier) => {
                                        fanout.send_barrier(&barrier, &cancelled);
                                    }
                                    RouterMsg::Harvest(barrier) => {
                                        fanout.send_harvest(&barrier, &cancelled);
                                    }
                                    RouterMsg::Sync(probe) => {
                                        probe.fill(ri, fanout.router.split_groups());
                                    }
                                }
                            }
                            // end of stream: hand the fan-out back so
                            // `finish` closes this router's worker lanes
                            // only after every queued job was routed
                            fanout
                        })
                        .expect("spawn router thread");
                    RouterThread {
                        jobs,
                        handle,
                        split_groups,
                    }
                })
                .collect();
            IngestStage::Pipelined(threads)
        };

        ShardedExecutor {
            stage: Some(stage),
            workers,
            buffer: Arc::new(EventBatch::with_capacity(batch_size, 2)),
            batch_size,
            n_shards,
            n_routers,
            pipeline_depth,
            events_sent,
            batches_sent: 0,
            batch_pool: Vec::new(),
            cancel,
            checkpointer,
            fault: options.fault,
            fault_tripped: None,
            scan_counters,
            router_counters,
        }
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The ingest pipeline depth this runtime was built with (`0` =
    /// in-line routing).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Router threads in the routing plane (`1` = the classic single
    /// router).
    pub fn n_routers(&self) -> usize {
        self.n_routers
    }

    /// Per-router work tallies, in router order: batches routed, stalls
    /// on full worker rings, and scope scans (local scopes × batches).
    /// Live mid-run; exact once ingestion is flushed. The
    /// many-distinct-scope bench uses the scan spread to assert the cost
    /// partition balances the plane.
    pub fn router_stats(&self) -> Vec<RouterStats> {
        self.router_counters
            .iter()
            .map(|c| RouterStats {
                batches_routed: c.batches_routed.load(Ordering::Relaxed),
                stall_waits: c.stall_waits.load(Ordering::Relaxed),
                scope_scans: c.scope_scans.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Events fanned out to the routing stage so far (excluding the
    /// unflushed buffer). Resumed runtimes start at the checkpoint's
    /// replay offset, so the counter always reflects absolute stream
    /// position.
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Events that passed routing, predicates, grouping, and shard
    /// ownership, summed over shards. Workers publish after each batch,
    /// so this trails ingestion by at most the in-flight batches (it is
    /// exact after [`ShardedExecutor::finish_with_stats`], which reports
    /// the final count).
    pub fn events_matched(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.matched.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-scope `(rows_scanned, rows_selected)` of the routing plane's
    /// stateless pass so far (empty when the routers do not track it).
    /// Every router tallies into the plane-wide slot space — each slot
    /// owned by exactly one router — so the slot-wise sum reproduces the
    /// single-router view exactly. Live in both inline and pipelined
    /// modes; exact once ingestion is flushed.
    pub fn scan_stats(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for counters in &self.scan_counters {
            let snap = counters.snapshot();
            if out.len() < snap.len() {
                out.resize(snap.len(), (0, 0));
            }
            for (acc, s) in out.iter_mut().zip(snap) {
                acc.0 += s.0;
                acc.1 += s.1;
            }
        }
        out
    }

    /// The fill buffer (uniquely owned between flushes).
    fn buf(&mut self) -> &mut EventBatch {
        Arc::get_mut(&mut self.buffer).expect("fill buffer is uniquely owned between flushes")
    }

    /// Enqueue one event (flushed when the batch threshold is reached).
    pub fn process(&mut self, e: &Event) {
        self.buf().push_event(e);
        if self.buffer.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Enqueue a time-ordered batch of row-form events.
    pub fn process_batch(&mut self, events: &[Event]) {
        for e in events {
            self.buf().push_event(e);
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
    }

    /// Enqueue a time-ordered columnar batch (any size; it is re-chunked
    /// to the flush threshold internally). Copies the rows into the
    /// internal buffer; callers that already own an [`Arc`]-shared batch
    /// should prefer the zero-copy [`ShardedExecutor::process_shared`].
    pub fn process_columnar(&mut self, batch: &EventBatch) {
        let mut lo = 0;
        while lo < batch.len() {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            let hi = (lo + free).min(batch.len());
            self.buf().extend_from_range(batch, lo, hi);
            lo = hi;
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
    }

    /// Zero-copy ingestion of an [`Arc`]-shared columnar batch: routes
    /// consecutive row ranges of `batch` directly (one flush-threshold
    /// chunk at a time, preserving pipelining) and ships workers the
    /// shared batch plus absolute row indexes — the batch is never copied.
    ///
    /// Events must be time-ordered relative to everything already
    /// ingested; any buffered rows are flushed first to preserve order.
    pub fn process_shared(&mut self, batch: &Arc<EventBatch>) {
        self.flush();
        let mut lo = 0;
        while lo < batch.len() {
            let hi = (lo + self.batch_size).min(batch.len());
            self.dispatch_range(batch, lo, hi);
            lo = hi;
        }
    }

    /// Drain a stream through the executor.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        loop {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            if stream.next_batch_columnar(free, self.buf()) == 0 {
                break;
            }
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
        self
    }

    /// A cleared batch body for the next fill: a drained in-flight batch
    /// when one is available (its `Arc` count fell back to 1), a fresh
    /// allocation otherwise.
    fn take_spare_batch(&mut self) -> Arc<EventBatch> {
        for i in 0..self.batch_pool.len() {
            if Arc::strong_count(&self.batch_pool[i]) == 1 {
                let mut arc = self.batch_pool.swap_remove(i);
                Arc::get_mut(&mut arc).expect("strong count was 1").clear();
                return arc;
            }
        }
        Arc::new(EventBatch::with_capacity(self.batch_size, 2))
    }

    /// Hand the buffered batch to the routing stage (in-line: route and
    /// fan out now; pipelined: enqueue for the router thread).
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let spare = self.take_spare_batch();
        let batch = std::mem::replace(&mut self.buffer, spare);
        let len = batch.len();
        self.dispatch_range(&batch, 0, len);
        // keep the body in the pool for reuse once its consumers drop it;
        // the cap covers the worker rings plus the router pipeline so a
        // slow shard cannot make the pool grow without bound
        if self.batch_pool.len() < 2 * RING_DEPTH + self.pipeline_depth {
            self.batch_pool.push(batch);
        }
    }

    /// Send rows `lo..hi` of `batch` through the routing stage, then run
    /// the per-batch durability hooks (fault injection, periodic
    /// checkpoints). With both disabled the hooks cost two integer
    /// checks — the zero-allocation steady state is untouched.
    fn dispatch_range(&mut self, batch: &Arc<EventBatch>, lo: usize, hi: usize) {
        if self.fault_check() {
            return; // "crashed": the rest of the stream is lost
        }
        // cold path: a `reorder@N:K` fault replaces this batch with a
        // disorder burst — the same rows, each displaced at most K
        // positions (the stream generators' disorder model)
        let scrambled;
        let batch = match self.fault {
            Some(FaultPlan::Reorder { batch: at, k }) if self.batches_sent == at => {
                scrambled = Arc::new(reorder_burst(batch, lo, hi, k));
                &scrambled
            }
            _ => batch,
        };
        self.events_sent += (hi - lo) as u64;
        let seq = self.batches_sent;
        let Self { stage, cancel, .. } = self;
        match stage.as_mut().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.dispatch(batch, lo, hi, seq, cancel),
            IngestStage::Pipelined(threads) => {
                // every router routes every batch (each against its own
                // scope subset); a full job ring blocks — the pipeline's
                // backpressure — and a dead router thread flips cancel
                // so `finish` reports it
                for rt in threads {
                    if rt
                        .jobs
                        .send(RouterMsg::Route(RouteJob {
                            batch: Arc::clone(batch),
                            lo,
                            hi,
                            seq,
                        }))
                        .is_err()
                    {
                        cancel.store(true, Ordering::Release);
                    }
                }
            }
        }
        self.batches_sent += 1;
        self.maybe_checkpoint();
    }

    /// Evaluate the armed ingest-side fault plan; returns `true` when the
    /// run is (now or already) simulated-dead and the batch must be
    /// dropped. `Abort` hard-kills the process — the external
    /// kill-and-resume harness relies on that being indistinguishable
    /// from a real crash. `Reorder` is handled in
    /// [`ShardedExecutor::dispatch_range`] itself: it mutates the batch
    /// rather than killing the run.
    fn fault_check(&mut self) -> bool {
        if self.fault_tripped.is_some() {
            return true;
        }
        match self.fault {
            Some(FaultPlan::Drop { batch }) if self.batches_sent >= batch => {
                self.cancel.store(true, Ordering::Release);
                self.fault_tripped = Some(batch);
                true
            }
            Some(FaultPlan::Abort { batch }) if self.batches_sent >= batch => {
                eprintln!("sharon: injected fault abort@{batch}: aborting process");
                std::process::abort();
            }
            _ => false,
        }
    }

    /// Take a periodic checkpoint when one is due. Failing to persist a
    /// checkpoint that was asked for is fatal: a run that silently stops
    /// checkpointing would resume from an arbitrarily stale offset.
    fn maybe_checkpoint(&mut self) {
        let due = self
            .checkpointer
            .as_ref()
            .is_some_and(|c| self.batches_sent.is_multiple_of(c.interval_batches));
        if due {
            if let Err(e) = self.take_checkpoint() {
                panic!("periodic checkpoint failed: {e}");
            }
        }
    }

    /// Inject a barrier behind everything sent so far, wait for every
    /// shard's state deposit, and persist the checkpoint.
    fn take_checkpoint(&mut self) -> Result<u64, CheckpointError> {
        let barrier: BarrierRef = Arc::new(CheckpointBarrier::new(self.n_routers, self.n_shards));
        let Self { stage, cancel, .. } = self;
        match stage.as_mut().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.send_barrier(&barrier, cancel),
            IngestStage::Pipelined(threads) => {
                // the barrier rides every router's job ring in-band, so
                // each router segment (and each shard's lane barrier)
                // covers exactly the batches routed before it
                for rt in threads {
                    if rt
                        .jobs
                        .send(RouterMsg::Barrier(Arc::clone(&barrier)))
                        .is_err()
                    {
                        cancel.store(true, Ordering::Release);
                    }
                }
            }
        }
        let (routers, shards) = barrier.wait(&self.cancel)?;
        let ck = self
            .checkpointer
            .as_ref()
            .expect("checkpoint requires a configured store");
        let id = ck.store.next_id()?;
        ck.store.write(id, self.events_sent, &routers, &shards)?;
        sharon_metrics::record_checkpoints_written(1);
        Ok(id)
    }

    /// Flush the ingest buffer and take a checkpoint **now**, regardless
    /// of the periodic interval. Returns the new checkpoint's id.
    ///
    /// Panics if the runtime was built without
    /// [`ShardedOptions::checkpoint`].
    pub fn checkpoint_now(&mut self) -> Result<u64, CheckpointError> {
        assert!(
            self.checkpointer.is_some(),
            "checkpoint_now requires a configured checkpoint store"
        );
        self.flush();
        self.take_checkpoint()
    }

    /// Flush the ingest buffer and harvest every shard's results emitted
    /// so far, **without** stopping the runtime: open windows keep their
    /// state and surface in a later harvest or at
    /// [`ShardedExecutor::finish`]. The harvest travels the same in-band
    /// barrier path as a checkpoint, so the returned results cover
    /// exactly the batches ingested before the call — this is the epoch
    /// drain backing the session layer's `drain_results`.
    ///
    /// Fails with [`CheckpointError::Mismatch`] for shard processors that
    /// cannot harvest mid-stream (the two-step baselines), and with
    /// [`CheckpointError::Corrupt`] if a runtime thread died.
    pub fn harvest_results(&mut self) -> Result<ExecutorResults, CheckpointError> {
        self.flush();
        let barrier: BarrierRef = Arc::new(CheckpointBarrier::new(self.n_routers, self.n_shards));
        let Self { stage, cancel, .. } = self;
        match stage.as_mut().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.send_harvest(&barrier, cancel),
            IngestStage::Pipelined(threads) => {
                for rt in threads {
                    if rt
                        .jobs
                        .send(RouterMsg::Harvest(Arc::clone(&barrier)))
                        .is_err()
                    {
                        cancel.store(true, Ordering::Release);
                    }
                }
            }
        }
        let (_routers, shards) = barrier.wait(&self.cancel)?;
        let mut out = ExecutorResults::new();
        for (shard, bytes) in shards.iter().enumerate() {
            let mut r = StateReader::new(bytes);
            let results = ExecutorResults::load_state(&mut r)
                .unwrap_or_else(|e| panic!("harvested results of shard {shard} corrupt: {e}"));
            out.merge(results);
        }
        Ok(out)
    }

    /// Flush remaining events, stop the workers, and merge their results
    /// in deterministic shard order. Shard result sets are disjoint (each
    /// non-split group is owned by exactly one shard), so that merge is
    /// exact; split (hot) groups report per-window **sub-aggregates**
    /// instead, which the merge step combines with the aggregate-kind
    /// merge before projecting final values (see
    /// [`crate::PartialResults`]).
    pub fn finish(self) -> ExecutorResults {
        self.finish_with_stats().0
    }

    /// [`ShardedExecutor::finish`] plus runtime statistics:
    /// `(results, events_matched, summed state-size proxy)`.
    ///
    /// Fails fast — panics with an error naming the dead thread — when
    /// any worker or the router thread panicked mid-run (including
    /// injected faults): partial results are discarded, never merged, so
    /// a half-dead run can never masquerade as a complete one.
    pub fn finish_with_stats(mut self) -> (ExecutorResults, u64, usize) {
        self.flush();
        if let Some(batch) = self.fault_tripped {
            // a Drop-fault is a simulated crash: the Drop impl tears the
            // stage down during this unwind (cancel is already set)
            panic!(
                "injected fault: simulated crash at ingested batch {batch} (buffered state lost)"
            );
        }
        // teardown order is the flush contract: close EVERY ingest→router
        // job ring FIRST (close-then-drain is the poison message — each
        // router thread routes every queued job before returning its
        // fan-out), then join the routers in router order, dropping each
        // fan-out as its thread returns, closing that router's worker
        // lanes — no routed batch is lost, every ShardReport is
        // complete, and a worker blocked on a dead router's lane (only
        // possible on a cancelled run) is released before the next
        // router is joined
        let mut failed_routers = Vec::new();
        match self.stage.take().expect("finish runs once") {
            IngestStage::Inline(fanout) => drop(fanout),
            IngestStage::Pipelined(threads) => {
                let mut handles = Vec::with_capacity(threads.len());
                for rt in threads {
                    drop(rt.jobs);
                    handles.push(rt.handle);
                }
                for (ri, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        // a panicked router already dropped its fan-out
                        // during unwind, closing its worker lanes
                        Ok(fanout) => drop(fanout),
                        Err(_) => failed_routers.push(ri),
                    }
                }
            }
        }
        // all rings are closed: join the shards in deterministic order
        let workers = std::mem::take(&mut self.workers);
        let mut results = ExecutorResults::new();
        let mut partials = PartialResults::new();
        let mut matched = 0u64;
        let mut state = 0usize;
        let mut failed_shards = Vec::new();
        for (shard, worker) in workers.into_iter().enumerate() {
            match worker.handle.join() {
                Ok(report) => {
                    results.merge(report.results);
                    partials.absorb(report.partials);
                    matched += report.events_matched;
                    state += report.state_size;
                }
                Err(_) => failed_shards.push(shard),
            }
        }
        if !failed_routers.is_empty() || !failed_shards.is_empty() {
            let mut parts = Vec::new();
            if !failed_routers.is_empty() {
                parts.push(format!("router thread(s) {failed_routers:?} panicked"));
            }
            if !failed_shards.is_empty() {
                parts.push(format!("worker shard(s) {failed_shards:?} panicked"));
            }
            panic!(
                "sharded runtime failed: {} — partial results discarded",
                parts.join("; ")
            );
        }
        // the merge step: combine split groups' sub-aggregates across
        // shards, then project them into the final result set
        partials.finalize_into(&mut results);
        (results, matched, state)
    }

    /// Number of groups the routing plane has split across shards so
    /// far. In pipelined mode this sums each router thread's last
    /// published count, which trails ingestion by at most the in-flight
    /// pipeline jobs — use [`ShardedExecutor::split_snapshot`] when the
    /// count must cover everything ingested so far.
    pub fn split_groups(&self) -> usize {
        match self.stage.as_ref().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.router.split_groups(),
            IngestStage::Pipelined(threads) => threads
                .iter()
                .map(|rt| rt.split_groups.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// A **synchronized** split-group count: flushes the ingest buffer,
    /// then waits until every router thread has answered a probe sent
    /// in-band behind everything queued so far — so the returned count
    /// covers every batch ingested before the call, at any pipeline
    /// depth and plane size (unlike [`ShardedExecutor::split_groups`],
    /// whose pipelined reading trails ingestion). Each group's scope
    /// lives on exactly one router, so the per-router counts sum
    /// exactly.
    pub fn split_snapshot(&mut self) -> usize {
        self.flush();
        let Self { stage, cancel, .. } = self;
        match stage.as_mut().expect("executor is active") {
            IngestStage::Inline(fanout) => fanout.router.split_groups(),
            IngestStage::Pipelined(threads) => {
                let probe = Arc::new(SplitProbe::new(threads.len()));
                for rt in threads.iter_mut() {
                    if rt.jobs.send(RouterMsg::Sync(Arc::clone(&probe))).is_err() {
                        cancel.store(true, Ordering::Release);
                    }
                }
                probe.wait_sum(cancel)
            }
        }
    }
}

impl Drop for ShardedExecutor {
    /// Dropping without [`ShardedExecutor::finish`] *aborts* the run: the
    /// router thread and the workers are told to discard queued batches
    /// (they only complete the item currently in flight) and are joined,
    /// so an abandoned executor — e.g. a capped bench run reporting DNF —
    /// never leaves detached threads grinding through polynomial two-step
    /// work behind the next measurement.
    fn drop(&mut self) {
        let Some(stage) = self.stage.take() else {
            return; // finished normally: threads already joined
        };
        self.cancel.store(true, Ordering::Relaxed);
        match stage {
            IngestStage::Inline(fanout) => drop(fanout),
            IngestStage::Pipelined(threads) => {
                // close every job ring first, then join the routers in
                // order — joining returns each fan-out, whose drop
                // closes that router's worker lanes (releasing any
                // worker blocked on it before the next join)
                let mut handles = Vec::with_capacity(threads.len());
                for rt in threads {
                    drop(rt.jobs);
                    handles.push(rt.handle);
                }
                for handle in handles {
                    let _ = handle.join();
                }
            }
        }
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.handle.join();
        }
    }
}

impl BatchProcessor for ShardedExecutor {
    fn process_event(&mut self, e: &Event) {
        self.process(e);
    }

    fn process_events(&mut self, events: &[Event]) {
        self.process_batch(events);
    }

    fn process_columnar(&mut self, batch: &EventBatch) {
        ShardedExecutor::process_columnar(self, batch);
    }

    fn events_matched(&self) -> u64 {
        ShardedExecutor::events_matched(self)
    }

    fn scan_stats(&self) -> Vec<(u64, u64)> {
        ShardedExecutor::scan_stats(self)
    }

    /// The engines live on the worker threads and are configured at
    /// construction — set [`ShardedOptions::lateness`] instead.
    fn set_lateness(&mut self, lateness_ms: u64) {
        let _ = lateness_ms;
        panic!("ShardedExecutor engines are configured at spawn: set ShardedOptions::lateness");
    }

    /// Zero mid-run: late-drop counts live on the worker threads; the
    /// global [`sharon_metrics::late_rows_dropped`] counter carries the
    /// exact total (every owner-copy drop records there once).
    fn late_rows_dropped(&self) -> u64 {
        0
    }

    /// Zero: the state lives on the worker threads (the exact total is
    /// reported by [`ShardedExecutor::finish_with_stats`]).
    fn state_size(&self) -> usize {
        0
    }

    fn finish(self: Box<Self>) -> (ExecutorResults, u64) {
        let (results, matched, _state) = (*self).finish_with_stats();
        (results, matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use sharon_query::{parse_workload, QueryId};
    use sharon_types::{GroupKey, Schema, Timestamp, Value};

    fn grouped_workload() -> (Catalog, Workload) {
        let mut c = Catalog::new();
        c.register_with_schema("A", Schema::new(["g", "v"]));
        c.register_with_schema("B", Schema::new(["g", "v"]));
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN SUM(B.v) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        (c, w)
    }

    fn stream(c: &Catalog, n: u64, groups: i64) -> Vec<Event> {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        // consecutive (A, B) pairs share a group, so matches exist for any
        // group cardinality; pairs from different groups interleave freely
        (0..n)
            .map(|i| {
                let ty = if i % 2 == 0 { a } else { b };
                Event::with_attrs(
                    ty,
                    Timestamp(i),
                    vec![
                        Value::Int((i / 2) as i64 % groups),
                        Value::Int((i % 7) as i64),
                    ],
                )
            })
            .collect()
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sharon-sharded-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn matches_sequential_across_shard_counts() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 4000, 37);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();
        assert!(!want.is_empty());

        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedExecutor::non_shared(&c, &w, shards).unwrap();
            for chunk in events.chunks(97) {
                sharded.process_batch(chunk);
            }
            let (got, matched, _state) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "{shards} shards diverge from sequential"
            );
            assert_eq!(matched, want_matched, "{shards} shards: matched count");
        }
    }

    #[test]
    fn pipelined_and_inline_routing_agree() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 5000, 23);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        for depth in [0usize, 1, 2, 4] {
            let mut sharded = ShardedExecutor::with_pipeline_depth(
                &c,
                &w,
                &plan,
                3,
                128,
                SplitConfig::default(),
                depth,
            )
            .unwrap();
            assert_eq!(sharded.pipeline_depth(), depth);
            sharded.process_batch(&events);
            let (got, matched, _) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "pipeline depth {depth} diverges from sequential"
            );
            assert_eq!(matched, want_matched, "depth {depth}: matched count");
        }
    }

    #[test]
    fn columnar_ingestion_matches_row_form() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 3000, 19);
        let batch = EventBatch::from_events(&events);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        // one oversized columnar push: re-chunked internally
        let mut sharded = ShardedExecutor::non_shared(&c, &w, 3).unwrap();
        sharded.process_columnar(&batch);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));

        // the zero-copy shared-batch path agrees too (mixed with a few
        // buffered row-form events first, to cover the order-preserving
        // pre-flush)
        let (head, tail) = events.split_at(100);
        let shared = Arc::new(EventBatch::from_events(tail));
        let mut sharded = ShardedExecutor::non_shared(&c, &w, 3).unwrap();
        sharded.process_batch(head);
        sharded.process_shared(&shared);
        let (got, matched, _) = sharded.finish_with_stats();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(matched > 0);
    }

    #[test]
    fn global_partitions_are_owned_once() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 20 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events: Vec<Event> = (0..100)
            .map(|i| Event::new(if i % 2 == 0 { a } else { b }, Timestamp(i)))
            .collect();

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let mut sharded = ShardedExecutor::non_shared(&c, &w, 4).unwrap();
        sharded.process_batch(&events);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(got.total_count(QueryId(0)) > 0);
        assert_eq!(
            got.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some(),
            want.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some()
        );
    }

    #[test]
    fn per_event_ingestion_flushes_on_threshold() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 500, 5);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        let mut sharded = ShardedExecutor::with_batch_size(&c, &w, &plan, 2, 64).unwrap();
        for e in &events {
            sharded.process(e);
        }
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }

    #[test]
    fn drop_without_finish_aborts_and_joins_workers() {
        // dropping mid-stream must not hang and must not leave router or
        // worker threads draining queued work (the bench DNF path) — in
        // both routing modes
        let (c, w) = grouped_workload();
        let events = stream(&c, 2000, 11);
        let plan = SharingPlan::non_shared();
        for depth in [0usize, 2] {
            let mut sharded = ShardedExecutor::with_pipeline_depth(
                &c,
                &w,
                &plan,
                3,
                64,
                SplitConfig::default(),
                depth,
            )
            .unwrap();
            sharded.process_batch(&events);
            drop(sharded); // joins; a deadlock here fails the test by timeout
        }
    }

    #[test]
    fn flush_recycles_batch_bodies_and_row_lists() {
        // many small flushes: after the pipeline warms up, batch bodies
        // and row lists circulate through the pools instead of being
        // reallocated (asserted indirectly: results stay exact and the
        // pools are non-empty mid-run)
        let (c, w) = grouped_workload();
        let events = stream(&c, 3000, 7);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        let mut sharded = ShardedExecutor::with_batch_size(&c, &w, &plan, 2, 32).unwrap();
        sharded.process_batch(&events);
        assert!(
            !sharded.batch_pool.is_empty(),
            "flushed batch bodies are pooled for reuse"
        );
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }

    #[test]
    fn env_override_picks_the_default_depth() {
        // no env manipulation (tests run in parallel): just pin the
        // compiled-in default and the explicit-constructor contract
        assert_eq!(DEFAULT_PIPELINE_DEPTH, 2);
        let (c, w) = grouped_workload();
        let sharded = ShardedExecutor::non_shared(&c, &w, 2).unwrap();
        assert_eq!(sharded.pipeline_depth(), default_pipeline_depth());
    }

    #[test]
    fn multi_router_plane_matches_sequential() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 5000, 23);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        for routers in [2usize, 4] {
            let mut sharded = ShardedExecutor::with_options(
                &c,
                &w,
                &plan,
                3,
                ShardedOptions {
                    batch_size: 128,
                    pipeline_depth: 2,
                    routers,
                    ..ShardedOptions::default()
                },
            )
            .unwrap();
            assert_eq!(sharded.n_routers(), routers);
            sharded.process_batch(&events);

            // barrier-sync so the per-router counters cover every batch:
            // ingest fans each batch to the whole plane, so every router
            // routes the same batch count
            let _ = sharded.split_snapshot();
            let stats = sharded.router_stats();
            assert_eq!(stats.len(), routers);
            let batches = stats[0].batches_routed;
            assert!(batches > 0, "routers saw traffic");
            assert!(
                stats.iter().all(|s| s.batches_routed == batches),
                "fan-out reaches every router equally: {stats:?}"
            );

            let (got, matched, _) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "{routers}-router plane diverges from sequential"
            );
            assert_eq!(matched, want_matched, "{routers} routers: matched count");
        }
    }

    #[test]
    #[should_panic(expected = "a multi-router plane requires a pipelined ingest stage")]
    fn multi_router_plane_rejects_inline_routing() {
        let (c, w) = grouped_workload();
        let _ = ShardedExecutor::with_options(
            &c,
            &w,
            &SharingPlan::non_shared(),
            2,
            ShardedOptions {
                pipeline_depth: 0,
                routers: 2,
                ..ShardedOptions::default()
            },
        );
    }

    #[test]
    fn harvest_then_finish_equals_uninterrupted_run() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 4000, 13);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        for depth in [0usize, 2] {
            let mut sharded = ShardedExecutor::with_pipeline_depth(
                &c,
                &w,
                &plan,
                3,
                64,
                SplitConfig::default(),
                depth,
            )
            .unwrap();
            let (head, tail) = events.split_at(events.len() / 2);
            sharded.process_batch(head);
            let mut drained = sharded.harvest_results().expect("first harvest");
            let mid = drained.len();
            sharded.process_batch(tail);
            drained.merge(sharded.harvest_results().expect("second harvest"));
            drained.merge(sharded.finish());
            assert!(
                drained.semantically_eq(&want, 1e-9),
                "depth {depth}: harvested epochs + finish diverge \
                 ({} vs {} results)",
                drained.len(),
                want.len(),
            );
            assert!(
                mid > 0,
                "depth {depth}: mid-stream harvest yields closed windows"
            );
        }
    }

    #[test]
    fn checkpoint_and_resume_match_uninterrupted_run() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 4000, 37);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        for depth in [0usize, 2] {
            let dir = test_dir(&format!("resume-{depth}"));
            let options = ShardedOptions {
                batch_size: 128,
                pipeline_depth: depth,
                checkpoint: Some(CheckpointConfig::every(&dir, 4)),
                ..ShardedOptions::default()
            };
            let written_before = sharon_metrics::checkpoints_written();
            let mut sharded =
                ShardedExecutor::with_options(&c, &w, &plan, 3, options.clone()).unwrap();
            sharded.process_batch(&events[..2400]);
            assert!(
                sharon_metrics::checkpoints_written() >= written_before + 4,
                "periodic checkpoints were taken"
            );
            drop(sharded); // simulated crash: buffered + post-checkpoint state lost

            let (mut resumed, offset) = ShardedExecutor::resume(&c, &w, &plan, 3, options).unwrap();
            assert_eq!(
                offset, 2048,
                "depth {depth}: latest complete checkpoint is 16 batches of 128"
            );
            assert_eq!(resumed.events_sent(), offset);
            resumed.process_batch(&events[offset as usize..]);
            let (got, matched, _) = resumed.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "depth {depth}: resumed run diverges from uninterrupted"
            );
            assert_eq!(matched, want_matched, "depth {depth}: matched count");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn worker_panic_cancels_the_run_and_finish_fails_fast() {
        let (c, w) = grouped_workload();
        let plan = SharingPlan::non_shared();
        for depth in [0usize, 2] {
            let events = stream(&c, 2000, 11);
            let options = ShardedOptions {
                batch_size: 64,
                pipeline_depth: depth,
                fault: Some(FaultPlan::PanicWorker { batch: 2, shard: 1 }),
                ..ShardedOptions::default()
            };
            let sharded = ShardedExecutor::with_options(&c, &w, &plan, 3, options).unwrap();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let mut sharded = sharded;
                sharded.process_batch(&events);
                sharded.finish()
            }));
            let err = result.expect_err("a panicked worker must fail the run");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("worker shard"),
                "depth {depth}: unexpected panic message: {msg:?}"
            );
        }
    }

    #[test]
    fn drop_fault_stops_ingest_and_fails_finish() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 1000, 7);
        let plan = SharingPlan::non_shared();
        let options = ShardedOptions {
            batch_size: 64,
            pipeline_depth: 2,
            fault: Some(FaultPlan::Drop { batch: 3 }),
            ..ShardedOptions::default()
        };
        let mut sharded = ShardedExecutor::with_options(&c, &w, &plan, 2, options).unwrap();
        sharded.process_batch(&events);
        assert_eq!(
            sharded.events_sent(),
            3 * 64,
            "ingest stops dead at the faulted batch"
        );
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || sharded.finish()));
        let err = result.expect_err("a dropped run must not report results");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("injected fault"),
            "unexpected panic message: {msg:?}"
        );
    }

    #[test]
    fn resume_without_a_checkpoint_reports_missing() {
        let (c, w) = grouped_workload();
        let plan = SharingPlan::non_shared();

        // an empty (just-created) store has nothing to resume from
        let dir = test_dir("empty-store");
        let options = ShardedOptions {
            checkpoint: Some(CheckpointConfig::every(&dir, 8)),
            ..ShardedOptions::default()
        };
        let err = ShardedExecutor::resume(&c, &w, &plan, 2, options)
            .err()
            .expect("resume from an empty store must fail");
        assert!(
            matches!(err, CheckpointError::Missing),
            "expected Missing, got {err:?}"
        );

        // resuming without a configured store is a usage error
        let err = ShardedExecutor::resume(&c, &w, &plan, 2, ShardedOptions::default())
            .err()
            .expect("resume without a store must fail");
        assert!(
            matches!(err, CheckpointError::Mismatch(_)),
            "expected Mismatch, got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_tier_keeps_sharded_results_exact() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 3000, 53);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let dir = test_dir("spill");
        let plan = SharingPlan::non_shared();
        let options = ShardedOptions {
            batch_size: 128,
            spill: Some(SpillConfig::new(&dir, 8)),
            ..ShardedOptions::default()
        };
        let spills_before = sharon_metrics::group_spills();
        let mut sharded = ShardedExecutor::with_options(&c, &w, &plan, 2, options).unwrap();
        sharded.process_batch(&events);
        let got = sharded.finish();
        assert!(
            got.semantically_eq(&want, 1e-9),
            "spilled run diverges from sequential"
        );
        assert!(
            sharon_metrics::group_spills() > spills_before,
            "cold groups actually paged out"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
