//! The sharded parallel runtime.
//!
//! `GROUP BY` partitions are independent by construction — "a result is
//! returned per group and per window" (Definition 2) and no engine state is
//! ever shared across groups — and compiled partitions (sharing-signature
//! classes, §7.2) never interact either. The Sharon executor is therefore
//! embarrassingly parallel along two axes, and [`ShardedExecutor`] exploits
//! both:
//!
//! * **group axis** — every worker shard owns, for each compiled
//!   partition, the disjoint slice of groups whose key hash lands on its
//!   index (see [`crate::engine::ShardSlice`]);
//! * **partition axis** — the global (no `GROUP BY`) runtime of partition
//!   `p` is assigned to worker `p mod N`, spreading independent partition
//!   engines over the shards.
//!
//! Each worker runs the ordinary sequential [`Engine`] over its slice, so
//! sharding is a pure work partition: shard results are disjoint and merge
//! exactly. [`ShardedExecutor::finish`] merges them in deterministic shard
//! order; determinism tests assert `semantically_eq` with the sequential
//! engine for every shard count.
//!
//! Events are fanned out in batches ([`Arc`]-shared, no per-worker copies)
//! over bounded channels, giving backpressure against slow shards. Every
//! worker performs routing, predicate evaluation, and key extraction for
//! every event and drops the groups it does not own — that duplicated
//! prefix is the cheap part of the per-event path, and skipping a central
//! routing step keeps the fan-out allocation-free and contention-free.
//!
//! [`Engine`]: crate::engine::Engine

use crate::compile::{compile, CompileError};
use crate::engine::{EngineKind, ShardSlice};
use crate::results::ExecutorResults;
use sharon_query::{SharingPlan, Workload};
use sharon_types::{Catalog, Event, EventStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default number of events buffered before a batch is fanned out.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// Bounded depth of each worker's batch queue (backpressure).
const CHANNEL_DEPTH: usize = 4;

/// What each worker reports back when its channel closes.
struct ShardReport {
    results: ExecutorResults,
    events_matched: u64,
    cell_count: usize,
}

struct ShardWorker {
    sender: SyncSender<Arc<Vec<Event>>>,
    handle: JoinHandle<ShardReport>,
    /// Events this shard has matched so far, published after every batch
    /// so [`ShardedExecutor::events_matched`] can report live progress.
    matched: Arc<AtomicU64>,
}

/// A parallel executor that hash-partitions work across `N` worker shards.
///
/// Construction compiles the workload exactly like [`crate::Executor`];
/// each worker owns one [`ShardSlice`] of every compiled partition.
/// Events are accepted one at a time or in batches and flushed to the
/// workers in [`Arc`]-shared batches; [`ShardedExecutor::finish`] drains
/// the pipeline and merges the disjoint shard results.
pub struct ShardedExecutor {
    workers: Vec<ShardWorker>,
    buffer: Vec<Event>,
    batch_size: usize,
    n_shards: usize,
    /// Incremented by `flush` as batches are fanned out; see
    /// [`ShardedExecutor::events_sent`].
    events_sent: u64,
}

impl ShardedExecutor {
    /// Compile `workload` under `plan` and spawn `n_shards` worker threads.
    pub fn new(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::with_batch_size(catalog, workload, plan, n_shards, DEFAULT_BATCH_SIZE)
    }

    /// The Non-Shared (A-Seq) sharded executor.
    pub fn non_shared(
        catalog: &Catalog,
        workload: &Workload,
        n_shards: usize,
    ) -> Result<Self, CompileError> {
        Self::new(catalog, workload, &SharingPlan::non_shared(), n_shards)
    }

    /// [`ShardedExecutor::new`] with an explicit flush threshold.
    pub fn with_batch_size(
        catalog: &Catalog,
        workload: &Workload,
        plan: &SharingPlan,
        n_shards: usize,
        batch_size: usize,
    ) -> Result<Self, CompileError> {
        assert!(n_shards >= 1, "need at least one shard");
        let batch_size = batch_size.max(1);
        let parts = compile(catalog, workload, plan)?;

        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let engines: Vec<EngineKind> = parts
                .iter()
                .enumerate()
                .map(|(pi, part)| {
                    let slice = ShardSlice {
                        index: shard as u32,
                        of: n_shards as u32,
                        owns_global: pi % n_shards == shard,
                    };
                    EngineKind::for_partition(part.clone(), Some(slice))
                })
                .collect();
            let (sender, receiver) = sync_channel::<Arc<Vec<Event>>>(CHANNEL_DEPTH);
            let matched = Arc::new(AtomicU64::new(0));
            let matched_pub = Arc::clone(&matched);
            let handle = std::thread::Builder::new()
                .name(format!("sharon-shard-{shard}"))
                .spawn(move || {
                    let mut engines = engines;
                    while let Ok(batch) = receiver.recv() {
                        for engine in &mut engines {
                            engine.process_batch(&batch);
                        }
                        matched_pub.store(
                            engines.iter().map(EngineKind::events_matched).sum(),
                            Ordering::Relaxed,
                        );
                    }
                    let events_matched = engines.iter().map(EngineKind::events_matched).sum();
                    let cell_count = engines
                        .iter()
                        .map(|e| match e {
                            EngineKind::Count(en) => en.cell_count(),
                            EngineKind::Stats(en) => en.cell_count(),
                        })
                        .sum();
                    let mut results = ExecutorResults::new();
                    for engine in engines {
                        results.merge(engine.finish());
                    }
                    ShardReport {
                        results,
                        events_matched,
                        cell_count,
                    }
                })
                .expect("spawn shard worker thread");
            workers.push(ShardWorker {
                sender,
                handle,
                matched,
            });
        }

        Ok(ShardedExecutor {
            workers,
            buffer: Vec::with_capacity(batch_size),
            batch_size,
            n_shards,
            events_sent: 0,
        })
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Events fanned out to the workers so far (excluding the unflushed
    /// buffer).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Events that passed routing, predicates, grouping, and shard
    /// ownership, summed over shards. Workers publish after each batch,
    /// so this trails ingestion by at most the in-flight batches (it is
    /// exact after [`ShardedExecutor::finish_with_stats`], which reports
    /// the final count).
    pub fn events_matched(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.matched.load(Ordering::Relaxed))
            .sum()
    }

    /// Enqueue one event (flushed when the batch threshold is reached).
    pub fn process(&mut self, e: &Event) {
        self.buffer.push(e.clone());
        if self.buffer.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Enqueue a time-ordered batch of events.
    pub fn process_batch(&mut self, events: &[Event]) {
        self.buffer.extend_from_slice(events);
        if self.buffer.len() >= self.batch_size {
            self.flush();
        }
    }

    /// Drain a stream through the executor.
    pub fn run(&mut self, mut stream: impl EventStream) -> &mut Self {
        loop {
            let free = self.batch_size.saturating_sub(self.buffer.len()).max(1);
            if stream.next_batch(free, &mut self.buffer) == 0 {
                break;
            }
            if self.buffer.len() >= self.batch_size {
                self.flush();
            }
        }
        self
    }

    /// Fan the buffered events out to every worker.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.events_sent += self.buffer.len() as u64;
        let batch = Arc::new(std::mem::replace(
            &mut self.buffer,
            Vec::with_capacity(self.batch_size),
        ));
        for worker in &self.workers {
            worker
                .sender
                .send(Arc::clone(&batch))
                .expect("shard worker terminated early");
        }
    }

    /// Flush remaining events, stop the workers, and merge their results
    /// in deterministic shard order. Shard result sets are disjoint (each
    /// group is owned by exactly one shard), so the merge is exact.
    pub fn finish(self) -> ExecutorResults {
        self.finish_with_stats().0
    }

    /// [`ShardedExecutor::finish`] plus runtime statistics:
    /// `(results, events_matched, peak cell count)`.
    pub fn finish_with_stats(mut self) -> (ExecutorResults, u64, usize) {
        self.flush();
        let workers = std::mem::take(&mut self.workers);
        // close every channel before joining so all shards drain in parallel
        let handles: Vec<JoinHandle<ShardReport>> = workers
            .into_iter()
            .map(|ShardWorker { sender, handle, .. }| {
                drop(sender);
                handle
            })
            .collect();
        let mut results = ExecutorResults::new();
        let mut matched = 0u64;
        let mut cells = 0usize;
        for handle in handles {
            let report = handle.join().expect("shard worker panicked");
            results.merge(report.results);
            matched += report.events_matched;
            cells += report.cell_count;
        }
        (results, matched, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Executor;
    use sharon_query::{parse_workload, QueryId};
    use sharon_types::{GroupKey, Schema, Timestamp, Value};

    fn grouped_workload() -> (Catalog, Workload) {
        let mut c = Catalog::new();
        c.register_with_schema("A", Schema::new(["g", "v"]));
        c.register_with_schema("B", Schema::new(["g", "v"]));
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN SUM(B.v) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms",
            ],
        )
        .unwrap();
        (c, w)
    }

    fn stream(c: &Catalog, n: u64, groups: i64) -> Vec<Event> {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        // consecutive (A, B) pairs share a group, so matches exist for any
        // group cardinality; pairs from different groups interleave freely
        (0..n)
            .map(|i| {
                let ty = if i % 2 == 0 { a } else { b };
                Event::with_attrs(
                    ty,
                    Timestamp(i),
                    vec![
                        Value::Int((i / 2) as i64 % groups),
                        Value::Int((i % 7) as i64),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn matches_sequential_across_shard_counts() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 4000, 37);

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want_matched = sequential.events_matched();
        let want = sequential.finish();
        assert!(!want.is_empty());

        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedExecutor::non_shared(&c, &w, shards).unwrap();
            for chunk in events.chunks(97) {
                sharded.process_batch(chunk);
            }
            let (got, matched, _cells) = sharded.finish_with_stats();
            assert!(
                got.semantically_eq(&want, 1e-9),
                "{shards} shards diverge from sequential"
            );
            assert_eq!(matched, want_matched, "{shards} shards: matched count");
        }
    }

    #[test]
    fn global_partitions_are_owned_once() {
        let mut c = Catalog::new();
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 20 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let events: Vec<Event> = (0..100)
            .map(|i| Event::new(if i % 2 == 0 { a } else { b }, Timestamp(i)))
            .collect();

        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let mut sharded = ShardedExecutor::non_shared(&c, &w, 4).unwrap();
        sharded.process_batch(&events);
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
        assert!(got.total_count(QueryId(0)) > 0);
        assert_eq!(
            got.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some(),
            want.get(QueryId(0), &GroupKey::Global, Timestamp(20))
                .is_some()
        );
    }

    #[test]
    fn per_event_ingestion_flushes_on_threshold() {
        let (c, w) = grouped_workload();
        let events = stream(&c, 500, 5);
        let mut sequential = Executor::non_shared(&c, &w).unwrap();
        sequential.process_batch(&events);
        let want = sequential.finish();

        let plan = SharingPlan::non_shared();
        let mut sharded = ShardedExecutor::with_batch_size(&c, &w, &plan, 2, 64).unwrap();
        for e in &events {
            sharded.process(e);
        }
        let got = sharded.finish();
        assert!(got.semantically_eq(&want, 1e-9));
    }
}
