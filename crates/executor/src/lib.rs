//! # sharon-executor
//!
//! The online event sequence aggregation executors of the Sharon system
//! (Sections 3.2–3.3 of the paper):
//!
//! * the **Non-Shared method** — each query aggregated independently by the
//!   A-Seq kernel: one aggregate per pattern prefix per live START event,
//!   with sliding-window expiration (construct [`Executor::non_shared`]);
//! * the **Shared method** — shared patterns aggregated once, with each
//!   query combining the shared aggregates with its private prefix/suffix
//!   aggregates via snapshot-at-START × completions (construct
//!   [`Executor::new`] with an optimizer-produced
//!   [`sharon_query::SharingPlan`]).
//!
//! Neither method ever constructs an event sequence — this is the "online"
//! property that separates Sharon and A-Seq from the two-step approaches
//! (Flink, SPASS; see the `sharon-twostep` crate for those baselines).

#![warn(missing_docs)]

pub mod agg;
pub mod chainlog;
pub mod checkpoint;
pub mod compile;
pub mod config;
pub mod engine;
pub mod event_time;
pub mod partial;
pub mod processor;
mod proptests;
pub mod results;
pub mod router;
pub mod runner;
pub mod scan;
pub mod sharded;
pub mod spill;
pub mod spsc;
pub mod winvec;

pub use agg::{Aggregate, Contribution, CountCell, OutputKind, PartialAgg, StatsCell};
pub use chainlog::ChainLog;
pub use checkpoint::{
    default_checkpoint_config, CheckpointConfig, CheckpointData, CheckpointError, CheckpointStore,
    FaultPlan, StateError, StateReader, StateWriter,
};
pub use compile::{compile, CompileError, CompiledPartition};
pub use config::{EnvError, RuntimeOptions};
pub use engine::{Engine, EngineKind, Executor, ShardSlice};
pub use event_time::{PendingRow, Reorder};
pub use partial::{PartialEntry, PartialResults};
pub use processor::BatchProcessor;
pub use results::ExecutorResults;
pub use router::{
    partition_scopes, split_router_plane, BatchRouter, RouteBatch, RoutedRows, RowFilter,
    SplitConfig, SplitSpec,
};
pub use runner::SegmentRunner;
pub use scan::{scan_mode, set_scan_mode, ScanCounters, ScanKernel, ScanMode};
pub use sharded::{
    default_pipeline_depth, default_routers, prepare_step, RouterStats, ShardProcessor,
    ShardReport, ShardedExecutor, ShardedOptions, DEFAULT_BATCH_SIZE, DEFAULT_PIPELINE_DEPTH,
    DEFAULT_ROUTERS,
};
pub use spill::SpillConfig;
pub use winvec::{Snapshot, WinVec};
