//! Route-once batch routing for the sharded runtime.
//!
//! Under the original fan-out every shard worker re-ran the stateless
//! prefix of the per-event path — routing, predicate evaluation, group-key
//! extraction — for **every** event and dropped the groups it did not own,
//! duplicating that work `N` times. The [`BatchRouter`] runs the prefix
//! exactly once per event on the ingest side: for each compiled partition
//! it evaluates routing and predicates column-wise over the batch, hashes
//! the group key, and appends the row index to the owning shard's list.
//! Workers then call [`crate::Engine::process_routed`] with their lists
//! and only ever touch rows they own.
//!
//! The shard assignment must agree exactly with
//! [`crate::engine::ShardSlice::owns`], which the workers' engines
//! debug-assert: grouped rows go to `(fx_hash_one(key) >> 32) % n_shards`,
//! and the global (no `GROUP BY`) rows of partition `p` go to
//! `p % n_shards` — the shard whose engine was built with `owns_global`.

use crate::compile::CompiledPartition;
use sharon_types::{fx_hash_one, EventBatch, GroupKey, Value};

/// The rows of one batch owned by one shard, per compiled partition:
/// `per_part[p]` lists the row indexes shard-owned for partition `p`.
#[derive(Debug, Default)]
pub struct RoutedRows {
    /// Row-index lists, parallel to the compiled partitions.
    pub per_part: Vec<Vec<u32>>,
}

impl RoutedRows {
    /// True if no partition has any rows for this shard.
    pub fn is_empty(&self) -> bool {
        self.per_part.iter().all(Vec::is_empty)
    }
}

/// Routes whole batches: one stateless prefix evaluation per event,
/// shared by all shards.
pub struct BatchRouter {
    parts: Vec<CompiledPartition>,
    n_shards: usize,
    /// Reused scratch key (clone-free group-key hashing).
    key_scratch: GroupKey,
    vals_scratch: Vec<Value>,
}

impl BatchRouter {
    /// A router for `parts` fanning out across `n_shards` shards.
    pub fn new(parts: Vec<CompiledPartition>, n_shards: usize) -> Self {
        assert!(n_shards >= 1);
        BatchRouter {
            parts,
            n_shards,
            key_scratch: GroupKey::Global,
            vals_scratch: Vec::new(),
        }
    }

    /// The compiled partitions this router serves.
    pub fn partitions(&self) -> &[CompiledPartition] {
        &self.parts
    }

    /// Compute, for every shard, the per-partition row lists of `batch`.
    ///
    /// Rows that do not route into a partition, fail its predicates, or
    /// lack a grouping attribute are dropped here — exactly the events the
    /// engines would drop — so workers receive only rows they will match.
    pub fn route(&mut self, batch: &EventBatch) -> Vec<RoutedRows> {
        self.route_range(batch, 0, batch.len())
    }

    /// [`BatchRouter::route`] restricted to rows `lo..hi` — the zero-copy
    /// ingest path routes consecutive chunks of one shared batch without
    /// ever copying it. Row indexes in the result are absolute.
    pub fn route_range(&mut self, batch: &EventBatch, lo: usize, hi: usize) -> Vec<RoutedRows> {
        let mut out: Vec<RoutedRows> = (0..self.n_shards)
            .map(|_| RoutedRows {
                per_part: (0..self.parts.len()).map(|_| Vec::new()).collect(),
            })
            .collect();
        let tys = &batch.types()[lo..hi];
        for (pi, part) in self.parts.iter().enumerate() {
            let global_owner = pi % self.n_shards;
            for (i, ty) in tys.iter().enumerate() {
                let row = lo + i;
                if !part.routed(*ty) {
                    continue;
                }
                let attrs = batch.attrs(row);
                if !part.predicates_pass(*ty, attrs) {
                    continue;
                }
                let gattrs = &part.group_attrs[ty.index()];
                let shard = if gattrs.is_empty() {
                    global_owner
                } else if self.n_shards == 1 {
                    // single shard: groupability still filters, but no key
                    // needs hashing — every group lands on shard 0
                    if !part.groupable(*ty, attrs) {
                        continue; // ungroupable event
                    }
                    0
                } else {
                    if !part.read_group_key(
                        *ty,
                        attrs,
                        &mut self.vals_scratch,
                        &mut self.key_scratch,
                    ) {
                        continue; // ungroupable event
                    }
                    // high hash bits, matching `ShardSlice::owns` (the low
                    // bits index the owning shard's hash-map buckets)
                    ((fx_hash_one(&self.key_scratch) >> 32) % self.n_shards as u64) as usize
                };
                out[shard].per_part[pi].push(row as u32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::engine::ShardSlice;
    use sharon_query::{parse_workload, SharingPlan};
    use sharon_types::{Catalog, Schema, Timestamp};

    fn setup() -> (Catalog, Vec<CompiledPartition>) {
        let mut c = Catalog::new();
        for n in ["A", "B"] {
            c.register_with_schema(n, Schema::new(["g", "v"]));
        }
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.v > 2 GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        (c, parts)
    }

    fn batch(c: &Catalog, n: u64) -> EventBatch {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut out = EventBatch::new();
        for i in 0..n {
            out.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(i as i64 % 13), Value::Int(i as i64 % 7)],
            );
        }
        out
    }

    #[test]
    fn every_row_routes_to_exactly_the_owning_shard() {
        let (c, parts) = setup();
        let n_shards = 3;
        let mut router = BatchRouter::new(parts.clone(), n_shards);
        let batch = batch(&c, 500);
        let routed = router.route(&batch);
        assert_eq!(routed.len(), n_shards);

        for (pi, _part) in parts.iter().enumerate() {
            let mut seen = vec![0u32; batch.len()];
            for (shard, rows) in routed.iter().enumerate() {
                let slice = ShardSlice {
                    index: shard as u32,
                    of: n_shards as u32,
                    owns_global: pi % n_shards == shard,
                };
                for &row in &rows.per_part[pi] {
                    seen[row as usize] += 1;
                    // the assignment agrees with what the engine would own
                    let gattrs = &parts[pi].group_attrs[batch.ty(row as usize).index()];
                    let key = if gattrs.is_empty() {
                        GroupKey::Global
                    } else {
                        GroupKey::from_values(
                            gattrs
                                .iter()
                                .map(|a| batch.attr(row as usize, *a).unwrap().clone())
                                .collect(),
                        )
                    };
                    assert!(slice.owns(&key), "shard {shard} got a row it does not own");
                }
            }
            assert!(
                seen.iter().all(|&s| s <= 1),
                "partition {pi}: a row reached two shards"
            );
        }
    }

    #[test]
    fn predicate_failures_are_dropped_at_the_router() {
        let (c, parts) = setup();
        let mut router = BatchRouter::new(parts, 2);
        let a = c.lookup("A").unwrap();
        let mut b = EventBatch::new();
        // A.v = 1 fails `A.v > 2` for partition 0 but partition 1 has no
        // predicate on A
        b.push_from(a, Timestamp(0), [Value::Int(5), Value::Int(1)]);
        let routed = router.route(&b);
        let part0: usize = routed.iter().map(|r| r.per_part[0].len()).sum();
        let part1: usize = routed.iter().map(|r| r.per_part[1].len()).sum();
        assert_eq!(part0, 0, "failed predicate dropped at the router");
        assert_eq!(part1, 1, "global partition still gets the row");
    }

    #[test]
    fn empty_batch_routes_to_nothing() {
        let (_, parts) = setup();
        let mut router = BatchRouter::new(parts, 4);
        let routed = router.route(&EventBatch::new());
        assert!(routed.iter().all(RoutedRows::is_empty));
    }
}
