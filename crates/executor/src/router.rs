//! Route-once batch routing for the sharded runtime.
//!
//! Under the original fan-out every shard worker re-ran the stateless
//! prefix of the per-event path — routing, predicate evaluation, group-key
//! extraction — for **every** event and dropped the groups it did not own,
//! duplicating that work `N` times. The [`BatchRouter`] runs the prefix
//! exactly once per event on the ingest side: for each routing scope it
//! evaluates routing and predicates column-wise over the batch, hashes
//! the group key, and appends the row index to the owning shard's list.
//! Workers then consume their lists (`process_routed`) and only ever touch
//! rows they own.
//!
//! The router is generic over [`RowFilter`] — the stateless per-row prefix
//! of one routing *scope*. For the online engines a scope is a
//! [`CompiledPartition`]; the two-step baselines provide their own filters
//! (per query for Flink-like, per sharing-signature partition for
//! SPASS-like), which is what lets the sharded runtime host *any*
//! [`crate::BatchProcessor`].
//!
//! The shard assignment must agree exactly with
//! [`crate::engine::ShardSlice::owns`], which the online workers' engines
//! debug-assert: grouped rows go to `(fx_hash_one(key) >> 32) % n_shards`,
//! and the global (no `GROUP BY`) rows of scope `p` go to
//! `p % n_shards` — the shard whose engine was built with `owns_global`.

use crate::compile::CompiledPartition;
use sharon_types::{fx_hash_one, EventBatch, EventTypeId, GroupKey, Value};

/// The stateless per-row prefix of one routing scope: type routing,
/// predicate evaluation, and group-key extraction. One definition of these
/// semantics is shared by the per-event path, the columnar pre-pass, and
/// the batch router, so the three paths cannot drift apart.
pub trait RowFilter {
    /// True if `ty` routes into this scope at all.
    fn routed(&self, ty: EventTypeId) -> bool;

    /// True if `attrs` pass this scope's predicates on `ty` (a missing
    /// attribute fails). Only called for routed types.
    fn predicates_pass(&self, ty: EventTypeId, attrs: &[Value]) -> bool;

    /// True if every `GROUP BY` attribute of `ty` is present in `attrs`.
    /// Only called for routed types.
    fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool;

    /// Build the group key of a routed row into `key` (reusing the `vals`
    /// scratch buffer), returning `false` for ungroupable rows. With no
    /// `GROUP BY`, writes [`GroupKey::Global`].
    fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool;
}

impl RowFilter for CompiledPartition {
    #[inline]
    fn routed(&self, ty: EventTypeId) -> bool {
        CompiledPartition::routed(self, ty)
    }

    #[inline]
    fn predicates_pass(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        CompiledPartition::predicates_pass(self, ty, attrs)
    }

    #[inline]
    fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        CompiledPartition::groupable(self, ty, attrs)
    }

    #[inline]
    fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool {
        CompiledPartition::read_group_key(self, ty, attrs, vals, key)
    }
}

/// The rows of one batch owned by one shard, per routing scope:
/// `per_part[p]` lists the row indexes shard-owned for scope `p`
/// (a compiled partition, a query, or a signature partition, depending on
/// the hosted processor).
#[derive(Debug, Default)]
pub struct RoutedRows {
    /// Row-index lists, parallel to the routing scopes.
    pub per_part: Vec<Vec<u32>>,
}

impl RoutedRows {
    /// True if no scope has any rows for this shard.
    pub fn is_empty(&self) -> bool {
        self.per_part.iter().all(Vec::is_empty)
    }

    /// Clear every row list, keeping capacities — the recycling path of
    /// the sharded runtime's return ring.
    pub fn clear(&mut self) {
        for rows in &mut self.per_part {
            rows.clear();
        }
    }

    /// Clear and resize to exactly `n_scopes` lists (retaining existing
    /// list capacities where possible).
    pub fn reset(&mut self, n_scopes: usize) {
        self.clear();
        self.per_part.resize_with(n_scopes, Vec::new);
    }
}

/// Type-erased batch routing: what the sharded runtime's ingest thread
/// drives, one virtual call per batch chunk. Implemented by
/// [`BatchRouter`] for any [`RowFilter`] scope type.
pub trait RouteBatch: Send {
    /// Number of shards this router fans out to.
    fn n_shards(&self) -> usize;

    /// Number of routing scopes (the length of every
    /// [`RoutedRows::per_part`]).
    fn n_scopes(&self) -> usize;

    /// Compute, for every shard, the per-scope row lists of rows
    /// `lo..hi` of `batch` (absolute row indexes). `out` arrives holding
    /// recycled [`RoutedRows`] (possibly fewer than `n_shards`, possibly
    /// dirty); the router resets and tops it up — steady-state routing
    /// allocates nothing beyond row-list growth.
    fn route_range_into(
        &mut self,
        batch: &EventBatch,
        lo: usize,
        hi: usize,
        out: &mut Vec<RoutedRows>,
    );
}

/// Routes whole batches: one stateless prefix evaluation per event,
/// shared by all shards. Generic over the scope type `F` — compiled
/// partitions for the online engines, baseline-provided filters for the
/// two-step strategies.
pub struct BatchRouter<F = CompiledPartition> {
    scopes: Vec<F>,
    n_shards: usize,
    /// Reused scratch key (clone-free group-key hashing).
    key_scratch: GroupKey,
    vals_scratch: Vec<Value>,
}

impl<F: RowFilter> BatchRouter<F> {
    /// A router for `scopes` fanning out across `n_shards` shards.
    pub fn new(scopes: Vec<F>, n_shards: usize) -> Self {
        assert!(n_shards >= 1);
        BatchRouter {
            scopes,
            n_shards,
            key_scratch: GroupKey::Global,
            vals_scratch: Vec::new(),
        }
    }

    /// The routing scopes this router serves.
    pub fn scopes(&self) -> &[F] {
        &self.scopes
    }

    /// Compute, for every shard, the per-scope row lists of `batch`
    /// (convenience wrapper over [`RouteBatch::route_range_into`]).
    pub fn route(&mut self, batch: &EventBatch) -> Vec<RoutedRows> {
        self.route_range(batch, 0, batch.len())
    }

    /// [`BatchRouter::route`] restricted to rows `lo..hi` — the zero-copy
    /// ingest path routes consecutive chunks of one shared batch without
    /// ever copying it. Row indexes in the result are absolute.
    pub fn route_range(&mut self, batch: &EventBatch, lo: usize, hi: usize) -> Vec<RoutedRows> {
        let mut out = Vec::new();
        self.route_range_into(batch, lo, hi, &mut out);
        out
    }

    /// Rows that do not route into a scope, fail its predicates, or lack a
    /// grouping attribute are dropped here — exactly the rows the stateful
    /// side would drop — so workers receive only rows they will match.
    /// See [`RouteBatch::route_range_into`] for the recycling contract of
    /// `out`.
    pub fn route_range_into(
        &mut self,
        batch: &EventBatch,
        lo: usize,
        hi: usize,
        out: &mut Vec<RoutedRows>,
    ) {
        out.truncate(self.n_shards);
        for rows in out.iter_mut() {
            rows.reset(self.scopes.len());
        }
        while out.len() < self.n_shards {
            let mut rows = RoutedRows::default();
            rows.reset(self.scopes.len());
            out.push(rows);
        }
        let tys = &batch.types()[lo..hi];
        for (pi, scope) in self.scopes.iter().enumerate() {
            let global_owner = pi % self.n_shards;
            for (i, ty) in tys.iter().enumerate() {
                let row = lo + i;
                if !scope.routed(*ty) {
                    continue;
                }
                let attrs = batch.attrs(row);
                if !scope.predicates_pass(*ty, attrs) {
                    continue;
                }
                let shard = if self.n_shards == 1 {
                    // single shard: groupability still filters, but no key
                    // needs hashing — every row lands on shard 0
                    if !scope.groupable(*ty, attrs) {
                        continue; // ungroupable event
                    }
                    0
                } else {
                    if !scope.read_group_key(
                        *ty,
                        attrs,
                        &mut self.vals_scratch,
                        &mut self.key_scratch,
                    ) {
                        continue; // ungroupable event
                    }
                    match &self.key_scratch {
                        GroupKey::Global => global_owner,
                        // high hash bits, matching `ShardSlice::owns` (the
                        // low bits index the owning shard's hash-map
                        // buckets)
                        key => ((fx_hash_one(key) >> 32) % self.n_shards as u64) as usize,
                    }
                };
                out[shard].per_part[pi].push(row as u32);
            }
        }
    }
}

impl<F: RowFilter + Send> RouteBatch for BatchRouter<F> {
    fn n_shards(&self) -> usize {
        self.n_shards
    }

    fn n_scopes(&self) -> usize {
        self.scopes.len()
    }

    fn route_range_into(
        &mut self,
        batch: &EventBatch,
        lo: usize,
        hi: usize,
        out: &mut Vec<RoutedRows>,
    ) {
        BatchRouter::route_range_into(self, batch, lo, hi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::engine::ShardSlice;
    use sharon_query::{parse_workload, SharingPlan};
    use sharon_types::{Catalog, Schema, Timestamp};

    fn setup() -> (Catalog, Vec<CompiledPartition>) {
        let mut c = Catalog::new();
        for n in ["A", "B"] {
            c.register_with_schema(n, Schema::new(["g", "v"]));
        }
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.v > 2 GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        (c, parts)
    }

    fn batch(c: &Catalog, n: u64) -> EventBatch {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut out = EventBatch::new();
        for i in 0..n {
            out.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(i as i64 % 13), Value::Int(i as i64 % 7)],
            );
        }
        out
    }

    #[test]
    fn every_row_routes_to_exactly_the_owning_shard() {
        let (c, parts) = setup();
        let n_shards = 3;
        let mut router = BatchRouter::new(parts.clone(), n_shards);
        let batch = batch(&c, 500);
        let routed = router.route(&batch);
        assert_eq!(routed.len(), n_shards);

        for (pi, _part) in parts.iter().enumerate() {
            let mut seen = vec![0u32; batch.len()];
            for (shard, rows) in routed.iter().enumerate() {
                let slice = ShardSlice {
                    index: shard as u32,
                    of: n_shards as u32,
                    owns_global: pi % n_shards == shard,
                };
                for &row in &rows.per_part[pi] {
                    seen[row as usize] += 1;
                    // the assignment agrees with what the engine would own
                    let gattrs = &parts[pi].group_attrs[batch.ty(row as usize).index()];
                    let key = if gattrs.is_empty() {
                        GroupKey::Global
                    } else {
                        GroupKey::from_values(
                            gattrs
                                .iter()
                                .map(|a| batch.attr(row as usize, *a).unwrap().clone())
                                .collect(),
                        )
                    };
                    assert!(slice.owns(&key), "shard {shard} got a row it does not own");
                }
            }
            assert!(
                seen.iter().all(|&s| s <= 1),
                "partition {pi}: a row reached two shards"
            );
        }
    }

    #[test]
    fn predicate_failures_are_dropped_at_the_router() {
        let (c, parts) = setup();
        let mut router = BatchRouter::new(parts, 2);
        let a = c.lookup("A").unwrap();
        let mut b = EventBatch::new();
        // A.v = 1 fails `A.v > 2` for partition 0 but partition 1 has no
        // predicate on A
        b.push_from(a, Timestamp(0), [Value::Int(5), Value::Int(1)]);
        let routed = router.route(&b);
        let part0: usize = routed.iter().map(|r| r.per_part[0].len()).sum();
        let part1: usize = routed.iter().map(|r| r.per_part[1].len()).sum();
        assert_eq!(part0, 0, "failed predicate dropped at the router");
        assert_eq!(part1, 1, "global partition still gets the row");
    }

    #[test]
    fn empty_batch_routes_to_nothing() {
        let (_, parts) = setup();
        let mut router = BatchRouter::new(parts, 4);
        let routed = router.route(&EventBatch::new());
        assert!(routed.iter().all(RoutedRows::is_empty));
    }

    #[test]
    fn recycled_lists_are_reset_before_reuse() {
        let (c, parts) = setup();
        let mut router = BatchRouter::new(parts, 2);
        let b = batch(&c, 100);
        let mut out = router.route(&b);
        let want: Vec<Vec<Vec<u32>>> = out.iter().map(|r| r.per_part.clone()).collect();
        // dirty the recycled lists, then re-route into them: results and
        // capacities must be identical to a fresh route
        router.route_range_into(&b, 0, b.len(), &mut out);
        let got: Vec<Vec<Vec<u32>>> = out.iter().map(|r| r.per_part.clone()).collect();
        assert_eq!(got, want, "recycled routing must equal fresh routing");
        // shrinking the pool still works: route with fewer recycled lists
        out.truncate(1);
        router.route_range_into(&b, 0, b.len(), &mut out);
        let got: Vec<Vec<Vec<u32>>> = out.iter().map(|r| r.per_part.clone()).collect();
        assert_eq!(got, want);
    }
}
