//! Route-once batch routing for the sharded runtime, with **skew-aware
//! hot-group splitting**.
//!
//! Under the original fan-out every shard worker re-ran the stateless
//! prefix of the per-event path — routing, predicate evaluation, group-key
//! extraction — for **every** event and dropped the groups it did not own,
//! duplicating that work `N` times. The [`BatchRouter`] runs the prefix
//! exactly once per event on the ingest side: for each routing scope it
//! evaluates routing and predicates column-wise over the batch, hashes
//! the group key, and appends the row index to the owning shard's list.
//! Workers then consume their lists (`process_routed`) and only ever touch
//! rows they own.
//!
//! # Hot-group splitting
//!
//! Hash-pinning every group to one shard caps throughput at single-core
//! speed whenever the group distribution is skewed (a Zipfian `GROUP BY`
//! is the common case in real traffic): the hot group's shard saturates
//! while the rest idle. The router therefore tracks per-group row counts
//! with a cheap periodically-decayed counter and, when one group exceeds
//! the hotness threshold (see [`SplitConfig`]), **splits** it:
//!
//! * rows of *final-only* types (their only roles fold completed
//!   sequences into the final per-window accumulators — see
//!   [`crate::CompiledPartition::split_spec`]) are **round-robined**
//!   across all shards; every shard accumulates per-window
//!   *sub-aggregates* of the split group which a merge step combines at
//!   the end of the run ([`crate::PartialResults`]);
//! * all other rows (anything that writes runner or chain state) are
//!   **broadcast**: one shard receives the row as a normal ("full") row,
//!   every other shard receives it as a *state-only* replica, so all
//!   shards evolve identical evaluation state for the split group while
//!   final folds — the expensive part on a hot group — happen exactly
//!   once globally.
//!
//! The scheme is exact because every state mutation in the engines is a
//! deterministic function of the (ordered) state rows and their
//! timestamps; final folds only *read* that state. Two details keep the
//! transition exact as well: a newly split group goes through a
//! **warm-up** of one window length (`within`), during which all
//! final-only rows still go to the hash owner (the only shard with
//! pre-split state) while state rows already broadcast — after `within`,
//! everything the replicas missed has expired; and engines are notified of
//! new splits in-band ([`RoutedRows::splits`]) so the owner switches its
//! emission for that group to sub-aggregates before any post-split window
//! closes.
//!
//! Splitting is *per scope* and opt-in via [`RowFilter::split_spec`]: the
//! online engines' [`CompiledPartition`] provides a spec, the two-step
//! baselines keep the `None` default and are never split — they keep
//! working unchanged through [`crate::ShardedExecutor::from_parts`].
//!
//! The shard assignment of non-split groups must agree exactly with
//! [`crate::engine::ShardSlice::owns`], which the online workers' engines
//! debug-assert: grouped rows go to `(fx_hash_one(key) >> 32) % n_shards`,
//! and the global (no `GROUP BY`) rows of scope `p` go to
//! `p % n_shards` — the shard whose engine was built with `owns_global`.

use crate::checkpoint::{StateError, StateReader, StateWriter};
use crate::compile::CompiledPartition;
use crate::scan::{scan_mode, ScanCounters, ScanKernel, ScanMode};
use sharon_types::{fx_hash_one, EventBatch, EventTypeId, FxHashMap, GroupKey, Timestamp, Value};
use std::sync::Arc;

/// The stateless per-row prefix of one routing scope: type routing,
/// predicate evaluation, and group-key extraction. One definition of these
/// semantics is shared by the per-event path, the columnar pre-pass, and
/// the batch router, so the three paths cannot drift apart.
pub trait RowFilter {
    /// True if `ty` routes into this scope at all.
    fn routed(&self, ty: EventTypeId) -> bool;

    /// True if `attrs` pass this scope's predicates on `ty` (a missing
    /// attribute fails). Only called for routed types.
    fn predicates_pass(&self, ty: EventTypeId, attrs: &[Value]) -> bool;

    /// True if every `GROUP BY` attribute of `ty` is present in `attrs`.
    /// Only called for routed types.
    fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool;

    /// Build the group key of a routed row into `key` (reusing the `vals`
    /// scratch buffer), returning `false` for ungroupable rows. With no
    /// `GROUP BY`, writes [`GroupKey::Global`].
    fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool;

    /// Role classification enabling hot-group splitting for this scope.
    /// `None` (the default) pins every group to its hash owner — the
    /// behaviour the two-step baselines rely on.
    fn split_spec(&self) -> Option<SplitSpec> {
        None
    }

    /// Compile this scope's stateless prefix into a vectorized
    /// [`ScanKernel`], if the scope supports it. `None` (the default)
    /// keeps the scalar per-row interpreter. A kernel must select exactly
    /// the rows the scalar [`RowFilter::routed`] / `predicates_pass` /
    /// `groupable` chain would.
    fn scan_kernel(&self) -> Option<ScanKernel> {
        None
    }

    /// Estimated per-batch routing cost of this scope, used to balance
    /// scopes across the routing plane's threads (see
    /// [`partition_scopes`]): predicate clause count × routed-type
    /// density. Only relative magnitudes matter; the default weighs every
    /// scope equally.
    fn route_cost(&self) -> f64 {
        1.0
    }
}

impl RowFilter for CompiledPartition {
    #[inline]
    fn routed(&self, ty: EventTypeId) -> bool {
        CompiledPartition::routed(self, ty)
    }

    #[inline]
    fn predicates_pass(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        CompiledPartition::predicates_pass(self, ty, attrs)
    }

    #[inline]
    fn groupable(&self, ty: EventTypeId, attrs: &[Value]) -> bool {
        CompiledPartition::groupable(self, ty, attrs)
    }

    #[inline]
    fn read_group_key(
        &self,
        ty: EventTypeId,
        attrs: &[Value],
        vals: &mut Vec<Value>,
        key: &mut GroupKey,
    ) -> bool {
        CompiledPartition::read_group_key(self, ty, attrs, vals, key)
    }

    fn split_spec(&self) -> Option<SplitSpec> {
        Some(CompiledPartition::split_spec(self))
    }

    fn scan_kernel(&self) -> Option<ScanKernel> {
        Some(CompiledPartition::scan_kernel(self))
    }

    fn route_cost(&self) -> f64 {
        let total_types = self.routes.len().max(1);
        let routed_types = self.routes.iter().filter(|r| r.is_some()).count();
        let clauses: usize = self.predicates.iter().map(Vec::len).sum();
        (1.0 + clauses as f64) * (routed_types as f64 / total_types as f64).max(f64::MIN_POSITIVE)
    }
}

/// Per-type role classification of one routing scope, used to split hot
/// groups (see the module docs and
/// [`crate::CompiledPartition::split_spec`]).
#[derive(Debug, Clone)]
pub struct SplitSpec {
    /// Per event type id (dense): `true` if rows of the type only fold
    /// final aggregates (round-robin them), `false` if they write
    /// evaluation state (broadcast them).
    pub final_only: Vec<bool>,
    /// Warm-up after a split decision, in milliseconds — the scope's
    /// window length, after which the replicas' state is complete.
    pub warmup_ms: u64,
}

/// Tuning of the hot-group detector.
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Master switch (splitting is on by default; single-shard routers
    /// never split regardless).
    pub enabled: bool,
    /// A group must reach this many (decayed) rows before it can split —
    /// the noise floor. Note the interaction with [`SplitConfig::decay_period`]:
    /// a group's decayed counter converges to at most `2 × decay_period`
    /// under sustained traffic, so a `min_rows` above that ceiling
    /// effectively disables splitting.
    pub min_rows: u32,
    /// A group is hot when its decayed count exceeds this fraction of the
    /// scope's decayed total. `0.0` selects the automatic threshold
    /// `1.2 / n_shards` — only groups genuinely exceeding one shard's
    /// fair share split, so a uniform distribution (where hash pinning is
    /// already balanced) never pays broadcast replication.
    pub hot_fraction: f64,
    /// Counters are halved every this many routed rows per scope, so
    /// hotness reflects recent traffic instead of the whole run.
    pub decay_period: u32,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            enabled: true,
            min_rows: 1024,
            hot_fraction: 0.0,
            decay_period: 8192,
        }
    }
}

impl SplitConfig {
    /// A disabled configuration: every group stays hash-pinned.
    pub fn disabled() -> Self {
        SplitConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// An aggressive configuration for tests: tiny noise floor so small
    /// synthetic streams exercise the split path.
    pub fn eager(min_rows: u32) -> Self {
        SplitConfig {
            enabled: true,
            min_rows,
            hot_fraction: 0.0,
            decay_period: 8192,
        }
    }
}

/// The split state of one hot group.
#[derive(Debug)]
struct HotGroup {
    /// The group's key, kept for the unsplit notice when the group cools
    /// back down (split groups are few, so the clone is cheap).
    key: GroupKey,
    /// Round-robin of final-only rows begins at this timestamp (the
    /// event-time frontier at split decision time + warm-up); before it,
    /// the hash owner keeps all final folds. The base is the frontier,
    /// not the triggering row's own time: under bounded disorder,
    /// owner-only rows routed before the split registered can carry
    /// event times up to the frontier, and round-robin must not begin
    /// until every window containing them has expired on the owner.
    active_at_ms: u64,
    /// Round-robin cursor of final-only rows. Separate from `rr_full` so
    /// interleaved state/final traffic still cycles final folds over all
    /// shards.
    rr_final: u32,
    /// Round-robin cursor of broadcast rows' full copies.
    rr_full: u32,
    /// Decayed row counter while split, feeding cool-down detection (the
    /// pre-split counter lives in [`SplitTracker::counts`]).
    count: u32,
    /// Cool-down deadline: set when the group went cold. From that moment
    /// finals re-pin to the hash owner while state rows keep
    /// broadcasting — so a re-heat before the deadline cancels the
    /// hand-off with replicas still warm — and at the first sweep past
    /// the deadline the group unsplits for real.
    cooling_until: Option<u64>,
}

impl HotGroup {
    fn save_state(&self, w: &mut StateWriter) {
        w.group_key(&self.key);
        w.u64(self.active_at_ms);
        w.u32(self.rr_final);
        w.u32(self.rr_full);
        w.u32(self.count);
        match self.cooling_until {
            Some(t) => {
                w.bool(true);
                w.u64(t);
            }
            None => w.bool(false),
        }
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(HotGroup {
            key: r.group_key()?,
            active_at_ms: r.u64()?,
            rr_final: r.u32()?,
            rr_full: r.u32()?,
            count: r.u32()?,
            cooling_until: if r.bool()? { Some(r.u64()?) } else { None },
        })
    }
}

/// Hot-group tracking of one splittable scope.
struct SplitTracker {
    spec: SplitSpec,
    /// Decayed per-group row counters, keyed by the group-key hash (the
    /// same hash that picks the owning shard; collisions merely conflate
    /// counts, never correctness).
    counts: FxHashMap<u64, u32>,
    /// Decayed counter of the global (no `GROUP BY`) partition.
    global_count: u32,
    /// Decayed total of rows routed through this scope.
    total: u64,
    /// Raw rows since the last decay.
    since_decay: u32,
    /// Split groups, keyed by group-key hash.
    split: FxHashMap<u64, HotGroup>,
    /// Split state of the global partition, if hot.
    split_global: Option<HotGroup>,
    /// Newly split groups to announce to every shard with the next
    /// routed batch.
    notices: Vec<GroupKey>,
    /// Groups that finished cooling down, to announce to every shard
    /// after the current batch's rows.
    unsplit_notices: Vec<GroupKey>,
    /// Resolved hotness fraction (see [`SplitConfig::hot_fraction`]).
    fraction: f64,
    min_rows: u32,
    decay_period: u32,
}

impl SplitTracker {
    fn new(spec: SplitSpec, config: &SplitConfig, n_shards: usize) -> Self {
        let fraction = if config.hot_fraction > 0.0 {
            config.hot_fraction
        } else {
            1.2 / n_shards as f64
        };
        SplitTracker {
            spec,
            counts: FxHashMap::default(),
            global_count: 0,
            total: 0,
            since_decay: 0,
            split: FxHashMap::default(),
            split_global: None,
            notices: Vec::new(),
            unsplit_notices: Vec::new(),
            fraction,
            min_rows: config.min_rows,
            decay_period: config.decay_period.max(2),
        }
    }

    /// Count one routed row of a (non-split) group and decide whether it
    /// just became hot.
    #[inline]
    fn observe(&mut self, hash: Option<u64>) -> bool {
        self.total += 1;
        self.since_decay += 1;
        let count = match hash {
            Some(h) => {
                let c = self.counts.entry(h).or_insert(0);
                *c += 1;
                *c
            }
            None => {
                self.global_count += 1;
                self.global_count
            }
        };
        let hot = count >= self.min_rows && count as f64 >= self.fraction * self.total as f64;
        if self.since_decay >= self.decay_period {
            self.decay();
        }
        hot
    }

    /// Count one routed row of an already-split group. Split rows must
    /// keep feeding the scope total — otherwise each split shrinks the
    /// hotness denominator and merely-warm groups cascade into splits
    /// they never needed.
    #[inline]
    fn observe_split(&mut self) {
        self.total += 1;
        self.since_decay += 1;
        if self.since_decay >= self.decay_period {
            self.decay();
        }
    }

    /// Halve every counter (dropping zeros) so hotness tracks recent
    /// traffic.
    fn decay(&mut self) {
        self.since_decay = 0;
        self.total /= 2;
        self.global_count /= 2;
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        for hot in self.split.values_mut() {
            hot.count /= 2;
        }
        if let Some(hot) = &mut self.split_global {
            hot.count /= 2;
        }
    }

    /// Advance the cool-down state machine of every split group to
    /// `now_ms` (the newest routed timestamp). Cold groups enter cooling:
    /// finals re-pin to the owner immediately while state rows keep
    /// broadcasting for one more warm-up window, so a re-heat cancels the
    /// hand-off with the replicas still current. Groups still cold at the
    /// deadline unsplit: their keys are queued as in-band unsplit notices
    /// (delivered to every shard *after* the batch's rows).
    fn sweep_cooldown(&mut self, now_ms: u64) {
        let (min_rows, fraction, total) = (self.min_rows, self.fraction, self.total);
        let warmup = self.spec.warmup_ms;
        let cold =
            |count: u32| count < min_rows / 2 || (count as f64) * 2.0 < fraction * total as f64;
        let unsplit_notices = &mut self.unsplit_notices;
        let mut step = |hot: &mut HotGroup| -> bool {
            match hot.cooling_until {
                None => {
                    // never begin the hand-off during the split's own
                    // warm-up — a just-split group has not reached its
                    // steady decayed count yet
                    if now_ms >= hot.active_at_ms && cold(hot.count) {
                        hot.cooling_until = Some(now_ms.saturating_add(warmup));
                    }
                    true
                }
                Some(deadline) => {
                    if !cold(hot.count) {
                        hot.cooling_until = None; // re-heated: cancel
                        true
                    } else if now_ms >= deadline {
                        unsplit_notices.push(hot.key.clone());
                        false
                    } else {
                        true
                    }
                }
            }
        };
        self.split.retain(|_, hot| step(hot));
        if let Some(hot) = &mut self.split_global {
            if !step(hot) {
                self.split_global = None;
            }
        }
    }

    /// Serialize the tracker's routing state (decayed counters, split
    /// groups, pending notices) into a checkpoint segment. Tuning
    /// (`spec`, thresholds) is rebuilt from configuration, not persisted.
    fn save_state(&self, w: &mut StateWriter) {
        // deterministic order: identical state must yield identical bytes
        let mut counts: Vec<(u64, u32)> = self.counts.iter().map(|(h, c)| (*h, *c)).collect();
        counts.sort_unstable();
        w.seq_len(counts.len());
        for (h, c) in counts {
            w.u64(h);
            w.u32(c);
        }
        w.u32(self.global_count);
        w.u64(self.total);
        w.u32(self.since_decay);
        let mut split: Vec<(&u64, &HotGroup)> = self.split.iter().collect();
        split.sort_unstable_by_key(|(h, _)| **h);
        w.seq_len(split.len());
        for (h, hot) in split {
            w.u64(*h);
            hot.save_state(w);
        }
        match &self.split_global {
            Some(hot) => {
                w.bool(true);
                hot.save_state(w);
            }
            None => w.bool(false),
        }
        // notices drain with every routed chunk and checkpoints sit at
        // chunk boundaries, so these are empty in practice — persisted
        // anyway so the format never depends on that invariant
        w.seq_len(self.notices.len());
        for key in &self.notices {
            w.group_key(key);
        }
        w.seq_len(self.unsplit_notices.len());
        for key in &self.unsplit_notices {
            w.group_key(key);
        }
    }

    /// Restore the state written by [`SplitTracker::save_state`].
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let n_counts = r.seq_len()?;
        self.counts.clear();
        self.counts.reserve(n_counts);
        for _ in 0..n_counts {
            let h = r.u64()?;
            let c = r.u32()?;
            self.counts.insert(h, c);
        }
        self.global_count = r.u32()?;
        self.total = r.u64()?;
        self.since_decay = r.u32()?;
        let n_split = r.seq_len()?;
        self.split.clear();
        for _ in 0..n_split {
            let h = r.u64()?;
            self.split.insert(h, HotGroup::load_state(r)?);
        }
        self.split_global = if r.bool()? {
            Some(HotGroup::load_state(r)?)
        } else {
            None
        };
        let n_notices = r.seq_len()?;
        self.notices.clear();
        for _ in 0..n_notices {
            self.notices.push(r.group_key()?);
        }
        let n_unsplit = r.seq_len()?;
        self.unsplit_notices.clear();
        for _ in 0..n_unsplit {
            self.unsplit_notices.push(r.group_key()?);
        }
        Ok(())
    }
}

/// The rows of one batch owned by one shard, per routing scope:
/// `per_part[p]` lists the row indexes shard-owned for scope `p`
/// (a compiled partition, a query, or a signature partition, depending on
/// the hosted processor). For split groups, `state_rows[p]` additionally
/// lists broadcast state-only replica rows, and `splits` announces groups
/// that were split while routing this batch.
#[derive(Debug, Default)]
pub struct RoutedRows {
    /// Full-role row-index lists, parallel to the routing scopes.
    pub per_part: Vec<Vec<u32>>,
    /// State-only replica rows of split groups, parallel to the routing
    /// scopes (empty unless the scope split a group). Processed
    /// interleaved with `per_part` in row order, with final folds and
    /// matched counting suppressed.
    pub state_rows: Vec<Vec<u32>>,
    /// Newly split groups: `(scope index, group key)`. Delivered to every
    /// shard before the batch's rows are processed.
    pub splits: Vec<(u32, GroupKey)>,
    /// Groups that cooled back down: `(scope index, group key)`.
    /// Delivered to every shard **after** the batch's rows — the rows of
    /// this batch were still routed under the split regime.
    pub unsplits: Vec<(u32, GroupKey)>,
    /// The router's event-time frontier: the maximum event time over
    /// every row routed so far (monotone across chunks). The single
    /// router sees the whole stream, so this is by construction the
    /// merged cross-shard frontier — each shard derives its watermark
    /// from it after applying this chunk's rows, which is what makes a
    /// window close only once the global minimum watermark passed it.
    /// Ignored by arrival-time (no-lateness) runs.
    pub frontier: Timestamp,
    /// Ingest batch sequence number, stamped by the dispatching stage.
    /// With a multi-router plane every router emits one chunk per worker
    /// per batch, and workers use the sequence number to merge the `R`
    /// ring streams in deterministic ingest order.
    pub seq: u64,
}

impl RoutedRows {
    /// True if no scope has any rows and no split notices are pending for
    /// this shard.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
            && self.unsplits.is_empty()
            && self.per_part.iter().all(Vec::is_empty)
            && self.state_rows.iter().all(Vec::is_empty)
    }

    /// Clear every row list, keeping capacities — the recycling path of
    /// the sharded runtime's return ring.
    pub fn clear(&mut self) {
        for rows in &mut self.per_part {
            rows.clear();
        }
        for rows in &mut self.state_rows {
            rows.clear();
        }
        self.splits.clear();
        self.unsplits.clear();
    }

    /// Clear and resize to exactly `n_scopes` lists (retaining existing
    /// list capacities where possible).
    pub fn reset(&mut self, n_scopes: usize) {
        self.clear();
        self.per_part.resize_with(n_scopes, Vec::new);
        self.state_rows.resize_with(n_scopes, Vec::new);
    }
}

/// Type-erased batch routing: what the sharded runtime's ingest thread
/// drives, one virtual call per batch chunk. Implemented by
/// [`BatchRouter`] for any [`RowFilter`] scope type.
pub trait RouteBatch: Send {
    /// Number of shards this router fans out to.
    fn n_shards(&self) -> usize;

    /// Number of routing slots (the length of every
    /// [`RoutedRows::per_part`]). For a router owning a subset of a
    /// routing plane's scopes this is the **plane-wide** scope count,
    /// not the subset size.
    fn n_scopes(&self) -> usize;

    /// Number of scopes this router actually scans per chunk (its local
    /// subset; equals [`RouteBatch::n_scopes`] for a whole-plane router).
    fn n_local_scopes(&self) -> usize {
        self.n_scopes()
    }

    /// Compute, for every shard, the per-scope row lists of rows
    /// `lo..hi` of `batch` (absolute row indexes). `out` arrives holding
    /// recycled [`RoutedRows`] (possibly fewer than `n_shards`, possibly
    /// dirty); the router resets and tops it up — steady-state routing
    /// allocates nothing beyond row-list growth.
    fn route_range_into(
        &mut self,
        batch: &EventBatch,
        lo: usize,
        hi: usize,
        out: &mut Vec<RoutedRows>,
    );

    /// Number of groups currently split across shards, summed over scopes.
    fn split_groups(&self) -> usize {
        0
    }

    /// The router's per-scope scan tallies, if it tracks them. Cloned by
    /// the executor handle **before** the router moves onto its ingest
    /// thread, so selectivity stays reportable in pipelined mode.
    fn scan_counters(&self) -> Option<Arc<ScanCounters>> {
        None
    }

    /// Serialize the router's routing state (decayed counters, split
    /// groups, pending notices) into a checkpoint segment. Routers
    /// without routing state (the baselines' pinned-only filters) write
    /// nothing — and restore nothing.
    fn save_state(&mut self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restore the state written by [`RouteBatch::save_state`].
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let _ = r;
        Ok(())
    }
}

/// Routes whole batches: one stateless prefix evaluation per event,
/// shared by all shards. Generic over the scope type `F` — compiled
/// partitions for the online engines, baseline-provided filters for the
/// two-step strategies.
pub struct BatchRouter<F = CompiledPartition> {
    scopes: Vec<F>,
    /// Hot-group trackers, parallel to `scopes` (`None` when the scope
    /// opted out of splitting or the router is single-shard).
    trackers: Vec<Option<SplitTracker>>,
    /// Compiled scan kernels, parallel to `scopes` (`None` runs the
    /// scalar interpreter for that scope, per [`crate::scan::scan_mode`]).
    kernels: Vec<Option<ScanKernel>>,
    /// Reused selection buffer of the stateless pass (phase 1 output /
    /// phase 2 input of [`BatchRouter::route_range_into`]).
    sel_scratch: Vec<u32>,
    /// Per-scope scan tallies, shared with the executor handle that
    /// reports selectivity (the router itself may live on a dedicated
    /// ingest thread). Sized and indexed by **global slot**, so the
    /// executor can sum the counters of a whole routing plane
    /// element-wise.
    counters: Arc<ScanCounters>,
    n_shards: usize,
    /// Global routing-slot index of each local scope (identity for a
    /// whole-plane router). Slots index [`RoutedRows::per_part`] /
    /// `state_rows` and pick the global-partition owner shard, so a
    /// plane of routers with disjoint scope subsets emits chunks that
    /// line up with the engines' global scope numbering.
    slots: Vec<u32>,
    /// Total routing slots across the whole plane (= the global scope
    /// count); every emitted [`RoutedRows`] is sized to this.
    n_slots: usize,
    /// Reused scratch key (clone-free group-key hashing).
    key_scratch: GroupKey,
    vals_scratch: Vec<Value>,
    /// Per-chunk running event-time maximum (seeded from `frontier`),
    /// indexed by chunk-relative row — the split warm-up base (reused
    /// scratch, filled only when a scope tracks hot groups).
    runmax_scratch: Vec<u64>,
    /// Maximum event time over every routed row (the event-time frontier
    /// stamped onto [`RoutedRows::frontier`]).
    frontier: Timestamp,
}

impl<F: RowFilter> BatchRouter<F> {
    /// A router for `scopes` fanning out across `n_shards` shards, with
    /// the default hot-group [`SplitConfig`].
    pub fn new(scopes: Vec<F>, n_shards: usize) -> Self {
        Self::with_split(scopes, n_shards, SplitConfig::default())
    }

    /// [`BatchRouter::new`] with explicit hot-group split tuning.
    pub fn with_split(scopes: Vec<F>, n_shards: usize, config: SplitConfig) -> Self {
        let slots = (0..scopes.len() as u32).collect();
        let n_slots = scopes.len();
        Self::with_split_slots(scopes, n_shards, config, slots, n_slots)
    }

    /// [`BatchRouter::with_split`] for a router owning a **subset** of a
    /// routing plane's scopes: `slots[i]` is the global slot of local
    /// scope `i`, and every emitted [`RoutedRows`] is sized to `n_slots`
    /// (the plane-wide scope count). Built by [`split_router_plane`].
    pub fn with_split_slots(
        scopes: Vec<F>,
        n_shards: usize,
        config: SplitConfig,
        slots: Vec<u32>,
        n_slots: usize,
    ) -> Self {
        assert!(n_shards >= 1);
        assert_eq!(slots.len(), scopes.len(), "one slot per scope");
        assert!(
            slots.iter().all(|&s| (s as usize) < n_slots),
            "slot out of range"
        );
        let trackers = scopes
            .iter()
            .map(|s| {
                if n_shards > 1 && config.enabled {
                    s.split_spec()
                        .map(|spec| SplitTracker::new(spec, &config, n_shards))
                } else {
                    None
                }
            })
            .collect();
        let kernels = match scan_mode() {
            ScanMode::Vector => scopes.iter().map(RowFilter::scan_kernel).collect(),
            ScanMode::Scalar => scopes.iter().map(|_| None).collect(),
        };
        let counters = ScanCounters::new(n_slots);
        BatchRouter {
            scopes,
            trackers,
            kernels,
            sel_scratch: Vec::new(),
            counters,
            n_shards,
            slots,
            n_slots,
            key_scratch: GroupKey::Global,
            vals_scratch: Vec::new(),
            runmax_scratch: Vec::new(),
            frontier: Timestamp::ZERO,
        }
    }

    /// The routing scopes this router serves.
    pub fn scopes(&self) -> &[F] {
        &self.scopes
    }

    /// Per-scope `(rows_scanned, rows_selected)` tallies of the stateless
    /// pass, shared with whoever holds a clone (see
    /// [`RouteBatch::scan_counters`]).
    pub fn scan_counters(&self) -> Arc<ScanCounters> {
        Arc::clone(&self.counters)
    }

    /// Compute, for every shard, the per-scope row lists of `batch`
    /// (convenience wrapper over [`RouteBatch::route_range_into`]).
    pub fn route(&mut self, batch: &EventBatch) -> Vec<RoutedRows> {
        self.route_range(batch, 0, batch.len())
    }

    /// [`BatchRouter::route`] restricted to rows `lo..hi` — the zero-copy
    /// ingest path routes consecutive chunks of one shared batch without
    /// ever copying it. Row indexes in the result are absolute.
    pub fn route_range(&mut self, batch: &EventBatch, lo: usize, hi: usize) -> Vec<RoutedRows> {
        let mut out = Vec::new();
        self.route_range_into(batch, lo, hi, &mut out);
        out
    }

    /// Rows that do not route into a scope, fail its predicates, or lack a
    /// grouping attribute are dropped here — exactly the rows the stateful
    /// side would drop — so workers receive only rows they will match.
    /// See [`RouteBatch::route_range_into`] for the recycling contract of
    /// `out`.
    pub fn route_range_into(
        &mut self,
        batch: &EventBatch,
        lo: usize,
        hi: usize,
        out: &mut Vec<RoutedRows>,
    ) {
        // one scan per scope per chunk — the observable unit of routing
        // work. With scope dedup upstream, Q same-scope queries advance
        // the counter by 1 per batch, not Q (asserted by regression
        // tests via `sharon_metrics::router_scope_scans`).
        sharon_metrics::record_router_scope_scans(self.scopes.len() as u64);
        out.truncate(self.n_shards);
        for rows in out.iter_mut() {
            rows.reset(self.n_slots);
        }
        while out.len() < self.n_shards {
            let mut rows = RoutedRows::default();
            rows.reset(self.n_slots);
            out.push(rows);
        }
        let tys = &batch.types()[lo..hi];
        // running event-time maximum per chunk row, seeded from the
        // frontier: the warm-up base of any split registered at row `i`.
        // Every row routed before the registration (earlier chunks are
        // bounded by the frontier, earlier rows of this chunk by the
        // running max) went owner-only, so round-robin may only begin
        // once windows reaching back to this high-water mark expired.
        if self.trackers.iter().any(Option::is_some) {
            self.runmax_scratch.clear();
            let mut max_ms = self.frontier.millis();
            for row in lo..hi {
                max_ms = max_ms.max(batch.time(row).millis());
                self.runmax_scratch.push(max_ms);
            }
        }
        let mut sel = std::mem::take(&mut self.sel_scratch);
        for (pi, scope) in self.scopes.iter().enumerate() {
            let slot = self.slots[pi] as usize;
            // phase 1 — stateless selection: routing, predicates, and
            // groupability over the whole chunk, into the reused
            // selection buffer. The vectorized kernel and the scalar
            // interpreter select exactly the same rows (groupability is
            // precisely `read_group_key` succeeding), so phase 2 below
            // is mode-independent.
            sel.clear();
            if let Some(kernel) = self.kernels[pi].as_mut() {
                kernel.select_into(batch, lo, hi, &mut sel);
            } else {
                for (i, ty) in tys.iter().enumerate() {
                    let row = lo + i;
                    if !scope.routed(*ty) {
                        continue;
                    }
                    let attrs = batch.attrs(row);
                    if !scope.predicates_pass(*ty, attrs) {
                        continue;
                    }
                    if !scope.groupable(*ty, attrs) {
                        continue; // ungroupable event
                    }
                    sel.push(row as u32);
                }
            }
            self.counters
                .record(slot, (hi - lo) as u64, sel.len() as u64);
            sharon_metrics::record_rows_scanned((hi - lo) as u64);
            sharon_metrics::record_rows_selected(sel.len() as u64);

            // phase 2 — stateful fan-out over the survivors: key
            // construction, owner hashing, hot-group tracking, split
            // routing. Single-shard routers skip it entirely: every
            // selected row lands on shard 0.
            if self.n_shards == 1 {
                out[0].per_part[slot].extend_from_slice(&sel);
                continue;
            }
            let tracker = &mut self.trackers[pi];
            // the global (no GROUP BY) partition owner is a function of
            // the *global* slot, matching the engines' `owns_global`
            let global_owner = slot % self.n_shards;
            for &row32 in &sel {
                let row = row32 as usize;
                let i = row - lo;
                let ty = batch.ty(row);
                let attrs = batch.attrs(row);
                // cannot fail: phase 1 already established groupability
                let ok =
                    scope.read_group_key(ty, attrs, &mut self.vals_scratch, &mut self.key_scratch);
                debug_assert!(ok, "selected row must be groupable");
                if !ok {
                    continue;
                }
                let (owner, hash) = match &self.key_scratch {
                    GroupKey::Global => (global_owner, None),
                    // high hash bits, matching `ShardSlice::owns` (the
                    // low bits index the owning shard's hash-map
                    // buckets)
                    key => {
                        let h = fx_hash_one(key);
                        (((h >> 32) % self.n_shards as u64) as usize, Some(h))
                    }
                };
                let Some(tracker) = tracker else {
                    out[owner].per_part[slot].push(row as u32);
                    continue;
                };
                // split scope: route split groups, count the rest (the
                // is_empty guard keeps the common no-splits case at one
                // map probe per row — observe()'s counter update)
                let is_split = match hash {
                    Some(h) => !tracker.split.is_empty() && tracker.split.contains_key(&h),
                    None => tracker.split_global.is_some(),
                };
                if is_split {
                    tracker.observe_split();
                } else if tracker.observe(hash) {
                    // newly hot: register + announce the split, then fall
                    // through to split routing (this first row runs under
                    // the warm-up regime). The decayed count carries over
                    // so cool-down detection starts from the real level.
                    let carried = match hash {
                        Some(h) => tracker.counts.remove(&h).unwrap_or(0),
                        None => std::mem::take(&mut tracker.global_count),
                    };
                    let hot = HotGroup {
                        key: self.key_scratch.clone(),
                        active_at_ms: self.runmax_scratch[i].saturating_add(tracker.spec.warmup_ms),
                        rr_final: owner as u32,
                        rr_full: owner as u32,
                        count: carried,
                        cooling_until: None,
                    };
                    tracker.notices.push(self.key_scratch.clone());
                    match hash {
                        Some(h) => {
                            tracker.split.insert(h, hot);
                        }
                        None => tracker.split_global = Some(hot),
                    }
                } else {
                    out[owner].per_part[slot].push(row as u32);
                    continue;
                }
                let hot = match hash {
                    Some(h) => tracker.split.get_mut(&h).expect("registered above"),
                    None => tracker.split_global.as_mut().expect("registered above"),
                };
                hot.count = hot.count.saturating_add(1);
                Self::route_split_row(
                    out,
                    slot,
                    row as u32,
                    batch.time(row).millis(),
                    tracker
                        .spec
                        .final_only
                        .get(ty.index())
                        .copied()
                        .unwrap_or(false),
                    owner,
                    hot,
                    self.n_shards,
                );
            }
        }
        self.sel_scratch = sel;
        // advance the event-time frontier over the chunk's time column
        // (a plain max scan: disordered input makes no row position
        // authoritative) and stamp it onto every shard's rows — in-band
        // watermark delivery over the same rings as data and barriers
        if hi > lo {
            let mut chunk_max = self.frontier;
            for row in lo..hi {
                chunk_max = chunk_max.max(batch.time(row));
            }
            self.frontier = chunk_max;
        }
        for rows in out.iter_mut() {
            rows.frontier = self.frontier;
        }
        // deliver pending split and unsplit notices to every shard (even
        // shards that received no rows this batch — the notice itself
        // makes their RoutedRows non-empty, so they are woken). The
        // cool-down sweep runs first, clocked by the chunk's newest
        // timestamp — the frontier under disorder — so a group's unsplit
        // lands in the same batch that crossed its deadline.
        let now_ms = if hi > lo {
            Some(self.frontier.millis())
        } else {
            None
        };
        for (pi, tracker) in self.trackers.iter_mut().enumerate() {
            let Some(tracker) = tracker else { continue };
            let slot = self.slots[pi];
            if let Some(now_ms) = now_ms {
                tracker.sweep_cooldown(now_ms);
            }
            for key in tracker.notices.drain(..) {
                for rows in out.iter_mut() {
                    rows.splits.push((slot, key.clone()));
                }
            }
            for key in tracker.unsplit_notices.drain(..) {
                for rows in out.iter_mut() {
                    rows.unsplits.push((slot, key.clone()));
                }
            }
        }
    }

    /// Route one row of a split group: round-robin final-only rows
    /// (owner-pinned during warm-up **and** during cool-down), broadcast
    /// everything else with one full copy and `n − 1` state-only
    /// replicas.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn route_split_row(
        out: &mut [RoutedRows],
        slot: usize,
        row: u32,
        time_ms: u64,
        final_only: bool,
        owner: usize,
        hot: &mut HotGroup,
        n_shards: usize,
    ) {
        let active = time_ms >= hot.active_at_ms && hot.cooling_until.is_none();
        if final_only {
            let target = if active {
                let s = hot.rr_final as usize % n_shards;
                hot.rr_final = hot.rr_final.wrapping_add(1);
                s
            } else {
                owner
            };
            out[target].per_part[slot].push(row);
        } else {
            let full_target = if active {
                let s = hot.rr_full as usize % n_shards;
                hot.rr_full = hot.rr_full.wrapping_add(1);
                s
            } else {
                owner
            };
            for (shard, rows) in out.iter_mut().enumerate() {
                if shard == full_target {
                    rows.per_part[slot].push(row);
                } else {
                    rows.state_rows[slot].push(row);
                }
            }
        }
    }
}

impl<F: RowFilter> BatchRouter<F> {
    /// Serialize the hot-group trackers' state (see
    /// [`RouteBatch::save_state`]). Structural configuration — scopes,
    /// shard count, split tuning — is rebuilt from the plan on restore,
    /// not persisted.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.time(self.frontier);
        w.seq_len(self.trackers.len());
        for tracker in &self.trackers {
            match tracker {
                Some(t) => {
                    w.bool(true);
                    t.save_state(w);
                }
                None => w.bool(false),
            }
        }
    }

    /// Restore the state written by [`BatchRouter::save_state`] into a
    /// router built with the same scopes, shard count, and split
    /// configuration.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.frontier = r.time()?;
        if r.seq_len()? != self.trackers.len() {
            return Err(StateError::Corrupt("router tracker count"));
        }
        for tracker in &mut self.trackers {
            let present = r.bool()?;
            match (tracker, present) {
                (Some(t), true) => t.load_state(r)?,
                (None, false) => {}
                _ => return Err(StateError::Corrupt("router tracker presence")),
            }
        }
        Ok(())
    }
}

impl<F: RowFilter + Send> RouteBatch for BatchRouter<F> {
    fn n_shards(&self) -> usize {
        self.n_shards
    }

    fn n_scopes(&self) -> usize {
        self.n_slots
    }

    fn n_local_scopes(&self) -> usize {
        self.scopes.len()
    }

    fn route_range_into(
        &mut self,
        batch: &EventBatch,
        lo: usize,
        hi: usize,
        out: &mut Vec<RoutedRows>,
    ) {
        BatchRouter::route_range_into(self, batch, lo, hi, out);
    }

    fn split_groups(&self) -> usize {
        self.trackers
            .iter()
            .flatten()
            .map(|t| t.split.len() + usize::from(t.split_global.is_some()))
            .sum()
    }

    fn scan_counters(&self) -> Option<Arc<ScanCounters>> {
        Some(BatchRouter::scan_counters(self))
    }

    fn save_state(&mut self, w: &mut StateWriter) {
        BatchRouter::save_state(self, w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        BatchRouter::load_state(self, r)
    }
}

/// Assign scopes (by their [`RowFilter::route_cost`] estimates) to
/// `n_routers` routing-plane threads with deterministic longest-
/// processing-time scheduling: scopes are taken in descending cost order
/// (index ascending on ties) and each goes to the least-loaded router
/// (lowest index on ties). Returns exactly `n_routers` lists of global
/// scope indexes, each sorted ascending; trailing routers may own no
/// scopes when there are fewer scopes than routers.
///
/// The assignment is a pure function of `(costs, n_routers)`, so a
/// resumed executor rebuilding its plane from the same compiled workload
/// reproduces the checkpointing run's scope→router mapping exactly.
pub fn partition_scopes(costs: &[f64], n_routers: usize) -> Vec<Vec<usize>> {
    assert!(n_routers >= 1, "a routing plane needs at least one router");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n_routers];
    let mut loads = vec![0.0f64; n_routers];
    for pi in order {
        let router = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(r, _)| r)
            .expect("n_routers >= 1");
        assignment[router].push(pi);
        loads[router] += costs[pi].max(0.0);
    }
    for scopes in &mut assignment {
        scopes.sort_unstable();
    }
    assignment
}

/// Split `scopes` into a routing plane of `n_routers` [`BatchRouter`]s,
/// each owning a disjoint, cost-balanced subset (see
/// [`partition_scopes`]) while emitting [`RoutedRows`] sized to the full
/// scope count. `n_routers == 1` moves the scopes into a single router —
/// exactly [`BatchRouter::with_split`], so the single-router plane is
/// bit-identical to the pre-plane behaviour.
pub fn split_router_plane<F: RowFilter + Clone + Send + 'static>(
    scopes: Vec<F>,
    n_shards: usize,
    config: SplitConfig,
    n_routers: usize,
) -> Vec<Box<dyn RouteBatch>> {
    assert!(n_routers >= 1, "a routing plane needs at least one router");
    if n_routers == 1 {
        return vec![Box::new(BatchRouter::with_split(scopes, n_shards, config))];
    }
    let n_slots = scopes.len();
    let costs: Vec<f64> = scopes.iter().map(RowFilter::route_cost).collect();
    partition_scopes(&costs, n_routers)
        .into_iter()
        .map(|owned| {
            let subset: Vec<F> = owned.iter().map(|&pi| scopes[pi].clone()).collect();
            let slots: Vec<u32> = owned.iter().map(|&pi| pi as u32).collect();
            Box::new(BatchRouter::with_split_slots(
                subset, n_shards, config, slots, n_slots,
            )) as Box<dyn RouteBatch>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::engine::ShardSlice;
    use sharon_query::{parse_workload, SharingPlan};
    use sharon_types::{Catalog, Schema, Timestamp};

    fn setup() -> (Catalog, Vec<CompiledPartition>) {
        let mut c = Catalog::new();
        for n in ["A", "B"] {
            c.register_with_schema(n, Schema::new(["g", "v"]));
        }
        let w = parse_workload(
            &mut c,
            [
                "RETURN COUNT(*) PATTERN SEQ(A, B) WHERE A.v > 2 GROUP BY g WITHIN 10 ms SLIDE 2 ms",
                "RETURN COUNT(*) PATTERN SEQ(A, B) WITHIN 10 ms SLIDE 10 ms",
            ],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        (c, parts)
    }

    fn batch(c: &Catalog, n: u64) -> EventBatch {
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut out = EventBatch::new();
        for i in 0..n {
            out.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(i as i64 % 13), Value::Int(i as i64 % 7)],
            );
        }
        out
    }

    /// Routers in the pre-splitting tests run with splitting disabled so
    /// the hash-pinned assignment is what is being asserted.
    fn pinned(parts: Vec<CompiledPartition>, n_shards: usize) -> BatchRouter {
        BatchRouter::with_split(parts, n_shards, SplitConfig::disabled())
    }

    #[test]
    fn every_row_routes_to_exactly_the_owning_shard() {
        let (c, parts) = setup();
        let n_shards = 3;
        let mut router = pinned(parts.clone(), n_shards);
        let batch = batch(&c, 500);
        let routed = router.route(&batch);
        assert_eq!(routed.len(), n_shards);

        for (pi, _part) in parts.iter().enumerate() {
            let mut seen = vec![0u32; batch.len()];
            for (shard, rows) in routed.iter().enumerate() {
                let slice = ShardSlice {
                    index: shard as u32,
                    of: n_shards as u32,
                    owns_global: pi % n_shards == shard,
                };
                for &row in &rows.per_part[pi] {
                    seen[row as usize] += 1;
                    // the assignment agrees with what the engine would own
                    let gattrs = &parts[pi].group_attrs[batch.ty(row as usize).index()];
                    let key = if gattrs.is_empty() {
                        GroupKey::Global
                    } else {
                        GroupKey::from_values(
                            gattrs
                                .iter()
                                .map(|a| batch.attr(row as usize, *a).unwrap().clone())
                                .collect(),
                        )
                    };
                    assert!(slice.owns(&key), "shard {shard} got a row it does not own");
                }
            }
            assert!(
                seen.iter().all(|&s| s <= 1),
                "partition {pi}: a row reached two shards"
            );
        }
    }

    #[test]
    fn predicate_failures_are_dropped_at_the_router() {
        let (c, parts) = setup();
        let mut router = pinned(parts, 2);
        let a = c.lookup("A").unwrap();
        let mut b = EventBatch::new();
        // A.v = 1 fails `A.v > 2` for partition 0 but partition 1 has no
        // predicate on A
        b.push_from(a, Timestamp(0), [Value::Int(5), Value::Int(1)]);
        let routed = router.route(&b);
        let part0: usize = routed.iter().map(|r| r.per_part[0].len()).sum();
        let part1: usize = routed.iter().map(|r| r.per_part[1].len()).sum();
        assert_eq!(part0, 0, "failed predicate dropped at the router");
        assert_eq!(part1, 1, "global partition still gets the row");
    }

    #[test]
    fn empty_batch_routes_to_nothing() {
        let (_, parts) = setup();
        let mut router = pinned(parts, 4);
        let routed = router.route(&EventBatch::new());
        assert!(routed.iter().all(RoutedRows::is_empty));
    }

    #[test]
    fn recycled_lists_are_reset_before_reuse() {
        let (c, parts) = setup();
        let mut router = pinned(parts, 2);
        let b = batch(&c, 100);
        let mut out = router.route(&b);
        let want: Vec<Vec<Vec<u32>>> = out.iter().map(|r| r.per_part.clone()).collect();
        // dirty the recycled lists, then re-route into them: results and
        // capacities must be identical to a fresh route
        router.route_range_into(&b, 0, b.len(), &mut out);
        let got: Vec<Vec<Vec<u32>>> = out.iter().map(|r| r.per_part.clone()).collect();
        assert_eq!(got, want, "recycled routing must equal fresh routing");
        // shrinking the pool still works: route with fewer recycled lists
        out.truncate(1);
        router.route_range_into(&b, 0, b.len(), &mut out);
        let got: Vec<Vec<Vec<u32>>> = out.iter().map(|r| r.per_part.clone()).collect();
        assert_eq!(got, want);
    }

    /// One skewed group over a two-type pattern: the router must split it,
    /// announce it once to every shard, broadcast A rows (state) and
    /// round-robin B rows (final) after the warm-up window.
    #[test]
    fn hot_group_is_split_announced_and_round_robined() {
        let mut c = Catalog::new();
        for n in ["A", "B"] {
            c.register_with_schema(n, Schema::new(["g"]));
        }
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms"],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        let spec = parts[0].split_spec();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        assert!(!spec.final_only[a.index()], "A opens state: broadcast");
        assert!(spec.final_only[b.index()], "B only folds finals: split");

        let n_shards = 4;
        let mut router = BatchRouter::with_split(parts, n_shards, SplitConfig::eager(8));
        // every row belongs to group 7 — maximal skew
        let mut batch = EventBatch::new();
        let n_rows = 400u64;
        for i in 0..n_rows {
            batch.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(7)],
            );
        }
        let routed = router.route(&batch);
        assert_eq!(router.split_groups(), 1, "the one hot group split");

        // the split was announced to every shard exactly once
        for rows in &routed {
            assert_eq!(rows.splits.len(), 1);
            assert_eq!(rows.splits[0].0, 0);
            assert_eq!(rows.splits[0].1, GroupKey::One(Value::Int(7)));
        }

        // full + state copies per row: every A row after the split has one
        // full copy and n-1 state replicas; every B row exactly one full
        // copy and no replicas
        let mut full = vec![0u32; batch.len()];
        let mut state = vec![0u32; batch.len()];
        for rows in &routed {
            for &r in &rows.per_part[0] {
                full[r as usize] += 1;
            }
            for &r in &rows.state_rows[0] {
                state[r as usize] += 1;
            }
        }
        let mut post_warmup_b_shards = std::collections::BTreeSet::new();
        for (i, (&f, &s)) in full.iter().zip(&state).enumerate() {
            assert_eq!(f, 1, "row {i}: exactly one full copy");
            if i % 2 == 0 {
                // A rows after the split broadcast (before it, they are
                // owner-only with no replicas)
                assert!(s == 0 || s == (n_shards - 1) as u32, "row {i}");
            } else {
                assert_eq!(s, 0, "row {i}: final-only rows are never replicated");
                if (i as u64) >= 10 + 8 {
                    // comfortably past warm-up (within=10ms after the
                    // split decision around row ~8)
                    for (shard, rows) in routed.iter().enumerate() {
                        if rows.per_part[0].contains(&(i as u32)) {
                            post_warmup_b_shards.insert(shard);
                        }
                    }
                }
            }
        }
        assert_eq!(
            post_warmup_b_shards.len(),
            n_shards,
            "post-warm-up final rows round-robin over all shards"
        );

        // a second batch re-announces nothing
        let mut batch2 = EventBatch::new();
        batch2.push_from(b, Timestamp(n_rows), [Value::Int(7)]);
        let routed2 = router.route(&batch2);
        assert!(routed2.iter().all(|r| r.splits.is_empty()));
    }

    /// Scopes without a split spec (the baselines' filters) never split,
    /// no matter how skewed the traffic.
    #[test]
    fn scopes_without_spec_stay_pinned() {
        struct NoSpec;
        impl RowFilter for NoSpec {
            fn routed(&self, _ty: EventTypeId) -> bool {
                true
            }
            fn predicates_pass(&self, _ty: EventTypeId, _attrs: &[Value]) -> bool {
                true
            }
            fn groupable(&self, _ty: EventTypeId, _attrs: &[Value]) -> bool {
                true
            }
            fn read_group_key(
                &self,
                _ty: EventTypeId,
                attrs: &[Value],
                vals: &mut Vec<Value>,
                key: &mut GroupKey,
            ) -> bool {
                vals.clear();
                vals.push(attrs[0].clone());
                key.assign_from_slice(vals);
                true
            }
        }
        let mut router = BatchRouter::with_split(vec![NoSpec], 4, SplitConfig::eager(4));
        let mut batch = EventBatch::new();
        for i in 0..200u64 {
            batch.push_from(EventTypeId(0), Timestamp(i), [Value::Int(1)]);
        }
        let routed = router.route(&batch);
        assert_eq!(router.split_groups(), 0);
        let with_rows = routed.iter().filter(|r| !r.per_part[0].is_empty()).count();
        assert_eq!(with_rows, 1, "the skewed group stays on its hash owner");
        assert!(routed.iter().all(|r| r.splits.is_empty()));
        assert!(routed.iter().all(|r| r.state_rows[0].is_empty()));
    }

    /// Shared setup of the cool-down tests: one scope over `SEQ(A, B)
    /// GROUP BY g` (within 10 ms) and an eager 4-shard router.
    fn split_setup() -> (Catalog, BatchRouter, EventTypeId, EventTypeId) {
        let mut c = Catalog::new();
        for n in ["A", "B"] {
            c.register_with_schema(n, Schema::new(["g"]));
        }
        let w = parse_workload(
            &mut c,
            ["RETURN COUNT(*) PATTERN SEQ(A, B) GROUP BY g WITHIN 10 ms SLIDE 2 ms"],
        )
        .unwrap();
        let parts = compile(&c, &w, &SharingPlan::non_shared()).unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let router = BatchRouter::with_split(parts, 4, SplitConfig::eager(8));
        (c, router, a, b)
    }

    #[test]
    fn cold_split_group_cools_down_and_unsplits() {
        let (_c, mut router, a, b) = split_setup();
        let hot_key = GroupKey::One(Value::Int(7));

        // phase 1: maximal skew on group 7 until it splits
        let mut batch = EventBatch::new();
        for i in 0..40u64 {
            batch.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(7)],
            );
        }
        router.route(&batch);
        assert_eq!(router.split_groups(), 1);

        // phase 2: group 7 goes quiet while traffic spreads over many
        // other groups. Its decayed share collapses, cool-down re-pins
        // its finals to the owner, and one warm-up window past the cold
        // decision the unsplit notice reaches every shard.
        let mut t = 40u64;
        let mut saw_unsplit = false;
        for _ in 0..40 {
            let mut batch = EventBatch::new();
            for i in 0..64u64 {
                t += 1;
                batch.push_from(
                    if i % 2 == 0 { a } else { b },
                    Timestamp(t),
                    [Value::Int((i % 13) as i64 + 100)],
                );
            }
            let routed = router.route(&batch);
            if routed
                .iter()
                .any(|r| r.unsplits.iter().any(|(pi, k)| *pi == 0 && *k == hot_key))
            {
                // the notice reaches every shard in the same batch
                assert!(routed
                    .iter()
                    .all(|r| r.unsplits.contains(&(0, hot_key.clone()))));
                saw_unsplit = true;
                break;
            }
        }
        assert!(saw_unsplit, "a cold split group must unsplit");
        assert_eq!(router.split_groups(), 0);

        // post-unsplit rows of group 7 hash-pin to exactly one shard with
        // no replicas — the split machinery is fully dismantled
        let mut batch = EventBatch::new();
        t += 1;
        batch.push_from(b, Timestamp(t), [Value::Int(7)]);
        let routed = router.route(&batch);
        let with_rows = routed.iter().filter(|r| !r.per_part[0].is_empty()).count();
        assert_eq!(with_rows, 1);
        assert!(routed.iter().all(|r| r.state_rows[0].is_empty()));
        assert!(routed.iter().all(|r| r.unsplits.is_empty()));
    }

    #[test]
    fn router_state_round_trips() {
        let (_c, mut router, a, b) = split_setup();
        let mut batch = EventBatch::new();
        for i in 0..400u64 {
            batch.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(7)],
            );
        }
        router.route(&batch);
        assert_eq!(router.split_groups(), 1);

        let mut sw = StateWriter::new();
        router.save_state(&mut sw);
        let bytes = sw.into_bytes();

        let (_c2, mut restored, _, _) = split_setup();
        let mut sr = StateReader::new(&bytes);
        restored.load_state(&mut sr).unwrap();
        assert!(sr.is_exhausted(), "router state fully consumed");
        assert_eq!(restored.split_groups(), 1);

        // the restored router makes byte-identical routing decisions —
        // split membership, round-robin cursors, and decayed counters all
        // carried over
        let mut batch2 = EventBatch::new();
        for i in 400..600u64 {
            batch2.push_from(
                if i % 2 == 0 { a } else { b },
                Timestamp(i),
                [Value::Int(7)],
            );
        }
        let want = router.route(&batch2);
        let got = restored.route(&batch2);
        assert_eq!(want.len(), got.len());
        for (w_rows, g_rows) in want.iter().zip(&got) {
            assert_eq!(w_rows.per_part, g_rows.per_part);
            assert_eq!(w_rows.state_rows, g_rows.state_rows);
            assert_eq!(w_rows.splits, g_rows.splits);
            assert_eq!(w_rows.unsplits, g_rows.unsplits);
        }
    }

    /// A split group whose traffic merely dips briefly re-heats during
    /// cooling and keeps its replicas — no unsplit notice, no warm-up
    /// penalty.
    #[test]
    fn reheat_during_cooling_cancels_the_hand_off() {
        let (_c, mut router, a, b) = split_setup();

        let mut t = 0u64;
        let skew = |router: &mut BatchRouter, t: &mut u64, n: u64, group: i64| {
            let mut batch = EventBatch::new();
            for i in 0..n {
                *t += 1;
                batch.push_from(
                    if i % 2 == 0 { a } else { b },
                    Timestamp(*t),
                    [Value::Int(group)],
                );
            }
            router.route(&batch)
        };
        skew(&mut router, &mut t, 40, 7);
        assert_eq!(router.split_groups(), 1);
        // a lull big enough to push group 7 below the cold threshold in
        // one batch — cooling starts at this batch's sweep, with the
        // deadline one warm-up window out
        {
            let mut batch = EventBatch::new();
            for i in 0..300u64 {
                t += 1;
                batch.push_from(
                    if i % 2 == 0 { a } else { b },
                    Timestamp(t),
                    [Value::Int((i % 13) as i64 + 100)],
                );
            }
            router.route(&batch);
        }
        assert_eq!(router.split_groups(), 1, "cooling group is still split");
        // group 7 storms back before (or even after) the deadline: the
        // re-heat check runs first, so the hand-off is cancelled and the
        // replicas — still warm, state rows kept broadcasting — carry on
        let routed = skew(&mut router, &mut t, 200, 7);
        assert_eq!(router.split_groups(), 1, "re-heated group stays split");
        assert!(routed.iter().all(|r| r.unsplits.is_empty()));
    }

    #[test]
    fn scope_partitioning_is_deterministic_and_total() {
        let costs = [5.0, 1.0, 4.0, 2.0, 3.0, 1.0];
        let a = partition_scopes(&costs, 2);
        assert_eq!(a, partition_scopes(&costs, 2));
        let mut all: Vec<usize> = a.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
        // LPT keeps the two loads within the largest single cost
        let load = |r: &Vec<usize>| -> f64 { r.iter().map(|&i| costs[i]).sum() };
        assert!((load(&a[0]) - load(&a[1])).abs() <= 5.0);
        // more routers than scopes leaves the tail empty, never panics
        let wide = partition_scopes(&[1.0], 3);
        assert_eq!(wide.len(), 3);
        assert_eq!(wide.iter().map(Vec::len).sum::<usize>(), 1);
    }

    /// A plane of `R` routers over disjoint scope subsets routes exactly
    /// what the single router routes: per shard and slot, one router
    /// contributes the identical row list and all stamp the identical
    /// full-stream frontier.
    #[test]
    fn router_plane_matches_single_router_routing() {
        let (c, parts) = setup();
        let n_shards = 3;
        let b = batch(&c, 500);
        let mut single = pinned(parts.clone(), n_shards);
        let want = single.route(&b);
        for n_routers in [2usize, 4] {
            let mut plane =
                split_router_plane(parts.clone(), n_shards, SplitConfig::disabled(), n_routers);
            assert_eq!(plane.len(), n_routers);
            let outs: Vec<Vec<RoutedRows>> = plane
                .iter_mut()
                .map(|r| {
                    assert_eq!(r.n_scopes(), parts.len(), "chunks span the whole plane");
                    assert!(r.n_local_scopes() <= parts.len());
                    let mut o = Vec::new();
                    r.route_range_into(&b, 0, b.len(), &mut o);
                    o
                })
                .collect();
            for shard in 0..n_shards {
                for slot in 0..parts.len() {
                    let contributors: Vec<&Vec<u32>> = outs
                        .iter()
                        .map(|o| &o[shard].per_part[slot])
                        .filter(|rows| !rows.is_empty())
                        .collect();
                    assert!(contributors.len() <= 1, "slot {slot} routed by two routers");
                    let got: &[u32] = contributors.first().map(|r| r.as_slice()).unwrap_or(&[]);
                    assert_eq!(
                        got,
                        want[shard].per_part[slot].as_slice(),
                        "plane x{n_routers}, shard {shard}, slot {slot}"
                    );
                }
                for o in &outs {
                    assert_eq!(
                        o[shard].frontier, want[shard].frontier,
                        "every router stamps the full-stream frontier"
                    );
                }
            }
        }
    }

    /// The decayed counter forgets old traffic: a group that was briefly
    /// busy long ago does not split on residual counts.
    #[test]
    fn counters_decay() {
        let spec = SplitSpec {
            final_only: vec![true],
            warmup_ms: 10,
        };
        let mut tracker = SplitTracker::new(
            spec,
            &SplitConfig {
                enabled: true,
                min_rows: 100,
                hot_fraction: 0.5,
                decay_period: 16,
            },
            2,
        );
        for _ in 0..15 {
            assert!(!tracker.observe(Some(42)));
        }
        let before = *tracker.counts.get(&42).unwrap();
        tracker.observe(Some(42)); // triggers decay
        let after = *tracker.counts.get(&42).unwrap();
        assert!(after <= before / 2 + 1, "decay halves the counter");
        assert!(tracker.total <= 8);
    }
}
