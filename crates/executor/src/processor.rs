//! The uniform columnar operator interface of the execution layer.
//!
//! Every strategy in the system — the online Sharon/A-Seq engines, the
//! sharded parallel runtime, and the two-step baselines — is a *stage
//! pipeline over [`EventBatch`]*: a *stateless scan* of the batch columns
//! (routing on the `ty` column, predicate evaluation over the value
//! buffer, group-key extraction) selects the surviving row indices, and a
//! *stateful dispatch* folds only those rows into per-group state.
//! [`BatchProcessor`] captures that contract behind one trait so callers
//! (the strategy layer, the framework, the CLI, the benches) drive every
//! strategy identically — no per-strategy match arms, and no row-form
//! [`Event`] is ever materialized on a batch path.
//!
//! Implementors: [`crate::Executor`] (online engines),
//! [`crate::ShardedExecutor`] (route-once parallel runtime), and the
//! `sharon-twostep` crate's `FlinkLike` / `SpassLike` baselines.

use crate::results::ExecutorResults;
use sharon_types::{Event, EventBatch};

/// A columnar operator: consumes time-ordered [`EventBatch`]es (the native
/// form of every hot path) plus row-form events through a compatibility
/// shim, and produces [`ExecutorResults`] when finished.
///
/// All ingestion methods require global timestamp order across calls, the
/// same contract every executor in the system already imposes — unless
/// the caller enables event-time processing via
/// [`BatchProcessor::set_lateness`], after which input may carry bounded
/// disorder: rows buffer behind the watermark `max_time_seen − lateness`
/// and release in event-time order, and rows behind the watermark are
/// dropped and counted ([`sharon_metrics::late_rows_dropped`]).
pub trait BatchProcessor: Send {
    /// Process one row-form event (the per-event compatibility shim).
    fn process_event(&mut self, e: &Event);

    /// Process a time-ordered slice of row-form events. The default loops
    /// [`BatchProcessor::process_event`]; implementors override it when
    /// they can amortize per-event dispatch.
    fn process_events(&mut self, events: &[Event]) {
        for e in events {
            self.process_event(e);
        }
    }

    /// Process a time-ordered columnar batch: the stateless scan +
    /// stateful dispatch pipeline. No implementation materializes a
    /// row-form [`Event`] here.
    fn process_columnar(&mut self, batch: &EventBatch);

    /// Enable event-time processing: tolerate out-of-order input up to
    /// `lateness_ms` milliseconds of timestamp regression (drop-and-count
    /// beyond). Must be called before any ingestion. Panics for
    /// strategies without an event-time gate; every strategy in this
    /// workspace implements it.
    fn set_lateness(&mut self, lateness_ms: u64) {
        let _ = lateness_ms;
        panic!("this strategy does not support event-time (out-of-order) input");
    }

    /// Late rows dropped by the event-time gate so far; zero when no
    /// gate is configured.
    fn late_rows_dropped(&self) -> u64 {
        0
    }

    /// Events that passed the stateless prefix (routing, predicates,
    /// grouping) so far; zero for strategies that do not track it.
    fn events_matched(&self) -> u64 {
        0
    }

    /// Per-scope `(rows_scanned, rows_selected)` tallies of the stateless
    /// scan so far — one entry per routing scope (partition engine, query,
    /// or baseline partition), in scope order. Identical in scalar and
    /// vector scan modes; empty for strategies that do not track it.
    fn scan_stats(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Strategy-specific state-size proxy: live aggregate cells (online),
    /// buffered raw events (Flink-like), materialized matches
    /// (SPASS-like), zero when state lives off-thread (sharded).
    fn state_size(&self) -> usize {
        0
    }

    /// Flush all remaining windows and return
    /// `(results, events_matched)`. The matched count here is exact even
    /// for the sharded runtime, whose workers drain before reporting.
    fn finish(self: Box<Self>) -> (ExecutorResults, u64);
}
