//! Chain contribution logs.
//!
//! The Shared method must combine "the count of `prefixᵢ` [...] with the
//! count for each START event of `p`" (Section 3.3). A naive
//! implementation snapshots the per-window prefix counts at every START
//! event of the shared segment, paying `O(starts × windows)` per
//! completion batch. A [`ChainLog`] avoids that: it records every
//! contribution folded into a chain stage as a *range-compressed* entry
//! `(time, window range, value)`, and each START event stores only the
//! log **offset** at its arrival. The per-START "snapshot" is then the sum
//! of all entries before the offset — and a whole completion batch folds
//! in `O(log entries + starts + windows)` using suffix sums (see
//! `Engine::dispatch`), because
//!
//! ```text
//! Σᵢ snapshotᵢ × δᵢ  =  Σⱼ entryⱼ × (Σ_{i : offᵢ > j} δᵢ)
//! ```
//!
//! Same-timestamp isolation works exactly as in
//! [`crate::winvec::WinVec`]: entries stay pending until the log is
//! touched at a strictly later time, so an offset captured at time `t`
//! never covers contributions of other time-`t` events.

use crate::agg::Aggregate;
use crate::winvec::WinSeq;
use sharon_types::Timestamp;
use std::collections::VecDeque;

/// One folded contribution: `value` added to every window in
/// `lo ..= hi`.
#[derive(Debug, Clone, Copy)]
pub struct LogEntry<A> {
    /// Commit time (the event time that produced it).
    pub time: Timestamp,
    /// First window sequence covered.
    pub lo: WinSeq,
    /// Last window sequence covered (inclusive).
    pub hi: WinSeq,
    /// The contribution.
    pub value: A,
}

/// An append-only, front-expiring log of chain contributions.
#[derive(Debug, Clone)]
pub struct ChainLog<A> {
    /// Absolute index of `entries.front()`.
    base: u64,
    entries: VecDeque<LogEntry<A>>,
    pending: Vec<(WinSeq, WinSeq, A)>,
    pending_time: Timestamp,
}

impl<A: Aggregate> Default for ChainLog<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Aggregate> ChainLog<A> {
    /// An empty log.
    pub fn new() -> Self {
        ChainLog {
            base: 0,
            entries: VecDeque::new(),
            pending: Vec::new(),
            pending_time: Timestamp::ZERO,
        }
    }

    /// Fold pending contributions older than `now` into the committed
    /// entries.
    #[inline]
    pub fn settle(&mut self, now: Timestamp) {
        if !self.pending.is_empty() && self.pending_time < now {
            let t = self.pending_time;
            for (lo, hi, v) in self.pending.drain(..) {
                self.entries.push_back(LogEntry {
                    time: t,
                    lo,
                    hi,
                    value: v,
                });
            }
        }
    }

    /// Record `value` over windows `lo ..= hi`, performed at `now`.
    pub fn add_range(&mut self, now: Timestamp, lo: WinSeq, hi: WinSeq, value: A) {
        if value.is_zero() || lo > hi {
            return;
        }
        self.settle(now);
        self.pending_time = now;
        self.pending.push((lo, hi, value));
    }

    /// The absolute offset separating contributions strictly before `now`
    /// from later ones. Stored per START event of the next chain stage.
    pub fn offset_at(&mut self, now: Timestamp) -> u64 {
        self.settle(now);
        self.base + self.entries.len() as u64
    }

    /// Iterate committed entries as `(absolute index, entry)`, oldest
    /// first. Call [`ChainLog::settle`] first to observe a given time.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &LogEntry<A>)> {
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, e)| (self.base + i as u64, e))
    }

    /// Drop leading entries whose whole window range closed before
    /// `close_seq` — they can no longer contribute to any result.
    pub fn drop_dead(&mut self, close_seq: WinSeq) {
        while let Some(front) = self.entries.front() {
            if front.hi < close_seq {
                self.entries.pop_front();
                self.base += 1;
            } else {
                break;
            }
        }
    }

    /// Committed entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no committed entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize the log — committed entries, the pending buffer, and the
    /// absolute base offset (START events of later stages hold absolute
    /// offsets into this log, so the base must survive a restore).
    pub fn save_state(&self, w: &mut crate::checkpoint::StateWriter) {
        w.u64(self.base);
        w.seq_len(self.entries.len());
        for e in &self.entries {
            w.time(e.time);
            w.u64(e.lo);
            w.u64(e.hi);
            e.value.save(w);
        }
        w.seq_len(self.pending.len());
        for (lo, hi, v) in &self.pending {
            w.u64(*lo);
            w.u64(*hi);
            v.save(w);
        }
        w.time(self.pending_time);
    }

    /// Decode a log written by [`ChainLog::save_state`].
    pub fn load_state(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Self, crate::checkpoint::StateError> {
        let base = r.u64()?;
        let n = r.seq_len()?;
        let mut entries = VecDeque::with_capacity(n);
        for _ in 0..n {
            entries.push_back(LogEntry {
                time: r.time()?,
                lo: r.u64()?,
                hi: r.u64()?,
                value: A::load(r)?,
            });
        }
        let n = r.seq_len()?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let lo = r.u64()?;
            let hi = r.u64()?;
            pending.push((lo, hi, A::load(r)?));
        }
        let pending_time = r.time()?;
        Ok(ChainLog {
            base,
            entries,
            pending,
            pending_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::CountCell;

    fn c(n: u128) -> CountCell {
        CountCell(n)
    }

    #[test]
    fn entries_become_visible_only_later() {
        let mut log: ChainLog<CountCell> = ChainLog::new();
        log.add_range(Timestamp(5), 0, 2, c(1));
        assert_eq!(log.offset_at(Timestamp(5)), 0, "same-time adds invisible");
        assert_eq!(log.offset_at(Timestamp(6)), 1);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn offsets_partition_the_log() {
        let mut log: ChainLog<CountCell> = ChainLog::new();
        log.add_range(Timestamp(1), 0, 0, c(1));
        let off_a = log.offset_at(Timestamp(2)); // sees entry 0
        log.add_range(Timestamp(2), 1, 1, c(2));
        let off_b = log.offset_at(Timestamp(3)); // sees entries 0, 1
        assert_eq!(off_a, 1);
        assert_eq!(off_b, 2);
        let idx: Vec<u64> = log.iter().map(|(j, _)| j).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn zero_or_empty_ranges_ignored() {
        let mut log: ChainLog<CountCell> = ChainLog::new();
        log.add_range(Timestamp(1), 0, 3, c(0));
        log.add_range(Timestamp(1), 3, 1, c(5));
        assert_eq!(log.offset_at(Timestamp(9)), 0);
    }

    #[test]
    fn drop_dead_removes_closed_ranges_and_keeps_indices_stable() {
        let mut log: ChainLog<CountCell> = ChainLog::new();
        log.add_range(Timestamp(1), 0, 1, c(1));
        log.add_range(Timestamp(2), 2, 4, c(2));
        log.settle(Timestamp(10));
        log.drop_dead(2);
        assert_eq!(log.len(), 1);
        let (j, e) = log.iter().next().unwrap();
        assert_eq!(j, 1, "absolute index survives front drops");
        assert_eq!(e.lo, 2);
        // an offset captured before the drop still compares correctly
        assert_eq!(log.offset_at(Timestamp(11)), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn same_time_batch_commits_together() {
        let mut log: ChainLog<CountCell> = ChainLog::new();
        log.add_range(Timestamp(3), 0, 0, c(1));
        log.add_range(Timestamp(3), 1, 1, c(1));
        assert_eq!(log.offset_at(Timestamp(4)), 2);
        assert!(log.iter().all(|(_, e)| e.time == Timestamp(3)));
    }

    #[test]
    fn state_round_trips_with_base_and_pending() {
        let mut log: ChainLog<CountCell> = ChainLog::new();
        log.add_range(Timestamp(1), 0, 1, c(1));
        log.add_range(Timestamp(2), 2, 4, c(2));
        log.settle(Timestamp(10));
        log.drop_dead(2); // base becomes 1
        log.add_range(Timestamp(11), 5, 6, c(3)); // stays pending

        let mut w = crate::checkpoint::StateWriter::new();
        log.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::checkpoint::StateReader::new(&bytes);
        let mut got: ChainLog<CountCell> = ChainLog::load_state(&mut r).unwrap();
        assert!(r.is_exhausted());

        // absolute indexing survives (base restored)
        let (j, e) = got.iter().next().unwrap();
        assert_eq!((j, e.lo, e.hi), (1, 2, 4));
        // pending entry still invisible at its own time, visible later
        assert_eq!(got.offset_at(Timestamp(11)), 2);
        assert_eq!(got.offset_at(Timestamp(12)), 3);
    }
}
