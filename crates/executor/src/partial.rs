//! Sub-aggregate results of split (hot) groups.
//!
//! The sharded runtime's hot-group splitting routes one skewed group's
//! rows across several shards (see [`crate::router`]); each shard then
//! holds only *part* of that group's per-window aggregate. Engines emit
//! those parts as [`PartialEntry`]s instead of final results, and
//! [`PartialResults::finalize_into`] performs the **merge step** at the
//! end of the run: entries of the same `(query, group, window)` are
//! combined with the aggregate-kind merge ([`PartialAgg::merge`] — COUNT
//! and SUM add, MIN/MAX take extrema, AVG merges count + sum) and only the
//! merged cell is projected to an output value.
//!
//! Strategies that never split groups (the two-step baselines) simply
//! report an empty set — the contract defaults keep them unchanged.

use crate::agg::{OutputKind, PartialAgg};
use crate::results::ExecutorResults;
use sharon_query::QueryId;
use sharon_types::{FxHashMap, GroupKey, Timestamp};

/// One shard's sub-aggregate of one `(query, group, window)` result.
#[derive(Debug, Clone)]
pub struct PartialEntry {
    /// The query the window belongs to.
    pub query: QueryId,
    /// The split group.
    pub group: GroupKey,
    /// Window start.
    pub window: Timestamp,
    /// This shard's share of the aggregate.
    pub value: PartialAgg,
    /// How the merged cell projects to the query's output value.
    pub output: OutputKind,
}

/// A flat buffer of sub-aggregate entries, appended per window close and
/// merged once at the end of the run.
#[derive(Debug, Clone, Default)]
pub struct PartialResults {
    entries: Vec<PartialEntry>,
}

impl PartialResults {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one sub-aggregate (a window of a split group closing on one
    /// shard).
    #[inline]
    pub fn push(
        &mut self,
        query: QueryId,
        group: GroupKey,
        window: Timestamp,
        value: PartialAgg,
        output: OutputKind,
    ) {
        self.entries.push(PartialEntry {
            query,
            group,
            window,
            value,
            output,
        });
    }

    /// Pre-size for about `additional` further entries (capacity planning
    /// for the allocation-free steady state of the split-group path).
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Number of buffered entries (pre-merge).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no sub-aggregates were produced (no group ever split).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append all of `other`'s entries (collecting the shards' reports).
    pub fn absorb(&mut self, other: PartialResults) {
        if self.entries.is_empty() {
            self.entries = other.entries;
        } else {
            self.entries.extend(other.entries);
        }
    }

    /// Serialize all buffered sub-aggregates into a checkpoint segment.
    pub fn save_state(&self, w: &mut crate::checkpoint::StateWriter) {
        w.seq_len(self.entries.len());
        for e in &self.entries {
            w.u32(e.query.0);
            w.group_key(&e.group);
            w.time(e.window);
            e.value.save(w);
            e.output.save(w);
        }
    }

    /// Decode a set written by [`PartialResults::save_state`].
    pub fn load_state(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Self, crate::checkpoint::StateError> {
        let n = r.seq_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(PartialEntry {
                query: QueryId(r.u32()?),
                group: r.group_key()?,
                window: r.time()?,
                value: PartialAgg::load(r)?,
                output: OutputKind::load(r)?,
            });
        }
        Ok(PartialResults { entries })
    }

    /// The merge step: combine same-key entries with the aggregate-kind
    /// merge and emit the final projected values into `results`.
    pub fn finalize_into(self, results: &mut ExecutorResults) {
        if self.entries.is_empty() {
            return;
        }
        let mut merged: FxHashMap<(QueryId, GroupKey, Timestamp), (PartialAgg, OutputKind)> =
            FxHashMap::default();
        merged.reserve(self.entries.len());
        for e in self.entries {
            match merged.entry((e.query, e.group, e.window)) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    o.get_mut().0.merge(&e.value);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((e.value, e.output));
                }
            }
        }
        for ((query, group, window), (value, output)) in merged {
            results.emit(query, group, window, value.output(output));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{Aggregate, CountCell, StatsCell};
    use sharon_query::aggregate::AggValue;
    use sharon_types::Value;

    fn key(i: i64) -> GroupKey {
        GroupKey::One(Value::Int(i))
    }

    #[test]
    fn same_key_entries_merge_before_projection() {
        let mut a = PartialResults::new();
        a.push(
            QueryId(0),
            key(1),
            Timestamp(0),
            PartialAgg::Count(CountCell(2)),
            OutputKind::Count,
        );
        let mut b = PartialResults::new();
        b.push(
            QueryId(0),
            key(1),
            Timestamp(0),
            PartialAgg::Count(CountCell(3)),
            OutputKind::Count,
        );
        b.push(
            QueryId(0),
            key(1),
            Timestamp(4),
            PartialAgg::Count(CountCell(1)),
            OutputKind::Count,
        );
        a.absorb(b);
        assert_eq!(a.len(), 3);

        let mut results = ExecutorResults::new();
        a.finalize_into(&mut results);
        assert_eq!(
            results.get(QueryId(0), &key(1), Timestamp(0)),
            Some(&AggValue::Count(5))
        );
        assert_eq!(
            results.get(QueryId(0), &key(1), Timestamp(4)),
            Some(&AggValue::Count(1))
        );
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn avg_merges_exactly_via_count_and_sum() {
        // shard 1 saw 3 sequences summing 30, shard 2 saw 1 summing 2:
        // the true average is 8, not avg-of-avgs 6
        let s1 = StatsCell {
            count: 3,
            sum: 30.0,
            min: 5.0,
            max: 15.0,
        };
        let s2 = StatsCell {
            count: 1,
            sum: 2.0,
            min: 2.0,
            max: 2.0,
        };
        let mut p = PartialResults::new();
        p.push(
            QueryId(0),
            GroupKey::Global,
            Timestamp(0),
            s1.to_partial(),
            OutputKind::Avg(1),
        );
        p.push(
            QueryId(0),
            GroupKey::Global,
            Timestamp(0),
            s2.to_partial(),
            OutputKind::Avg(1),
        );
        let mut results = ExecutorResults::new();
        p.finalize_into(&mut results);
        assert_eq!(
            results.get(QueryId(0), &GroupKey::Global, Timestamp(0)),
            Some(&AggValue::Number(Some(8.0)))
        );
    }

    #[test]
    fn empty_set_is_a_no_op() {
        let mut results = ExecutorResults::new();
        PartialResults::new().finalize_into(&mut results);
        assert!(results.is_empty());
        assert!(PartialResults::new().is_empty());
    }

    #[test]
    fn state_round_trips() {
        let mut p = PartialResults::new();
        p.push(
            QueryId(3),
            key(9),
            Timestamp(40),
            PartialAgg::Count(CountCell(12)),
            OutputKind::CountTimes(2),
        );
        p.push(
            QueryId(4),
            GroupKey::Global,
            Timestamp(0),
            StatsCell {
                count: 2,
                sum: 7.5,
                min: 1.0,
                max: 6.5,
            }
            .to_partial(),
            OutputKind::Avg(1),
        );
        let mut w = crate::checkpoint::StateWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::checkpoint::StateReader::new(&bytes);
        let got = PartialResults::load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(got.len(), 2);
        let (mut a, mut b) = (ExecutorResults::new(), ExecutorResults::new());
        p.finalize_into(&mut a);
        got.finalize_into(&mut b);
        assert!(a.semantically_eq(&b, 0.0));
    }
}
